"""Related-work ladder on Fig. 1: 802.11 -> two-tier -> maxmin -> 2PA.

Extends Table II with the max-min baseline of the paper's ref. [5]
(Huang & Bensaou).  Each rung fixes one pathology of the previous:

* 802.11: no allocation at all — the middle subflow starves;
* two-tier: per-subflow basic shares + single-hop throughput max — the
  upstream/downstream imbalance (3:1) overflows the relay;
* maxmin: per-subflow max-min — milder imbalance (2:1), still lossy;
* 2PA: equal-per-hop end-to-end shares — balanced, near-zero loss,
  highest total effective throughput.
"""

import pytest

from repro.experiments import run_table
from repro.scenarios import fig1

DURATION = 12.0


def test_bench_related_work_ladder(once, capsys):
    table = once(
        run_table, fig1.make_scenario(), "related work",
        ["802.11", "two-tier", "maxmin", "2PA-C"], DURATION, 1,
    )
    with capsys.disabled():
        print("\n" + table.render())
    totals = {r.system: r.total_effective for r in table.results}
    losses = {r.system: r.loss_ratio for r in table.results}
    # Total effective throughput improves monotonically up the ladder.
    assert totals["802.11"] <= totals["two-tier"] * 1.05
    assert totals["two-tier"] < totals["maxmin"]
    assert totals["maxmin"] < totals["2PA-C"]
    # Loss ratio improves monotonically too.
    assert losses["802.11"] > losses["two-tier"]
    assert losses["two-tier"] > losses["maxmin"]
    assert losses["maxmin"] > 5 * losses["2PA-C"]
