"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows next to the paper's reference values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the full
reproduction report.  Simulation benches run one round (they simulate
tens of seconds of channel time); analytic benches run normally.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
