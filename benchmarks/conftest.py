"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows next to the paper's reference values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the full
reproduction report.  Simulation benches run one round (they simulate
tens of seconds of channel time); analytic benches run normally.
"""

import json
import os

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


def _perf_json_path() -> str:
    return os.environ.get(
        "BENCH_PERF_OUT",
        os.path.join(os.path.dirname(__file__), "BENCH_perf.json"),
    )


def _walk_regressions(old, new, path, problems):
    """Collect >2x timer regressions / halved speedups between snapshots.

    Keys ending in ``_ms`` are wall times (new must stay within 2x of the
    checked-in value); keys containing ``speedup`` or ``reduction`` are
    ratios (new must stay above half the checked-in value).  Structure
    mismatches are ignored — a reshaped section simply resets its
    baseline.
    """
    if isinstance(old, dict) and isinstance(new, dict):
        for key in old:
            if key in new:
                _walk_regressions(old[key], new[key], f"{path}.{key}",
                                  problems)
    elif isinstance(old, list) and isinstance(new, list):
        for i, (o, n) in enumerate(zip(old, new)):
            _walk_regressions(o, n, f"{path}[{i}]", problems)
    elif isinstance(old, (int, float)) and isinstance(new, (int, float)):
        name = path.rsplit(".", 1)[-1]
        if name.endswith("_ms") and new > 2.0 * old + 1e-9:
            problems.append(
                f"{path}: {new:.3f}ms vs baseline {old:.3f}ms (>2x)"
            )
        elif (("speedup" in name or "reduction" in name)
              and new < 0.5 * old):
            problems.append(
                f"{path}: {new:.2f} vs baseline {old:.2f} (<0.5x)"
            )


@pytest.fixture
def perf_section():
    """Merge one measured section into BENCH_perf.json, gating regressions.

    ``perf_section(name, payload)`` read-modify-writes the ``name`` entry
    of the shared artifact (path override: ``BENCH_PERF_OUT``), then fails
    if any ``*_ms`` timer regressed past 2x — or any speedup halved —
    against the checked-in values for the same section.  The fresh
    numbers are written *before* the assertion so a failing run still
    leaves an inspectable artifact.
    """
    from repro import obs

    def merge(name: str, payload: dict) -> None:
        path = _perf_json_path()
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
        doc.setdefault("bench", "perf-baseline")
        sections = doc.setdefault("sections", {})
        old = sections.get(name)
        sections[name] = payload
        obs.atomic_write_text(
            path, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        if old is not None:
            problems = []
            _walk_regressions(old, payload, name, problems)
            assert not problems, (
                "perf regression vs checked-in BENCH_perf.json:\n  "
                + "\n  ".join(problems)
            )

    return merge
