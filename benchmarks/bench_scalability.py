"""Scalability benches for the algorithmic core and the simulator.

Not tied to a specific paper figure; these quantify where the
reproduction's own costs lie (clique enumeration, LP solves, event
throughput) as networks grow — the operational questions a user of the
library will ask.
"""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    run_distributed,
)
from repro.lp import LinearProgram, solve_simplex
from repro.scenarios import make_random_scenario
from repro.sched import build_2pa
from repro.sim import Simulator


@pytest.mark.parametrize("nodes,flows", [(15, 4), (30, 8)])
def test_bench_contention_plus_lp(benchmark, nodes, flows):
    scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                    seed=3, max_hops=5)

    def pipeline():
        analysis = ContentionAnalysis(scenario)
        return basic_fairness_lp_allocation(analysis)

    alloc = benchmark(pipeline)
    assert alloc.total_effective_throughput > 0


def test_bench_distributed_phase1(benchmark):
    scenario = make_random_scenario(num_nodes=20, num_flows=5, seed=4,
                                    max_hops=5)
    result = benchmark(run_distributed, scenario)
    assert all(v > 0 for v in result.shares.values())


def test_bench_simplex_mid_size(benchmark):
    """A 40-variable, 60-constraint allocation-style LP."""
    import numpy as np

    rng = np.random.default_rng(0)
    lp = LinearProgram()
    names = [f"r{i}" for i in range(40)]
    lp.maximize({v: 1.0 for v in names})
    for _ in range(60):
        support = rng.random(40) < 0.2
        if not support.any():
            support[0] = True
        lp.add_constraint(
            {names[i]: float(rng.integers(1, 4))
             for i in range(40) if support[i]},
            float(rng.uniform(1, 4)),
        )
    for v in names:
        lp.set_lower_bound(v, 0.01)
    sol = benchmark(solve_simplex, lp)
    assert sol.is_optimal


def test_bench_event_engine_throughput(benchmark):
    """Raw event-loop speed: 100k self-rescheduling events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_bench_simulation_second(once):
    """Wall time to simulate 1 s of the Fig. 6 scenario under 2PA."""
    from repro.scenarios import fig6

    def run():
        build = build_2pa(fig6.make_scenario(), "centralized", seed=1)
        return build.run.run(seconds=1.0)

    metrics = once(run)
    assert metrics.total_effective_throughput_packets() > 100
