"""Scalability benches for the algorithmic core and the simulator.

Not tied to a specific paper figure; these quantify where the
reproduction's own costs lie (clique enumeration, LP solves, event
throughput) as networks grow — the operational questions a user of the
library will ask.
"""

import json
import os

import pytest

from repro import obs
from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    run_distributed,
)
from repro.lp import LinearProgram, solve_simplex
from repro.scenarios import make_random_scenario
from repro.sched import build_2pa
from repro.sim import Simulator


@pytest.mark.parametrize("nodes,flows",
                         [(15, 4), (30, 8), (60, 16), (100, 24)])
def test_bench_contention_plus_lp(benchmark, nodes, flows):
    scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                    seed=3, max_hops=5)

    def pipeline():
        analysis = ContentionAnalysis(scenario)
        return basic_fairness_lp_allocation(analysis)

    alloc = benchmark(pipeline)
    assert alloc.total_effective_throughput > 0


def test_bench_distributed_phase1(benchmark):
    scenario = make_random_scenario(num_nodes=20, num_flows=5, seed=4,
                                    max_hops=5)
    result = benchmark(run_distributed, scenario)
    assert all(v > 0 for v in result.shares.values())


def test_bench_simplex_mid_size(benchmark):
    """A 40-variable, 60-constraint allocation-style LP."""
    import numpy as np

    rng = np.random.default_rng(0)
    lp = LinearProgram()
    names = [f"r{i}" for i in range(40)]
    lp.maximize({v: 1.0 for v in names})
    for _ in range(60):
        support = rng.random(40) < 0.2
        if not support.any():
            support[0] = True
        lp.add_constraint(
            {names[i]: float(rng.integers(1, 4))
             for i in range(40) if support[i]},
            float(rng.uniform(1, 4)),
        )
    for v in names:
        lp.set_lower_bound(v, 0.01)
    sol = benchmark(solve_simplex, lp)
    assert sol.is_optimal


def test_bench_event_engine_throughput(benchmark):
    """Raw event-loop speed: 100k self-rescheduling events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_bench_simulation_second(once):
    """Wall time to simulate 1 s of the Fig. 6 scenario under 2PA."""
    from repro.scenarios import fig6

    def run():
        build = build_2pa(fig6.make_scenario(), "centralized", seed=1)
        return build.run.run(seconds=1.0)

    metrics = once(run)
    assert metrics.total_effective_throughput_packets() > 100


#: Network sizes for the observability baseline trajectory.
_OBS_BASELINE_SIZES = ((10, 3), (20, 5), (30, 8))


def test_emit_obs_baseline():
    """Emit BENCH_obs.json: clique/LP phase timings vs. network size.

    Uses the repro.obs registry end to end, so the emitted file doubles as
    an integration check of the measurement substrate.  Future perf PRs
    diff this trajectory (per-phase wall time, pivot counts) against their
    own run to prove a speedup.  Output path override: ``BENCH_OBS_OUT``.
    """
    points = []
    for nodes, flows in _OBS_BASELINE_SIZES:
        scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                        seed=3, max_hops=5)
        with obs.using_registry() as reg:
            analysis = ContentionAnalysis(scenario)
            basic_fairness_lp_allocation(analysis)
            run_distributed(scenario)
        snap = reg.snapshot()
        points.append({
            "nodes": nodes,
            "flows": flows,
            "subflow_vertices": snap["counters"]["contention.subflow_vertices"],
            "cliques_found": snap["counters"]["contention.cliques_found"],
            "lp_solves": snap["counters"]["lp.solves"],
            "lp_pivots": snap["counters"]["lp.simplex.pivots"],
            "pad_messages": snap["counters"].get("2pad.messages", 0),
            "timers": {
                name: snap["timers"][name]
                for name in ("contention.graph_build",
                             "contention.clique_enumeration",
                             "lp.solve", "2pad.run")
                if name in snap["timers"]
            },
        })
        assert points[-1]["cliques_found"] > 0
        assert points[-1]["timers"]["lp.solve"]["calls"] >= 1

    out = os.environ.get(
        "BENCH_OBS_OUT",
        os.path.join(os.path.dirname(__file__), "BENCH_obs.json"),
    )
    doc = {
        "bench": "scalability-obs-baseline",
        "schema": obs.SCHEMA_NAME,
        "schema_version": obs.SCHEMA_VERSION,
        "points": points,
    }
    obs.atomic_write_text(out, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    assert json.load(open(out))["points"]


#: (nodes, flows) points for the set-vs-bitset clique kernel comparison;
#: the last entry is the headline (densest contention graph measured).
_CLIQUE_KERNEL_SIZES = ((60, 16), (100, 24), (100, 48))


def test_emit_perf_clique_kernels(perf_section):
    """Emit the ``clique_kernels`` section of BENCH_perf.json.

    Times the set-based reference kernel against the bitset kernel on the
    same contention graphs (best-of-5 each, GC parked between rounds),
    asserts they agree exactly, and records the speedup trajectory.  The
    checked-in numbers gate future regressions via the ``perf_section``
    fixture.
    """
    import gc
    import time

    from repro.core.contention import subflow_contention_graph
    from repro.graphs.cliques import maximal_cliques_set
    from repro.perf.cliques import maximal_cliques_bitset

    def best_of(fn, rounds=5):
        best = float("inf")
        result = None
        for _ in range(rounds):
            gc.collect()
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    points = []
    for nodes, flows in _CLIQUE_KERNEL_SIZES:
        scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                        seed=3)
        graph = subflow_contention_graph(scenario.network, scenario.flows)
        set_s, set_cliques = best_of(lambda: maximal_cliques_set(graph))
        bit_s, bit_cliques = best_of(lambda: maximal_cliques_bitset(graph))
        assert set_cliques == bit_cliques
        points.append({
            "nodes": nodes,
            "flows": flows,
            "vertices": graph.num_vertices(),
            "cliques": len(bit_cliques),
            "set_ms": set_s * 1e3,
            "bitset_ms": bit_s * 1e3,
            "speedup": set_s / bit_s,
        })

    perf_section("clique_kernels", {
        "kernel": "bitset Bron-Kerbosch vs set-based reference",
        "points": points,
        "headline_speedup": points[-1]["speedup"],
    })


#: (nodes, flows) ladder solved by BOTH backends; the last entry is the
#: headline (the largest size the dense solver completes in bench time).
_REVISED_LP_SIZES = ((50, 150), (100, 300), (200, 600))
#: Revised-only extension point — far beyond the dense solver's reach.
_REVISED_ONLY_SIZE = (1000, 10000)
#: Quick mode (CI gate): solve only the first ladder entry and skip the
#: revised-only point.  The emitted prefix still gates against the
#: checked-in baseline — the conftest regression walker zips lists, so
#: a shorter fresh list simply checks the points it contains.
_QUICK_ENV = "BENCH_REVISED_QUICK"


def contention_ladder_lp(nodes, flows, classes=4, ring=5):
    """A clique-constraint LP shaped like a ``nodes``-clique,
    ``flows``-flow allocation problem.

    Cliques are partitioned into ``classes`` capacity classes (capacity
    ``1 + class``) and, within a class, into rings of ``ring`` cliques;
    each flow crosses three consecutive cliques of its ring (a 3-hop
    path), round-robin.  Two properties matter for a *scalability*
    bench: within a class every clique sees the same load, so the
    lexicographic ladder runs exactly one round per class no matter how
    large the instance (bench cost scales with solver speed, not ladder
    depth); and contention is ring-local, so a saturation probe's pivot
    path has bounded length — pivot *count* grows linearly with flows,
    the per-pivot cost is what the backends differ on.
    """
    from repro.lp import LinearProgram

    lp = LinearProgram()
    names = [f"r_{f}" for f in range(flows)]
    per_block = max(ring, nodes // classes)
    rings_per_class = per_block // ring
    rows = [[] for _ in range(classes * per_block)]
    for f in range(flows):
        cls = f % classes
        idx = f // classes
        base = cls * per_block + (idx % rings_per_class) * ring
        start = (idx // rings_per_class) % ring
        for hop in range(3):
            rows[base + (start + hop) % ring].append(names[f])
    lp.maximize({v: 1.0 for v in names})
    for i, members in enumerate(rows):
        if members:
            lp.add_constraint({v: 1.0 for v in sorted(set(members))},
                              float(1 + i // per_block),
                              label=f"clique-{i}")
    return lp


def test_emit_perf_revised_lp(perf_section):
    """Emit the ``revised_lp`` section of BENCH_perf.json.

    End-to-end lexicographic max-min (total-throughput LP + ladder with
    batched saturation probes) on the contention-ladder family, revised
    vs dense on every size both can run — rates asserted within 1e-9
    before any timing is recorded — plus the 1,000-node/10,000-flow
    revised-only point.  The headline gate: revised at least 5x faster
    than dense at the largest common size.  ``BENCH_REVISED_QUICK=1``
    runs only the smallest size (CI's lp-differential job).
    """
    import gc
    import time

    from repro.lp import lexicographic_maxmin

    quick = bool(os.environ.get(_QUICK_ENV))
    sizes = _REVISED_LP_SIZES[:1] if quick else _REVISED_LP_SIZES

    def timed(fn):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        return (time.perf_counter() - t0) * 1e3, result

    points = []
    for nodes, flows in sizes:
        lp = contention_ladder_lp(nodes, flows)
        revised_ms, fast = timed(
            lambda: lexicographic_maxmin(lp, backend="revised")
        )
        dense_ms, ref = timed(
            lambda: lexicographic_maxmin(lp, backend="simplex")
        )
        assert fast.status == ref.status == "optimal"
        for v, rate in ref.values.items():
            assert abs(fast.values[v] - rate) <= 1e-9, (nodes, v)
        points.append({
            "nodes": nodes,
            "flows": flows,
            "rows": len(lp.constraints),
            "dense_ms": dense_ms,
            "revised_ms": revised_ms,
            "speedup": dense_ms / revised_ms,
        })

    payload = {
        "kernel": "revised simplex (sparse, batched probes) vs dense "
                  "tableau, end-to-end lexicographic max-min",
        "points": points,
    }
    if not quick:
        # Acceptance gate: >= 5x at the largest size dense completes.
        assert points[-1]["speedup"] >= 5.0, points[-1]
        payload["headline_speedup"] = points[-1]["speedup"]

        nodes, flows = _REVISED_ONLY_SIZE
        big = contention_ladder_lp(nodes, flows)
        big_ms, sol = timed(
            lambda: lexicographic_maxmin(big, backend="revised")
        )
        assert sol.status == "optimal"
        assert min(sol.values.values()) > 0.0
        payload["revised_only"] = {
            "nodes": nodes,
            "flows": flows,
            "rows": len(big.constraints),
            "revised_ms": big_ms,
        }

    perf_section("revised_lp", payload)


#: Quick mode (CI's shard-smoke job): fewer churn epochs, no hard
#: speedup gate, and the 100k batch point is skipped.  The emitted keys
#: are a subset of the full run's, so the conftest regression walker
#: only compares what quick mode actually measured.
_SHARDED_QUICK_ENV = "BENCH_SHARDED_QUICK"


def ladder_islands(k=8, chain=30, span=4, flows_per=32):
    """``k`` disjoint chains — exactly ``k`` contention components.

    Each island is a ``chain``-node line network carrying ``flows_per``
    flows of ``span`` hops, staggered along the chain with weights
    cycling 1/2/3, so every island is a non-trivial multi-clique LP.
    Churn that touches island 0 leaves the other ``k - 1`` components'
    fingerprints intact — the situation the per-component memo exists
    for.
    """
    from repro.core.model import Flow, Network, Scenario

    nodes, links, flows = [], [], []
    for i in range(k):
        cn = [f"c{i}_{j}" for j in range(chain)]
        nodes += cn
        links += [(cn[j], cn[j + 1]) for j in range(chain - 1)]
        for j in range(flows_per):
            start = j % (chain - span)
            flows.append(Flow(
                f"f{i}_{j}", tuple(cn[start:start + span + 1]),
                1.0 + (j % 3),
            ))
    return Scenario(Network.from_links(nodes, links), flows,
                    name=f"ladder-islands-{k}")


def star_island_universe(islands, leaves=8):
    """``islands`` hub-and-spoke cells: one-hop flows, one clique each.

    The contention graph and cliques are handed to
    :class:`ContentionAnalysis` precomputed (the documented recipe for
    very large synthetic universes), so the build cost is linear in the
    flow count rather than the geometric rebuild's quadratic pair scan.
    Every island's basic floors sum exactly to capacity
    (``leaves * B/leaves``), so the whole universe is admissible.
    """
    from repro.core.contention import contention_graph_from_pairs
    from repro.core.model import (
        Flow, Network, Scenario, Subflow, SubflowId,
    )

    nodes, links, flows, subflows, pairs, cliques = [], [], [], [], [], []
    for i in range(islands):
        hub = f"h{i}"
        nodes.append(hub)
        island = []
        for j in range(leaves):
            leaf = f"n{i}_{j}"
            nodes.append(leaf)
            links.append((hub, leaf))
            fid = f"f{i}_{j}"
            flows.append(Flow(fid, (hub, leaf), 1.0))
            sid = SubflowId(fid, 1)
            subflows.append(Subflow(sid, hub, leaf, 1.0))
            island.append(sid)
        for a in range(leaves):
            for b in range(a + 1, leaves):
                pairs.append((island[a], island[b]))
        cliques.append(frozenset(island))
    scenario = Scenario(
        Network.from_links(nodes, links), flows,
        name=f"star-islands-{islands}",
    )
    graph = contention_graph_from_pairs(subflows, pairs)
    return ContentionAnalysis(scenario, graph=graph, cliques=cliques)


def test_emit_perf_sharded_alloc(perf_section):
    """Emit the ``sharded_alloc`` section of BENCH_perf.json.

    Two measurements:

    * ``churn``: the k=8 island family under churn that touches island 0
      only, sharded (jobs=8) vs the monolithic reference runtime.  The
      committed journals are asserted bitwise equal before any timing is
      recorded, and the ``runtime.shard.reused`` counter proves only the
      dirty component was re-solved.  Gate (full mode): the sharded
      epoch at least 3x faster end to end.
    * ``batch_100k`` (full mode only): 100,000 one-hop flows over 12,500
      star islands registered and allocated through
      :class:`BatchAllocationEngine` in one epoch, then one
      release/re-register churn cycle; p50/p99 epoch latency comes from
      the ``runtime.epoch.latency_ms`` histogram via the standard SLO
      report.

    ``BENCH_SHARDED_QUICK=1`` shrinks the churn loop and skips the
    batch point (CI's shard-smoke job).
    """
    import gc
    import time

    from repro.obs.slo import slo_report, validate_slo
    from repro.perf.shard import BatchAllocationEngine
    from repro.resilience.admission import ADMIT
    from repro.resilience.runtime import AllocatorRuntime, RuntimeConfig

    quick = bool(os.environ.get(_SHARDED_QUICK_ENV))
    epochs = 3 if quick else 8
    scenario = ladder_islands()
    ids = [f.flow_id for f in scenario.flows]

    def churn_run(sharded):
        with obs.using_registry() as reg:
            runtime = AllocatorRuntime(scenario, RuntimeConfig(
                sharded=sharded, jobs=8 if sharded else 1,
                admission=False,
            ))
            runtime.set_active(ids)  # prime: the steady state under test
            gc.collect()
            t0 = time.perf_counter()
            for e in range(epochs):
                runtime.set_active([f for f in ids if f != f"f0_{e}"])
            elapsed = time.perf_counter() - t0
        journal = [r.to_dict() for r in runtime.journal]
        return journal, elapsed, reg.snapshot()["counters"]

    sharded_journal, sharded_s, counters = churn_run(True)
    mono_journal, mono_s, _ = churn_run(False)
    assert sharded_journal == mono_journal  # bitwise, before any timing
    # Each churn epoch re-solved island 0 alone and reused the other 7.
    assert counters["runtime.shard.reused"] == epochs * 7
    assert counters["runtime.shard.dirty"] == 8 + epochs
    speedup = mono_s / sharded_s

    payload = {
        "kernel": "component-sharded allocation (per-component memo + "
                  "dirty tracking) vs monolithic warm runtime",
        "churn": {
            "islands": 8,
            "flows": len(ids),
            "epochs": epochs,
            "sharded_epoch_ms": sharded_s / epochs * 1e3,
            "monolithic_epoch_ms": mono_s / epochs * 1e3,
            "speedup": speedup,
        },
    }

    if not quick:
        # Acceptance gate: churn epochs at least 3x faster sharded.
        assert speedup >= 3.0, payload["churn"]

        analysis = star_island_universe(islands=12_500)
        flow_ids = [f.flow_id for f in analysis.scenario.flows]
        island0 = flow_ids[:8]
        with obs.using_registry() as reg:
            engine = BatchAllocationEngine(analysis)
            t0 = time.perf_counter()
            decisions = engine.register(flow_ids)
            register_s = time.perf_counter() - t0
            assert all(d.action == ADMIT for d in decisions)
            rates = engine.allocate()
            assert len(rates) == len(flow_ids)
            assert engine.solver.last_stats["dirty"] == 12_500
            # One churn cycle: island 0 leaves and returns; every epoch
            # after the first reuses all cached components.
            engine.release(island0)
            engine.allocate()
            assert engine.solver.last_stats["dirty"] == 0
            engine.register(island0)
            rates = engine.allocate()
            assert engine.solver.last_stats["dirty"] == 0
            assert len(rates) == len(flow_ids)
            slo = slo_report(reg)
        validate_slo(slo)
        latency = slo["epoch_latency_ms"]
        assert latency["count"] == 3
        payload["batch_100k"] = {
            "islands": 12_500,
            "flows": len(flow_ids),
            "admitted": len(decisions),
            "register_ms": register_s * 1e3,
            "epoch_latency_ms": latency,
        }

    perf_section("sharded_alloc", payload)


def test_obs_disabled_overhead_under_two_percent():
    """Instrumentation with no registry active must stay in the noise.

    Compares the analytic hot pipeline (contention + LP) against itself
    with a registry active; the *disabled* path is the production default,
    so the budget is checked in the direction that matters: enabling
    metrics may cost a little, but the disabled path must not regress.
    The bound is deliberately loose (20%) and both sides use best-of-N
    timing to stay robust on noisy CI machines — the real disabled-path
    delta is a handful of ``is None`` checks per pipeline run, far
    below 2%.
    """
    import time

    scenario = make_random_scenario(num_nodes=20, num_flows=5, seed=4,
                                    max_hops=5)

    def pipeline():
        analysis = ContentionAnalysis(scenario)
        return basic_fairness_lp_allocation(analysis)

    def best_of(rounds):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            pipeline()
            best = min(best, time.perf_counter() - t0)
        return best

    pipeline()  # warm caches
    disabled = best_of(5)
    with obs.using_registry():
        enabled = best_of(5)

    assert disabled <= enabled * 1.20, (
        f"disabled-path run ({disabled:.4f}s) should not exceed the "
        f"metrics-enabled run ({enabled:.4f}s) by more than noise"
    )
