"""Fig. 4 / Sec. IV-C: weighted contention graph LP (analytic)."""

import pytest

from repro.core import basic_fairness_lp_allocation
from repro.scenarios import fig4


def test_bench_fig4_allocation(benchmark):
    analysis = fig4.make_analysis()
    alloc = benchmark(basic_fairness_lp_allocation, analysis)
    for fid, expected in fig4.PAPER_ALLOCATION.items():
        assert alloc.share(fid) == pytest.approx(expected, abs=1e-6)
    subflow_shares = {
        str(s.sid): round(alloc.share(s.flow_id), 4)
        for s in analysis.scenario.all_subflows()
    }
    print("\nFig.4 allocated shares:", subflow_shares,
          "(paper: 3B/10, B/5, B/5, 3B/10, 7B/10)")
