"""Fig. 2: fairness in the single-hop vs multi-hop case (analytic)."""

import pytest

from repro.core import ContentionAnalysis, basic_fairness_lp_allocation, \
    fairness_constrained_allocation
from repro.scenarios import fig2


def test_bench_fig2a_single_hop(benchmark):
    analysis = ContentionAnalysis(fig2.make_single_hop_scenario())
    alloc = benchmark(fairness_constrained_allocation, analysis)
    assert alloc.shares == pytest.approx(fig2.PAPER_SINGLE_HOP)
    print("\nFig.2(a):", alloc.normalized(), "paper:",
          fig2.PAPER_SINGLE_HOP)


def test_bench_fig2b_unfair_strawman(benchmark):
    scenario = fig2.make_multi_hop_scenario()
    unfair = benchmark(fig2.unfair_time_share_allocation, scenario)
    assert unfair == pytest.approx(fig2.PAPER_UNFAIR_THROUGHPUT)
    print("\nFig.2(b) end-to-end:", unfair, "paper:",
          fig2.PAPER_UNFAIR_THROUGHPUT)


def test_bench_fig2c_fair_multi_hop(benchmark):
    analysis = ContentionAnalysis(fig2.make_multi_hop_scenario())
    alloc = benchmark(basic_fairness_lp_allocation, analysis)
    assert alloc.shares == pytest.approx(fig2.PAPER_FAIR_SHARES)
    print("\nFig.2(c):", alloc.normalized(), "paper:",
          fig2.PAPER_FAIR_SHARES)
