"""Fig. 1 / Sec. III worked comparison (analytic).

Regenerates the allocation strategies the paper derives on the Fig. 1
topology: basic shares, the fairness-constrained allocation, the basic
fairness LP optimum, and the two-tier single-hop optimum — and checks the
headline numbers (3B/4 vs 5B/8 effective; 3B/2 vs 7B/4 single-hop).
"""

import pytest

from repro.core import (
    ContentionAnalysis,
    basic_fairness_lp_allocation,
    fairness_constrained_allocation,
    single_hop_optimal_allocation,
    total_single_hop_throughput,
)
from repro.scenarios import fig1


@pytest.fixture(scope="module")
def analysis():
    return ContentionAnalysis(fig1.make_scenario())


def test_bench_fig1_lp_allocation(benchmark, analysis):
    alloc = benchmark(basic_fairness_lp_allocation, analysis)
    assert alloc.share("1") == pytest.approx(0.5)
    assert alloc.share("2") == pytest.approx(0.25)
    print("\nFig.1 2PA allocation:", alloc.normalized(),
          "paper:", fig1.PAPER_BASIC_FAIRNESS_ALLOCATION)


def test_bench_fig1_fairness_allocation(benchmark, analysis):
    alloc = benchmark(fairness_constrained_allocation, analysis)
    assert alloc.total_effective_throughput == pytest.approx(2 / 3)
    print("\nFig.1 fairness-constrained:", alloc.normalized(),
          "paper:", fig1.PAPER_FAIRNESS_ALLOCATION)


def test_bench_fig1_two_tier_allocation(benchmark, analysis):
    alloc = benchmark(single_hop_optimal_allocation, analysis)
    assert total_single_hop_throughput(alloc) == pytest.approx(
        1.75, abs=1e-4
    )
    assert alloc.total_effective_throughput == pytest.approx(
        0.625, abs=1e-4
    )
    print("\nFig.1 two-tier subflows:",
          {str(k): round(v, 4) for k, v in alloc.subflow_shares.items()},
          "paper:", fig1.PAPER_TWO_TIER_SUBFLOWS)
