"""Fig. 6 + Table I: centralized vs distributed phase-1 (analytic)."""

import pytest

from repro.core import run_centralized, run_distributed
from repro.experiments import run_table1
from repro.scenarios import fig6


def test_bench_fig6_centralized(benchmark):
    alloc = benchmark(run_centralized, fig6.make_scenario())
    for fid, expected in fig6.PAPER_CENTRALIZED.items():
        assert alloc.share(fid) == pytest.approx(expected, abs=1e-6)
    print("\nFig.6 2PA-C:", {k: round(v, 4) for k, v in
                             alloc.shares.items()},
          "paper:", fig6.PAPER_CENTRALIZED)


def test_bench_fig6_distributed(benchmark):
    alloc = benchmark(run_distributed, fig6.make_scenario())
    for fid, expected in fig6.OUR_DISTRIBUTED.items():
        assert alloc.share(fid) == pytest.approx(expected, abs=1e-5)
    print("\nFig.6 2PA-D:", {k: round(v, 4) for k, v in
                             alloc.shares.items()},
          "paper:", fig6.PAPER_DISTRIBUTED,
          "(F5 deviation documented in DESIGN.md)")


def test_bench_table1_report(benchmark):
    report = benchmark(run_table1)
    print("\n" + report.render())
    for node, expected in fig6.TABLE1_LOCAL_SOLUTIONS.items():
        row = next(r for r in report.rows if r.source == node)
        for fid, value in expected.items():
            assert row.local_solution[f"r_{fid}"] == pytest.approx(
                value, abs=1e-5
            )
