"""Fig. 3: the virtual-length 3-coloring (analytic)."""

import pytest

from repro.graphs import (
    chain_coloring,
    chain_contention_graph,
    color_classes,
    is_proper_coloring,
    maximal_cliques,
    num_colors,
)
from repro.scenarios import fig3


def test_bench_fig3_coloring(benchmark):
    coloring = benchmark(chain_coloring, 6)
    classes = [sorted(j + 1 for j in c) for c in color_classes(coloring)]
    assert classes == fig3.PAPER_COLOR_CLASSES
    assert is_proper_coloring(chain_contention_graph(6), coloring)
    print("\nFig.3 color classes:", classes, "paper:",
          fig3.PAPER_COLOR_CLASSES)


def test_bench_fig3_chain_cliques(benchmark):
    graph = chain_contention_graph(12)
    cliques = benchmark(maximal_cliques, graph)
    assert all(len(c) == 3 for c in cliques)
    print("\n12-hop chain: ", len(cliques),
          "maximal cliques, all consecutive triples")


def test_bench_fig3_long_chain_coloring_scales(benchmark):
    coloring = benchmark(chain_coloring, 500)
    assert num_colors(coloring) == 3
