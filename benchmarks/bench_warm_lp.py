"""Benches for warm-started LP re-solves.

A capacity sweep over one contention structure is the cleanest sibling
family the allocator produces: every capacity value yields max-min LPs
with identical variables and constraint supports and only the right-hand
sides perturbed — exactly what :class:`repro.perf.warm.WarmLPCache`
keys on.  The bench solves the sweep cold (fresh simplex per LP) and
warm (basis replay plus prefix extension across the max-min rounds),
asserts the two produce bitwise-identical allocations, and reports the
pivot-count reduction — a deterministic quantity, unlike wall time, so
it doubles as the regression gate for the warm-start machinery.
"""

import gc
import time

import pytest

from repro import obs
from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis, subflow_contention_graph
from repro.core.model import Scenario
from repro.graphs.cliques import maximal_cliques
from repro.perf.warm import WarmLPCache
from repro.scenarios import make_random_scenario

#: Capacity multipliers for the sibling-LP sweep (structure constant,
#: right-hand sides perturbed).
_CAPACITY_SWEEP = (1.0, 0.8, 1.25, 0.9, 1.1, 0.75, 1.5)


def _sweep_analyses(nodes, flows, seed):
    base = make_random_scenario(num_nodes=nodes, num_flows=flows, seed=seed)
    graph = subflow_contention_graph(base.network, base.flows)
    cliques = maximal_cliques(graph)
    out = []
    for mult in _CAPACITY_SWEEP:
        sc = Scenario(base.network, base.flows, name=f"cap-{mult}",
                      capacity=base.capacity * mult)
        out.append(ContentionAnalysis(sc, graph=graph, cliques=cliques))
    return out


def _solve_sweep(analyses, backend):
    return [dict(basic_fairness_lp_allocation(a, backend=backend).shares)
            for a in analyses]


@pytest.mark.parametrize("nodes,flows", [(30, 8), (60, 16)])
def test_warm_sweep_matches_cold_bitwise(nodes, flows):
    analyses = _sweep_analyses(nodes, flows, seed=3)
    cold = _solve_sweep(analyses, "simplex")
    warm = WarmLPCache()
    assert _solve_sweep(analyses, warm.solver) == cold
    assert warm.hits > 0


@pytest.mark.parametrize("nodes,flows", [(30, 8)])
def test_bench_warm_sweep(benchmark, nodes, flows):
    """The capacity sweep through the warm path (cache pre-seeded)."""
    analyses = _sweep_analyses(nodes, flows, seed=3)
    warm = WarmLPCache()
    _solve_sweep(analyses, warm.solver)  # seed the basis cache
    out = benchmark(_solve_sweep, analyses, warm.solver)
    assert len(out) == len(_CAPACITY_SWEEP)


#: (nodes, flows, seed) points for the cold-vs-warm sweep comparison.
_WARM_SIZES = ((30, 8, 3), (60, 16, 3), (80, 24, 3))


def test_emit_perf_warm_lp(perf_section):
    """Emit the ``warm_lp`` section of BENCH_perf.json.

    Solves the capacity sweep cold and warm (best-of-3 each, GC parked
    between rounds), asserts bitwise-identical allocations, and records
    wall times plus the simplex pivot counts for one run of each path.
    Pivot counts are deterministic, so ``pivot_reduction`` is the stable
    gating metric; the times contextualize it.
    """
    points = []
    for nodes, flows, seed in _WARM_SIZES:
        analyses = _sweep_analyses(nodes, flows, seed)

        with obs.using_registry() as reg:
            cold_out = _solve_sweep(analyses, "simplex")
        cold_pivots = reg.snapshot()["counters"]["lp.simplex.pivots"]

        warm = WarmLPCache()
        with obs.using_registry() as reg:
            warm_out = _solve_sweep(analyses, warm.solver)
        snap = reg.snapshot()["counters"]
        warm_pivots = snap["lp.simplex.pivots"]

        assert warm_out == cold_out, "warm start changed the allocations"

        cold_s = warm_s = float("inf")
        for _ in range(3):
            gc.collect()
            t0 = time.perf_counter()
            _solve_sweep(analyses, "simplex")
            cold_s = min(cold_s, time.perf_counter() - t0)
            gc.collect()
            warm_timed = WarmLPCache()
            t0 = time.perf_counter()
            _solve_sweep(analyses, warm_timed.solver)
            warm_s = min(warm_s, time.perf_counter() - t0)

        points.append({
            "nodes": nodes,
            "flows": flows,
            "seed": seed,
            "lps_solved": len(_CAPACITY_SWEEP),
            "cold_ms": cold_s * 1e3,
            "warm_ms": warm_s * 1e3,
            "cold_pivots": cold_pivots,
            "warm_pivots": warm_pivots,
            "pivot_reduction": cold_pivots / max(warm_pivots, 1),
            "warm_hits": snap.get("perf.lp.warm.hits", 0),
            "warm_extends": snap.get("perf.lp.warm.extends", 0),
            "warm_fallbacks": snap.get("perf.lp.warm.fallbacks", 0),
        })

    perf_section("warm_lp", {
        "family": ("capacity sweep x{} over one contention structure "
                   "(identical LP structure, perturbed rhs)"
                   .format(len(_CAPACITY_SWEEP))),
        "points": points,
        "headline_pivot_reduction": points[-1]["pivot_reduction"],
    })
