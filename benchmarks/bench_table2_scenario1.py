"""Table II: the scenario-1 simulation (Fig. 1 topology).

Simulates 802.11, two-tier and 2PA for a scaled-down session and prints
the table in the paper's format.  Shape claims asserted:

* 2PA's subflow ratios track its allocated shares (1/2 : 1/2 : 1/4 : 1/4);
* 802.11 starves the middle subflow F1.2;
* 2PA achieves the highest total effective throughput;
* loss ratios order 2PA << two-tier, 802.11 (paper: 0.004 / 0.045 / 0.132).
"""

import pytest

from repro.experiments import run_table2

DURATION = 20.0  # simulated seconds (paper: 1000 s in ns-2)


@pytest.fixture(scope="module")
def table():
    return run_table2(duration=DURATION, seed=1)


def test_bench_table2(once, capsys):
    table = once(run_table2, duration=DURATION, seed=1)
    with capsys.disabled():
        print("\n" + table.render())
        print("paper Table II (1000 s): 802.11 / two-tier / 2PA")
        print("  sum r_i T : 152485 / 126499 / 167488")
        print("  loss ratio:  0.132 /  0.045 /  0.004")
    tpa = table.column("2PA-C")
    dcf = table.column("802.11")
    two_tier = table.column("two-tier")
    # 2PA tracks the allocated shares.
    r11 = tpa.subflow_packets[_sid("1", 1)]
    r12 = tpa.subflow_packets[_sid("1", 2)]
    r21 = tpa.subflow_packets[_sid("2", 1)]
    assert r11 / r12 == pytest.approx(1.0, rel=0.1)
    assert r11 / r21 == pytest.approx(2.0, rel=0.25)
    # 802.11 starves F1.2.
    assert dcf.subflow_packets[_sid("1", 2)] < (
        0.25 * dcf.subflow_packets[_sid("1", 1)]
    )
    # Orderings.
    assert tpa.total_effective > dcf.total_effective
    assert tpa.total_effective > two_tier.total_effective
    assert tpa.loss_ratio < 0.1 * two_tier.loss_ratio
    assert tpa.loss_ratio < 0.1 * dcf.loss_ratio


def _sid(flow, hop):
    from repro.core.model import SubflowId

    return SubflowId(flow, hop)
