"""Overload benches: sustainable rate, shedding behaviour, epoch latency.

Runs the ``run_overload`` campaign — open-loop Poisson arrivals at 2x
each scenario's measured sustainable rate, with forced epoch stalls so
the deadline-breach path is exercised — and emits the ``overload``
section of ``BENCH_perf.json``: per-case sustainable rates, breach and
shed tallies, staleness, and epoch-latency p50/p99 under pressure.

``BENCH_OVERLOAD_QUICK=1`` (CI's overload-smoke job) shrinks the
campaign to one case with a serial solver; the full run adds a second
case, a pooled solve (jobs=2), and an injected worker crash so the
fault-tolerant sharded path is measured too.
"""

import os

_OVERLOAD_QUICK_ENV = "BENCH_OVERLOAD_QUICK"


def test_emit_perf_overload(perf_section):
    """Emit the ``overload`` section of BENCH_perf.json.

    Every case must complete with zero safety violations (the Eq. (6)
    and basic-floor checks run on the final committed allocation), every
    forced breach must carry a staleness record, and the campaign's
    latency percentiles land in the artifact for regression gating.
    """
    from repro.resilience import run_overload

    quick = bool(os.environ.get(_OVERLOAD_QUICK_ENV))
    cases = 1 if quick else 2
    epochs = 6 if quick else 12
    report = run_overload(
        cases=cases,
        seed=0,
        epochs=epochs,
        multiplier=2.0,
        stall_epochs=2,
        worker_crash=not quick,
        jobs=1 if quick else 2,
    )
    assert report.ok, [v.to_dict() for v in report.violations]
    assert report.breaches == 2 * cases  # two forced stalls per case
    for name, outcomes in report.checks.items():
        assert outcomes.get("fail", 0) == 0, name

    offered = sum(int(r["offered"] * epochs) for r in report.rates)
    payload = {
        "kernel": "overload protection (deadline-bounded epochs + "
                  "graduated shedding ladder + worker-fault-tolerant "
                  "sharded solves)",
        "cases": cases,
        "epochs": epochs,
        "multiplier": 2.0,
        "mean_sustainable_rate": (
            sum(r["sustainable"] for r in report.rates) / len(report.rates)
        ),
        "offered_flows": offered,
        "admissions": dict(report.admissions),
        "breaches": report.breaches,
        "sheds": report.sheds,
        "shed_rate": report.sheds / max(1, offered),
        "statuses": dict(report.statuses),
        "epoch_p50_ms": max(r["latency_p50_ms"] for r in report.rates),
        "epoch_p99_ms": max(r["latency_p99_ms"] for r in report.rates),
    }
    perf_section("overload", payload)
