"""Table III: the scenario-2 simulation (Fig. 6 topology).

Simulates 802.11, two-tier, 2PA-C and 2PA-D.  Shape claims asserted:

* 2PA-C's flow throughputs track (1/3, 1/3, 2/3, 1/8, 3/4);
* 2PA-D's track (1/3, 1/5, 1/4, 1/4, ·) and total below 2PA-C;
* both 2PA variants lose almost nothing while 802.11 and two-tier lose
  orders of magnitude more (paper loss ratios: 0.100 / 0.027 / 0.006 /
  0.004);
* 2PA-C beats two-tier on total effective throughput.
"""

import pytest

from repro.experiments import run_table3

DURATION = 20.0


def test_bench_table3(once, capsys):
    table = once(run_table3, duration=DURATION, seed=1)
    with capsys.disabled():
        print("\n" + table.render())
        print("paper Table III (1000 s): 802.11 / two-tier / 2PA-C / 2PA-D")
        print("  sum r_i T : 443204 / 394125 / 422162 / 352341")
        print("  loss ratio:  0.100 /  0.027 /  0.006 /  0.004")
    tpac = table.column("2PA-C")
    tpad = table.column("2PA-D")
    dcf = table.column("802.11")
    two_tier = table.column("two-tier")

    # 2PA-C tracks centralized shares (ratios vs flow 1).
    u = tpac.flow_packets
    assert u["2"] / u["1"] == pytest.approx(1.0, rel=0.2)
    assert u["3"] / u["1"] == pytest.approx(2.0, rel=0.2)
    assert u["4"] / u["1"] == pytest.approx(3 / 8, rel=0.3)
    assert u["5"] / u["1"] == pytest.approx(9 / 4, rel=0.2)

    # 2PA-D tracks its distributed shares.
    v = tpad.flow_packets
    assert v["2"] / v["1"] == pytest.approx(0.6, rel=0.25)
    assert v["3"] / v["1"] == pytest.approx(0.75, rel=0.25)
    assert v["4"] / v["1"] == pytest.approx(0.75, rel=0.25)

    # Orderings as in the paper.
    assert tpac.total_effective > two_tier.total_effective
    assert tpac.total_effective > tpad.total_effective
    assert tpac.loss_ratio < 0.25 * two_tier.loss_ratio
    assert tpac.loss_ratio < 0.25 * dcf.loss_ratio
    assert tpad.loss_ratio < 0.25 * dcf.loss_ratio
