"""Ablation benches: alpha, CWmin, buffers, virtual length, scaling."""

import pytest

from repro.experiments import (
    alpha_sweep,
    buffer_sweep,
    cwmin_sweep,
    scaling_study,
    virtual_length_ablation,
)


def test_bench_alpha_sweep(once, capsys):
    sweep = once(alpha_sweep, alphas=(0.0, 0.005, 0.02),
                 duration=5.0)
    with capsys.disabled():
        print("\n" + sweep.render())
    adherence = dict(zip([p.parameter for p in sweep.points],
                         sweep.series("share_adherence")))
    # Tag feedback (alpha > 0) must improve share adherence over none.
    assert adherence[0.005] > adherence[0.0]


def test_bench_cwmin_sweep(once, capsys):
    sweep = once(cwmin_sweep, cwmins=(15, 31, 63), duration=5.0)
    with capsys.disabled():
        print("\n" + sweep.render())
    for p in sweep.points:
        assert p.values["tpa_loss_ratio"] < p.values["dcf_loss_ratio"]


def test_bench_buffer_sweep(once, capsys):
    sweep = once(buffer_sweep, capacities=(10, 50), duration=5.0)
    with capsys.disabled():
        print("\n" + sweep.render())
    for p in sweep.points:
        # Equal-per-hop shares keep relay losses far below two-tier's at
        # every buffer size.
        assert p.values["tpa_lost"] < 0.2 * max(
            p.values["two_tier_lost"], 1.0
        )


def test_bench_virtual_length_ablation(benchmark, capsys):
    sweep = benchmark(virtual_length_ablation)
    with capsys.disabled():
        print("\n" + sweep.render())
    for p in sweep.points:
        assert p.values["basic_share"] >= p.values["naive_share"] - 1e-9


def test_bench_scaling_study(once, capsys):
    sweep = once(scaling_study, sizes=(10, 16, 22))
    with capsys.disabled():
        print("\n" + sweep.render())
    for p in sweep.points:
        assert p.values["centralized_basic_ok"] == 1.0
