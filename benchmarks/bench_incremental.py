"""Benches for the dynamic re-allocation fast path.

Measured speedups here compare against the *current* cold path, which
already contains this PR's shared solver work (clone-based max-min,
restricted pivot sweeps, probe skipping); against the actual pre-perf
commit the same timelines measure several times higher again.

The dynamic experiment re-runs phase 1 at every flow arrival/departure.
This file quantifies the three layers that make that cheap — incremental
contention maintenance (:class:`repro.perf.incremental.IncrementalContention`),
warm-started LP re-solves (:class:`repro.perf.warm.WarmLPCache`), and
active-set memoization — against the cold path (full contention rebuild
with the set-based clique kernel plus cold simplex solves at every
event), which is what the code did before the perf layer existed.

Both paths must produce identical allocation sequences; every bench
asserts that before reporting a time.
"""

import time

import pytest

from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis, subflow_contention_graph
from repro.core.model import Scenario
from repro.graphs.cliques import maximal_cliques_set
from repro.perf.incremental import IncrementalContention
from repro.perf.warm import WarmLPCache
from repro.scenarios import make_random_scenario


def _churn_timeline(scenario):
    """Single-burst churn: each flow departs once and re-arrives.

    17 events over 9 distinct active sets for 8 churned flows — the
    active set returns to the full set between departures, the recurrence
    pattern arrival/departure workloads actually produce.
    """
    ids = list(scenario.flow_ids)
    steps = [list(ids)]
    for k in range(min(8, len(ids))):
        steps.append([f for f in ids if f != ids[k]])
        steps.append(list(ids))
    return steps


def _cold_sequence(scenario, steps):
    """Pre-perf-layer behaviour: full rebuild + cold solve per event."""
    out = []
    for act in steps:
        active = set(act)
        flows = [f for f in scenario.flows if f.flow_id in active]
        sub = Scenario(scenario.network, flows, name="bench-active",
                       capacity=scenario.capacity)
        graph = subflow_contention_graph(sub.network, sub.flows)
        cliques = maximal_cliques_set(graph)
        analysis = ContentionAnalysis(sub, graph=graph, cliques=cliques)
        res = basic_fairness_lp_allocation(analysis, backend="simplex")
        out.append(dict(res.shares))
    return out


def _fast_sequence(scenario, steps):
    """The perf layer: incremental contention + warm LP + active-set memo."""
    inc = IncrementalContention(scenario)
    warm = WarmLPCache()
    memo = {}
    out = []
    for act in steps:
        key = frozenset(act)
        if key not in memo:
            analysis = inc.analysis_for(act, name="bench-active")
            res = basic_fairness_lp_allocation(analysis,
                                               backend=warm.solver)
            memo[key] = dict(res.shares)
        out.append(dict(memo[key]))
    return out


@pytest.mark.parametrize("nodes,flows", [(30, 8), (60, 16)])
def test_bench_incremental_analysis(benchmark, nodes, flows):
    """Incremental analysis of a one-flow departure vs. the full set."""
    scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                    seed=3)
    inc = IncrementalContention(scenario)
    ids = list(scenario.flow_ids)

    def reanalyze():
        inc.set_active(ids[:-1])
        a = inc.analysis()
        inc.set_active(ids)
        b = inc.analysis()
        return a, b

    a, b = benchmark(reanalyze)
    assert a.graph.num_vertices() < b.graph.num_vertices()


@pytest.mark.parametrize("nodes,flows", [(30, 8)])
def test_bench_dynamic_fast_path(benchmark, nodes, flows):
    """The full churn timeline through the fast path."""
    scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                    seed=3)
    steps = _churn_timeline(scenario)
    out = benchmark(_fast_sequence, scenario, steps)
    assert len(out) == len(steps)


#: (nodes, flows, seed) points for the dynamic-sequence comparison; the
#: headline is the geometric mean over the largest size measured.
_DYNAMIC_SIZES = ((60, 16, 3), (80, 24, 3), (80, 24, 7), (80, 24, 11))


def test_emit_perf_dynamic(perf_section):
    """Emit the ``dynamic`` section of BENCH_perf.json.

    Runs the churn timeline through the cold path and the fast path
    (best-of-3 each, interleaved, GC parked between rounds), asserts the
    allocation sequences are identical, and records per-point speedups.
    The headline is the geometric mean over the largest network size —
    the same "densest measured" convention the clique section uses.
    """
    import gc

    points = []
    for nodes, flows, seed in _DYNAMIC_SIZES:
        scenario = make_random_scenario(num_nodes=nodes, num_flows=flows,
                                        seed=seed)
        steps = _churn_timeline(scenario)
        cold_s = fast_s = float("inf")
        cold_out = fast_out = None
        for _ in range(3):
            gc.collect()
            t0 = time.perf_counter()
            cold_out = _cold_sequence(scenario, steps)
            cold_s = min(cold_s, time.perf_counter() - t0)
            gc.collect()
            t0 = time.perf_counter()
            fast_out = _fast_sequence(scenario, steps)
            fast_s = min(fast_s, time.perf_counter() - t0)
        assert cold_out == fast_out, "fast path changed the allocations"
        points.append({
            "nodes": nodes,
            "flows": flows,
            "seed": seed,
            "events": len(steps),
            "distinct_active_sets": len({frozenset(s) for s in steps}),
            "cold_ms": cold_s * 1e3,
            "fast_ms": fast_s * 1e3,
            "speedup": cold_s / fast_s,
        })

    top = max(p["nodes"] for p in points)
    ratios = [p["speedup"] for p in points if p["nodes"] == top]
    headline = 1.0
    for r in ratios:
        headline *= r
    perf_section("dynamic", {
        "timeline": ("single-burst churn: each of 8 flows departs and "
                     "re-arrives (17 events, 9 distinct active sets)"),
        "cold_path": ("full contention rebuild (set-kernel cliques) + "
                      "cold simplex per event"),
        "fast_path": ("IncrementalContention + WarmLPCache + "
                      "active-set memo"),
        "points": points,
        "headline_speedup": headline ** (1.0 / len(ratios)),
    })
