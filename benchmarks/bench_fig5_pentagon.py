"""Fig. 5: the pentagon's unachievable clique bound (analytic)."""

import pytest

from repro.core import (
    basic_fairness_lp_allocation,
    check_allocation_schedulability,
    fairness_upper_bound,
)
from repro.scenarios import fig5


def test_bench_fig5_bound(benchmark):
    analysis = fig5.make_analysis()
    bound = benchmark(fairness_upper_bound, analysis)
    assert bound.total_effective_throughput == pytest.approx(2.5)
    print("\nFig.5 Prop.1 bound: B/2 per flow, total",
          bound.total_effective_throughput, "B (unachievable)")


def test_bench_fig5_schedulability(benchmark):
    analysis = fig5.make_analysis()
    alloc = basic_fairness_lp_allocation(analysis)
    report = benchmark(
        check_allocation_schedulability, analysis, alloc.shares
    )
    assert not report.feasible
    assert report.schedule_length == pytest.approx(1.25, abs=1e-6)
    print("\nFig.5 fractional schedule length:",
          round(report.schedule_length, 4), "(> 1: infeasible, paper: 5/4)")


def test_bench_fig5_achievable_uniform(benchmark):
    analysis = fig5.make_analysis()
    shares = {str(i): fig5.ACHIEVABLE_UNIFORM_SHARE for i in range(1, 6)}
    report = benchmark(
        check_allocation_schedulability, analysis, shares
    )
    assert report.feasible
    print("\nFig.5 uniform 2B/5 is schedulable at length",
          round(report.schedule_length, 4))
