"""The ideal gap: fluid bound vs TDMA vs the CSMA systems (Fig. 1).

Quantifies where throughput goes: the fluid bound is pure allocation
math; ideal TDMA pays only DATA-frame overhead; 2PA additionally pays
random access (DIFS, backoff, RTS/CTS, collisions); 802.11 additionally
pays unfairness.  This extends the paper's evaluation with the explicit
"estimation algorithm as upper bound" comparison Sec. III motivates.
"""

import pytest

from repro.core import ContentionAnalysis, basic_fairness_lp_allocation
from repro.sched import build_2pa, build_80211, build_tdma
from repro.sched.fluid import fluid_prediction
from repro.scenarios import fig1

DURATION = 10.0


def test_bench_ideal_gap(once, capsys):
    scenario = fig1.make_scenario()
    analysis = ContentionAnalysis(scenario)
    allocation = basic_fairness_lp_allocation(analysis)

    def run_all():
        fluid = fluid_prediction(analysis, allocation, DURATION)
        tdma = build_tdma(scenario).run(DURATION)
        tpa = build_2pa(scenario, "centralized", seed=1,
                        analysis=analysis).run.run(DURATION)
        dcf = build_80211(scenario, seed=1).run.run(DURATION)
        return fluid, tdma, tpa, dcf

    fluid, tdma, tpa, dcf = once(run_all)
    rows = {
        "fluid bound": fluid.total_packets,
        "ideal TDMA": float(tdma.total_effective_throughput_packets()),
        "2PA (CSMA)": float(tpa.total_effective_throughput_packets()),
        "802.11": float(dcf.total_effective_throughput_packets()),
    }
    with capsys.disabled():
        print(f"\nTotal effective throughput over {DURATION:g} s (pkts):")
        for name, value in rows.items():
            print(f"  {name:12s} {value:10.0f}")
        print(f"  TDMA/fluid   {rows['ideal TDMA'] / rows['fluid bound']:.2f}"
              f"   2PA/TDMA {rows['2PA (CSMA)'] / rows['ideal TDMA']:.2f}")
    # The ladder must be strictly ordered.
    assert rows["fluid bound"] > rows["ideal TDMA"]
    assert rows["ideal TDMA"] > rows["2PA (CSMA)"]
    assert rows["2PA (CSMA)"] > rows["802.11"]
    # And TDMA/2PA lose (almost) nothing while 802.11 bleeds packets.
    assert tdma.total_lost_packets() == 0
    assert tpa.loss_ratio() < 0.05
    assert dcf.loss_ratio() > 0.5
