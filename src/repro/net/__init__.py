"""Network substrate: packets, frames, queues."""

from .packet import DataPacket, Frame, FrameKind, TagInfo
from .queues import DEFAULT_CAPACITY, DropTailQueue, QueueStats

__all__ = [
    "DataPacket",
    "Frame",
    "FrameKind",
    "TagInfo",
    "DropTailQueue",
    "QueueStats",
    "DEFAULT_CAPACITY",
]
