"""Packets and MAC frames.

A :class:`DataPacket` is the network-layer unit travelling hop by hop
along a source route; :class:`Frame` is the MAC-layer unit occupying the
channel (RTS/CTS/DATA/ACK).  Control frames carry the piggybacked
service-tag fields the 2PA phase-2 scheduler needs (Sec. IV-C: "the RTS,
CTS and ACK packets are used to piggyback the new service tag of the
currently transmitting data packet").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..core.model import NodeId, SubflowId

_packet_counter = itertools.count(1)


@dataclass
class DataPacket:
    """One network-layer packet of a multi-hop flow."""

    flow_id: str
    route: Tuple[NodeId, ...]          # full source route, source..dest
    size_bytes: int
    created_at: float
    seq: int = 0
    hop: int = 1                       # 1-based index of the current hop
    uid: int = field(default_factory=lambda: next(_packet_counter))

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError("route must have at least two nodes")
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def subflow(self) -> SubflowId:
        """The subflow this packet currently belongs to."""
        return SubflowId(self.flow_id, self.hop)

    @property
    def sender(self) -> NodeId:
        return self.route[self.hop - 1]

    @property
    def receiver(self) -> NodeId:
        return self.route[self.hop]

    @property
    def destination(self) -> NodeId:
        return self.route[-1]

    @property
    def at_last_hop(self) -> bool:
        return self.hop == len(self.route) - 1

    def advance(self) -> None:
        """Move the packet to its next hop (after a successful delivery)."""
        if self.at_last_hop:
            raise RuntimeError(f"packet {self.uid} is already at last hop")
        self.hop += 1

    def next_hop_copy(self) -> "DataPacket":
        """A fresh packet object for the next hop.

        Relays must forward a *copy* (with a new uid): the upstream sender
        still references the original while waiting for its ACK, and the
        per-hop duplicate filter keys on uid.
        """
        if self.at_last_hop:
            raise RuntimeError(f"packet {self.uid} is already at last hop")
        return DataPacket(
            flow_id=self.flow_id,
            route=self.route,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            seq=self.seq,
            hop=self.hop + 1,
        )


class FrameKind(Enum):
    """The four frame types of the RTS/CTS/DATA/ACK handshake."""

    RTS = "RTS"
    CTS = "CTS"
    DATA = "DATA"
    ACK = "ACK"


@dataclass(frozen=True)
class TagInfo:
    """Piggybacked scheduling state (Sec. IV-C's service tags).

    ``start_tag`` is the current packet's start tag at the transmitting
    node; ``receiver_backoff`` is the receiver-estimated backoff value R
    (carried in ACK frames only).
    """

    node: NodeId
    subflow: Optional[SubflowId]
    start_tag: float
    receiver_backoff: Optional[float] = None


@dataclass(frozen=True)
class Frame:
    """A MAC frame occupying the channel for ``duration`` microseconds.

    ``nav`` is the duration-field value: how long *after this frame ends*
    the medium will stay reserved (virtual carrier sense for overhearers).
    """

    kind: FrameKind
    src: NodeId
    dst: NodeId
    duration: float
    nav: float = 0.0
    packet: Optional[DataPacket] = None
    tags: Optional[TagInfo] = None

    def __str__(self) -> str:
        return f"{self.kind.value} {self.src}->{self.dst}"
