"""Drop-tail packet queues with statistics.

Each subflow originating at a node has its own FIFO queue (Sec. IV-C:
"packets from different subflows are queued separately").  The plain
802.11 baseline instead uses one interface queue per node, which is the
same class with a single merged key.  Buffer overflow at relays is the
loss mechanism the paper's Tables II/III measure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from .packet import DataPacket

#: ns-2's default interface-queue length.
DEFAULT_CAPACITY = 50


@dataclass
class QueueStats:
    enqueued: int = 0
    dropped: int = 0
    dequeued: int = 0

    @property
    def occupancy_delta(self) -> int:
        """Packets currently held (enqueued - dequeued - dropped-at-entry)."""
        return self.enqueued - self.dequeued


class DropTailQueue:
    """A bounded FIFO; arrivals beyond ``capacity`` are dropped."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[DataPacket] = deque()
        self.stats = QueueStats()

    def offer(self, packet: DataPacket) -> bool:
        """Enqueue ``packet``; returns False (and counts a drop) if full."""
        if len(self._items) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._items.append(packet)
        self.stats.enqueued += 1
        return True

    def head(self) -> Optional[DataPacket]:
        """Peek the head-of-line packet without removing it."""
        return self._items[0] if self._items else None

    def pop(self) -> DataPacket:
        """Remove and return the head-of-line packet."""
        if not self._items:
            raise IndexError("pop from empty queue")
        self.stats.dequeued += 1
        return self._items.popleft()

    def remove(self, packet: DataPacket) -> None:
        """Remove a specific packet (used when the MAC drops the HOL)."""
        self._items.remove(packet)
        self.stats.dequeued += 1

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity
