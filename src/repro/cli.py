"""Command-line entry point: ``python -m repro`` or ``repro-experiments``.

Subcommands::

    examples              run all analytic worked examples (Figs. 1-5)
    table1                Table I (distributed local LPs on Fig. 6)
    table2 [--duration S] Table II simulation (Fig. 1 topology)
    table3 [--duration S] Table III simulation (Fig. 6 topology)
    ablation NAME         one of: alpha, cwmin, buffer, virtual-length,
                          scaling
    verify                differential oracles + paper invariants on
                          seeded random scenarios (fuzzing harness)
    chaos                 fault-injection campaign: lossy 2PA-D across a
                          loss-rate x crash-schedule grid with safety
                          invariants checked on every run
    churn                 long-lived runtime campaign: seeded churn
                          timelines through the epoch-based allocator
                          runtime (admission control, checkpoints, a
                          mid-timeline crash + restore differential)
    all                   everything above with default settings

Observability flags (on ``table1``/``table2``/``table3``/``ablation``/
``report``)::

    --json                print a schema-versioned run artifact (JSON) to
                          stdout instead of the human table
    --metrics-out PATH    write the artifact to PATH (atomic; ``.jsonl``
                          selects the streaming layout)
    --profile             print per-phase wall/CPU timings and counters
    --trace CATS          enable trace categories (comma-separated:
                          mac,chan,queue,app,sched) on simulation runs
    --trace-out PATH      enable hierarchical span tracing; write the
                          span records (JSONL) to PATH
    --telemetry PATH      stream telemetry events (JSONL) to PATH live
    --prom-out PATH       write metrics in Prometheus text format

With ``--json`` or ``--metrics-out``, every experiment emits both the
human table (unless ``--json`` replaces it) and a machine-readable
record — per-phase timings (clique enumeration, LP solves, sim loop),
2PA-D convergence rounds/messages, epoch-latency percentiles and time
attribution (the ``slo`` section), and the paper's table quantities —
that benchmark tooling can diff across PRs.

``report --artifact PATH`` switches to telemetry mode: it renders the
latency/attribution tables from a saved artifact and diffs timer means
against ``benchmarks/BENCH_obs.json`` / ``benchmarks/BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from .experiments import (
    ALL_ABLATIONS,
    build_report,
    build_report_record,
    run_all,
    run_table1,
    run_table2,
    run_table3,
)
from .obs import (
    EventBus,
    MetricsRegistry,
    RunArtifact,
    SpanTracer,
    get_event_bus,
    get_tracer,
    render_profile,
    set_event_bus,
    set_registry,
    set_tracer,
    trace_to_records,
    write_prometheus,
)
from .sim import NULL_TRACER, Tracer

#: Result of one observed experiment: human rendering, scenario name, and
#: the structured ``results`` payload for the artifact.
_Payload = Tuple[str, str, Dict[str, object]]


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="print a run artifact (JSON) to stdout instead of the table",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run artifact to PATH (atomic; .jsonl = streaming)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall/CPU timings and counters",
    )
    parser.add_argument(
        "--trace", metavar="CATS", default=None,
        help="enable trace categories (comma-separated: "
             "mac,chan,queue,app,sched)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="enable hierarchical span tracing; write the span records "
             "(JSONL) to PATH",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream telemetry events (JSONL) to PATH as they happen "
             "(tail -f friendly)",
    )
    parser.add_argument(
        "--prom-out", metavar="PATH", default=None,
        help="write the collected metrics to PATH in Prometheus text "
             "exposition format",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce 'End-to-End Fair Bandwidth Allocation in Multi-hop "
            "Wireless Ad Hoc Networks' (ICDCS 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="analytic worked examples")
    p = sub.add_parser("table1", help="Table I: distributed local LPs")
    _add_obs_flags(p)

    for name, help_text in (
        ("table2", "Table II simulation (scenario 1)"),
        ("table3", "Table III simulation (scenario 2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=40.0,
                       help="simulated seconds (default 40)")
        p.add_argument("--seed", type=int, default=1)
        _add_obs_flags(p)

    p = sub.add_parser("ablation", help="run one ablation study")
    p.add_argument("name", choices=sorted(ALL_ABLATIONS))
    _add_obs_flags(p)

    p = sub.add_parser(
        "verify",
        help="fuzz random scenarios through differential oracles and "
             "paper-invariant checkers",
    )
    p.add_argument("--cases", type=int, default=50,
                   help="number of random scenarios (default 50)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for the scenario streams (default 0)")
    p.add_argument("--inject-fault", action="store_true",
                   help="perturb the LP allocation to prove the checkers "
                        "catch and shrink a bad allocation")
    p.add_argument("--reproducer-dir", metavar="DIR", default=None,
                   help="write shrunk failure reproducers (JSON) to DIR")
    p.add_argument("--with-scipy", action="store_true",
                   help="also cross-check LPs against scipy (slower)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the case sweep (0 = all "
                        "cores, default 1); the report is bit-identical "
                        "to a serial run")
    p.add_argument("--faults", action="store_true",
                   help="also run every case through lossy 2PA-D under a "
                        "seeded fault plan and check the resilience "
                        "safety invariants")
    p.add_argument("--churn", action="store_true",
                   help="also run every case through the long-lived "
                        "runtime under a seeded churn timeline and check "
                        "the churn safety invariants (failures shrink "
                        "the timeline)")
    p.add_argument("--backend", choices=("simplex", "revised"),
                   default="simplex",
                   help="float LP solver under test (default simplex); "
                        "'revised' fuzzes the sparse revised-simplex "
                        "backend against the same exact-Fraction oracle")
    p.add_argument("--sharded", action="store_true",
                   help="also run the component-sharded differential "
                        "axis: ShardedSolver at jobs=1/2 vs the "
                        "monolithic LP, and sharded-vs-monolithic "
                        "runtime journals (centralized + distributed "
                        "lossy), all asserted bitwise identical")
    p.add_argument("--overload", action="store_true",
                   help="also run every case through the "
                        "overload-protected runtime under an open-loop "
                        "heavy-traffic arrival trace with forced "
                        "deadline stalls and a seeded burst/worker-fault "
                        "plan (failures shrink the trace, then the plan)")
    _add_obs_flags(p)

    p = sub.add_parser(
        "chaos",
        help="fault-injection campaign: lossy 2PA-D across loss rates "
             "and crash schedules, safety invariants checked per run",
    )
    p.add_argument("--cases", type=int, default=25,
                   help="number of random scenarios (default 25)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for scenario + fault streams "
                        "(default 0)")
    p.add_argument("--loss", metavar="RATES", default="0,0.1,0.3",
                   help="comma-separated message loss rates "
                        "(default 0,0.1,0.3)")
    p.add_argument("--crash-prob", type=float, default=0.2,
                   help="per-node crash probability per plan (default 0.2)")
    p.add_argument("--max-retries", type=int, default=4,
                   help="channel retransmit budget per transfer (default 4)")
    p.add_argument("--max-rounds", type=int, default=256,
                   help="channel round budget per flow (default 256)")
    p.add_argument("--inject-fault", action="store_true",
                   help="perturb every degraded allocation to prove the "
                        "safety checkers catch a bad allocation")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the case sweep (0 = all "
                        "cores, default 1); the report is bit-identical "
                        "to a serial run")
    _add_obs_flags(p)

    p = sub.add_parser(
        "churn",
        help="long-lived runtime campaign: seeded churn timelines "
             "through the epoch-based allocator runtime, safety "
             "invariants and a crash + restore differential per case",
    )
    p.add_argument("--cases", type=int, default=30,
                   help="number of seeded churn timelines (default 30)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for scenario + timeline streams "
                        "(default 0)")
    p.add_argument("--loss", metavar="RATES", default="0,0.2",
                   help="comma-separated message loss rates; a lossy "
                        "rate runs epochs through 2PA-D over the "
                        "unreliable channel (default 0,0.2)")
    p.add_argument("--epochs", type=int, default=10,
                   help="epochs per timeline (default 10)")
    p.add_argument("--crash-prob", type=float, default=0.0,
                   help="per-node crash probability per lossy epoch's "
                        "fault plan (default 0)")
    p.add_argument("--hysteresis", type=float, default=0.3,
                   help="max fractional per-epoch change of a flow's "
                        "allocation; 0 disables damping (default 0.3)")
    p.add_argument("--no-crash-restore", action="store_true",
                   help="skip the per-case mid-timeline crash + restore "
                        "differential (faster)")
    p.add_argument("--inject-fault", action="store_true",
                   help="perturb every final allocation to prove the "
                        "safety checkers catch a bad allocation")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for each runtime's shard "
                        "pool (0 = all cores, default 1); shares and "
                        "reports are bitwise identical at any job count")
    _add_obs_flags(p)

    p = sub.add_parser(
        "overload",
        help="overload campaign: open-loop heavy traffic at a multiple "
             "of the measured sustainable rate through the "
             "deadline-watchdogged, load-shedding runtime",
    )
    p.add_argument("--cases", type=int, default=5,
                   help="number of random scenarios (default 5)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed for scenario + trace streams "
                        "(default 0)")
    p.add_argument("--epochs", type=int, default=12,
                   help="epochs per arrival trace (default 12)")
    p.add_argument("--multiplier", type=float, default=2.0,
                   help="offered load as a multiple of the measured "
                        "sustainable arrival rate (default 2)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="epoch solve budget in milliseconds; breaching "
                        "it commits the last validated allocation and "
                        "escalates the shedding ladder (default: no "
                        "wall-clock deadline)")
    p.add_argument("--max-queue", type=int, default=32,
                   help="admission queue depth bound (default 32)")
    p.add_argument("--queue-age", type=int, default=8,
                   help="epochs a flow may wait before age eviction "
                        "(default 8)")
    p.add_argument("--stall-epochs", type=int, default=0,
                   help="force this many initial epochs to breach their "
                        "deadline (deterministic ladder exercise, "
                        "default 0)")
    p.add_argument("--worker-crash", action="store_true",
                   help="inject one sharded-solve worker crash per case "
                        "(meaningful with --jobs > 1); shares must stay "
                        "bitwise identical via retry + serial fallback")
    p.add_argument("--hysteresis", type=float, default=0.3,
                   help="max fractional per-epoch change of a flow's "
                        "allocation; 0 disables damping (default 0.3)")
    p.add_argument("--inject-fault", action="store_true",
                   help="perturb the final allocation AND force "
                        "deadline stalls; the run then passes only if "
                        "the watchdog demonstrably bit (breaches "
                        "recorded) and the campaign stayed clean")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for each runtime's shard "
                        "pool (0 = all cores, default 1)")
    _add_obs_flags(p)

    p = sub.add_parser("show", help="render a scenario and its analysis")
    p.add_argument("scenario", choices=[
        "fig1", "fig2", "fig6", "cross", "star", "grid",
        "parallel-chains", "pentagon",
    ])

    p = sub.add_parser("report", help="full reproduction report")
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-sim", action="store_true",
                   help="skip the simulation tables (fast)")
    p.add_argument("--artifact", metavar="PATH", default=None,
                   help="telemetry mode: render latency/attribution "
                        "tables and benchmark trend deltas from a saved "
                        "run artifact instead of rebuilding the report")
    p.add_argument("--bench-obs", metavar="PATH",
                   default="benchmarks/BENCH_obs.json",
                   help="observability benchmark baseline for trend "
                        "deltas (default benchmarks/BENCH_obs.json)")
    p.add_argument("--bench-perf", metavar="PATH",
                   default="benchmarks/BENCH_perf.json",
                   help="perf benchmark baseline for fast-path reference "
                        "lines (default benchmarks/BENCH_perf.json)")
    _add_obs_flags(p)

    p = sub.add_parser("all", help="run everything")
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=1)
    return parser


def _make_tracer(args: argparse.Namespace) -> Tracer:
    spec = getattr(args, "trace", None)
    if not spec:
        return NULL_TRACER
    categories = [c.strip() for c in spec.split(",") if c.strip()]
    return Tracer(categories)


def _capture_2pad_convergence(scenario) -> Dict[str, object]:
    """Run the (analytic, cheap) 2PA-D protocol to record convergence.

    Tables II/III simulate phase 2; the distributed phase-1 protocol's
    rounds/messages-to-convergence are a property of the scenario, so the
    artifact captures them from a dedicated run here even when the table's
    simulated systems use the centralized allocator.
    """
    from .core import DistributedAllocator

    allocator = DistributedAllocator(scenario)
    allocator.run()
    return dict(allocator.convergence)


def _run_observed(
    args: argparse.Namespace,
    kind: str,
    seed: Optional[int],
    config: Dict[str, object],
    payload: Callable[[Tracer], _Payload],
) -> int:
    """Shared driver for observed subcommands.

    Activates a metrics registry when any observability output is
    requested, runs ``payload`` (which does the actual experiment with the
    prepared tracer), then emits the human table, the JSON artifact, the
    profile, and/or the trace as flagged.
    """
    wants_artifact = args.json or args.metrics_out is not None
    trace_out = getattr(args, "trace_out", None)
    telemetry = getattr(args, "telemetry", None)
    prom_out = getattr(args, "prom_out", None)
    wants_registry = (
        wants_artifact or args.profile
        or trace_out is not None or telemetry is not None
        or prom_out is not None
    )
    tracer = _make_tracer(args)

    registry = MetricsRegistry() if wants_registry else None
    span_tracer = SpanTracer() if trace_out is not None else None
    event_bus = EventBus(path=telemetry) if telemetry is not None else None
    previous = None
    prev_tracer = prev_bus = None
    if registry is not None:
        from .obs import get_registry

        previous = get_registry()
        set_registry(registry)
    if span_tracer is not None:
        prev_tracer = get_tracer()
        set_tracer(span_tracer)
    if event_bus is not None:
        prev_bus = get_event_bus()
        set_event_bus(event_bus)
    wall_start = time.perf_counter()
    try:
        rendered, scenario_name, results = payload(tracer)
    finally:
        if registry is not None:
            set_registry(previous)
        if span_tracer is not None:
            set_tracer(prev_tracer)
        if event_bus is not None:
            set_event_bus(prev_bus)
            event_bus.close()
    wall_time = time.perf_counter() - wall_start

    if not args.json:
        print(rendered)

    if trace_out is not None:
        from .obs.jsonl import dump_jsonl

        dump_jsonl(trace_out, span_tracer.to_records())

    artifact: Optional[RunArtifact] = None
    if wants_artifact:
        artifact = RunArtifact(
            kind=kind,
            scenario=scenario_name,
            seed=seed,
            config=config,
            results=results,
            wall_time_s=wall_time,
        )
        artifact.attach_registry(registry)
        artifact.trace = trace_to_records(tracer)
        artifact.attach_slo(
            registry,
            trace_stats=span_tracer.stats() if span_tracer else None,
            event_stats=event_bus.stats() if event_bus else None,
        )
    if args.json:
        print(artifact.to_json())
    if args.metrics_out is not None:
        artifact.write(args.metrics_out)
    if prom_out is not None and registry is not None:
        write_prometheus(registry, prom_out)
    if args.profile and registry is not None:
        stream = sys.stderr if args.json else sys.stdout
        print(render_profile(registry), file=stream)
    if tracer is not NULL_TRACER and not wants_artifact:
        for record in tracer.records:
            print(record)
    return 0


def _load_json_file(path: str) -> Optional[Dict[str, object]]:
    import json
    from pathlib import Path

    p = Path(path)
    if not p.is_file():
        return None
    with open(p, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _render_telemetry_report(args: argparse.Namespace) -> int:
    """``report --artifact``: latency, attribution, and trend tables.

    Consumes a saved run artifact (either layout), renders its embedded
    SLO section, and diffs the timer means against the checked-in
    benchmark baselines.  Works entirely from files — no experiment is
    re-run.
    """
    from .obs.slo import bench_trend_rows, perf_reference_rows, render_slo

    artifact = RunArtifact.load(args.artifact)
    lines: List[str] = [
        f"telemetry report — kind={artifact.kind} "
        f"scenario={artifact.scenario} seed={artifact.seed}",
        "",
    ]
    if artifact.slo is not None:
        lines.append(render_slo(artifact.slo))
    else:
        lines.append(
            "(artifact carries no slo section — re-run the experiment "
            "with --json/--metrics-out on this build to embed one)"
        )

    timers = artifact.metrics.get("timers", {})
    bench_obs = _load_json_file(args.bench_obs)
    if bench_obs is None:
        lines.append("")
        lines.append(f"(no trend baseline at {args.bench_obs})")
    else:
        rows = bench_trend_rows(timers, bench_obs)
        lines.append("")
        lines.append(f"trend vs {args.bench_obs}")
        if rows:
            lines.append(
                f"  {'timer':<30} {'mean_ms':>10} {'baseline':>10} "
                f"{'delta':>8}"
            )
            for r in rows:
                lines.append(
                    f"  {r['timer']:<30} {r['current_mean_ms']:>10.3f} "
                    f"{r['baseline_mean_ms']:>10.3f} "
                    f"{r['delta'] * 100.0:>+7.1f}%"
                )
        else:
            lines.append("  (no timers shared with the baseline)")

    bench_perf = _load_json_file(args.bench_perf)
    if bench_perf is not None:
        rows = perf_reference_rows(bench_perf)
        if rows:
            lines.append("")
            lines.append(
                f"fast-path reference ({args.bench_perf}, dynamic churn)"
            )
            lines.append(
                f"  {'nodes':>5} {'flows':>5} {'seed':>4} "
                f"{'fast ms/event':>14} {'speedup':>8}"
            )
            for r in rows:
                lines.append(
                    f"  {r['nodes']:>5} {r['flows']:>5} {r['seed']:>4} "
                    f"{r['fast_ms_per_event']:>14.3f} "
                    f"{r['speedup']:>7.1f}x"
                )
    print("\n".join(lines))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "examples":
        reports = run_all(verbose=True)
        return 0 if all(r.matches() for r in reports) else 1
    if args.command == "table1":

        def table1_payload(tracer: Tracer) -> _Payload:
            report = run_table1()
            return report.render(), "fig6", report.to_dict()

        return _run_observed(args, "table1", None, {}, table1_payload)
    if args.command in ("table2", "table3"):
        runner = run_table2 if args.command == "table2" else run_table3
        scenario_mod = "fig1" if args.command == "table2" else "fig6"

        def table_payload(tracer: Tracer) -> _Payload:
            table = runner(duration=args.duration, seed=args.seed,
                           tracer=tracer)
            results = table.to_dict()
            if args.json or args.metrics_out or args.profile:
                from . import scenarios as _scen

                scenario = getattr(_scen, scenario_mod).make_scenario()
                results["convergence_2pad"] = _capture_2pad_convergence(
                    scenario
                )
            return table.render(), table.scenario_name, results

        return _run_observed(
            args, args.command, args.seed,
            {"duration": args.duration}, table_payload,
        )
    if args.command == "ablation":

        def ablation_payload(tracer: Tracer) -> _Payload:
            sweep = ALL_ABLATIONS[args.name]()
            return sweep.render(), args.name, sweep.to_dict()

        return _run_observed(
            args, "ablation", None, {"name": args.name}, ablation_payload,
        )
    if args.command == "verify":
        from .verify import run_fuzz

        reports: List[object] = []

        def verify_payload(tracer: Tracer) -> _Payload:
            report = run_fuzz(
                cases=args.cases,
                seed=args.seed,
                inject_fault=args.inject_fault,
                reproducer_dir=args.reproducer_dir,
                with_scipy=args.with_scipy,
                backend=args.backend,
                jobs=args.jobs,
                faults=args.faults,
                churn=args.churn,
                sharded=args.sharded,
                overload=args.overload,
            )
            reports.append(report)
            return report.render(), "random-fuzz", report.to_dict()

        code = _run_observed(
            args, "verify", args.seed,
            {"cases": args.cases, "inject_fault": args.inject_fault,
             "faults": args.faults, "churn": args.churn,
             "backend": args.backend, "sharded": args.sharded,
             "overload": args.overload},
            verify_payload,
        )
        if code != 0:
            return code
        return 0 if reports and reports[0].ok else 1
    if args.command == "chaos":
        from .resilience import run_chaos

        chaos_reports: List[object] = []
        loss_rates = [
            float(r) for r in args.loss.split(",") if r.strip() != ""
        ]

        def chaos_payload(tracer: Tracer) -> _Payload:
            report = run_chaos(
                cases=args.cases,
                seed=args.seed,
                loss_rates=loss_rates,
                crash_prob=args.crash_prob,
                max_retries=args.max_retries,
                max_rounds=args.max_rounds,
                inject_fault=args.inject_fault,
                jobs=args.jobs,
            )
            chaos_reports.append(report)
            return report.render(), "random-chaos", report.to_dict()

        code = _run_observed(
            args, "chaos", args.seed,
            {"cases": args.cases, "loss_rates": loss_rates,
             "crash_prob": args.crash_prob,
             "inject_fault": args.inject_fault, "jobs": args.jobs},
            chaos_payload,
        )
        if code != 0:
            return code
        if not chaos_reports:
            return 1
        ok = chaos_reports[0].ok
        # With an injected fault the campaign is healthy only if the
        # safety checkers *caught* something (same inversion as verify).
        return (0 if not ok else 1) if args.inject_fault else (0 if ok
                                                               else 1)
    if args.command == "churn":
        from .resilience import run_churn

        churn_reports: List[object] = []
        churn_rates = [
            float(r) for r in args.loss.split(",") if r.strip() != ""
        ]
        hysteresis = args.hysteresis if args.hysteresis > 0.0 else None

        def churn_payload(tracer: Tracer) -> _Payload:
            report = run_churn(
                cases=args.cases,
                seed=args.seed,
                loss_rates=churn_rates,
                epochs=args.epochs,
                crash_prob=args.crash_prob,
                hysteresis=hysteresis,
                inject_fault=args.inject_fault,
                crash_restore=not args.no_crash_restore,
                jobs=args.jobs,
            )
            churn_reports.append(report)
            return report.render(), "random-churn", report.to_dict()

        code = _run_observed(
            args, "churn", args.seed,
            {"cases": args.cases, "loss_rates": churn_rates,
             "epochs": args.epochs, "crash_prob": args.crash_prob,
             "hysteresis": hysteresis,
             "inject_fault": args.inject_fault, "jobs": args.jobs},
            churn_payload,
        )
        if code != 0:
            return code
        if not churn_reports:
            return 1
        ok = churn_reports[0].ok
        # Same inversion as chaos: with an injected fault the campaign
        # is healthy only if the safety checkers caught something.
        return (0 if not ok else 1) if args.inject_fault else (0 if ok
                                                               else 1)
    if args.command == "overload":
        from .resilience import run_overload

        overload_reports: List[object] = []
        overload_hyst = args.hysteresis if args.hysteresis > 0.0 else None

        def overload_payload(tracer: Tracer) -> _Payload:
            report = run_overload(
                cases=args.cases,
                seed=args.seed,
                epochs=args.epochs,
                multiplier=args.multiplier,
                deadline_ms=args.deadline_ms,
                hysteresis=overload_hyst,
                max_queue=args.max_queue,
                max_queue_age=args.queue_age,
                stall_epochs=args.stall_epochs,
                worker_crash=args.worker_crash,
                jobs=args.jobs,
                inject_fault=args.inject_fault,
            )
            overload_reports.append(report)
            return report.render(), "random-overload", report.to_dict()

        code = _run_observed(
            args, "overload", args.seed,
            {"cases": args.cases, "epochs": args.epochs,
             "multiplier": args.multiplier,
             "deadline_ms": args.deadline_ms,
             "max_queue": args.max_queue, "queue_age": args.queue_age,
             "stall_epochs": args.stall_epochs,
             "worker_crash": args.worker_crash,
             "inject_fault": args.inject_fault, "jobs": args.jobs},
            overload_payload,
        )
        if code != 0:
            return code
        if not overload_reports:
            return 1
        report = overload_reports[0]
        if args.inject_fault:
            # The chaos/churn inversion plus a watchdog proof: healthy
            # only if the checkers caught the perturbed allocation AND
            # the forced stalls produced recorded deadline breaches.
            return 0 if (not report.ok and report.breaches > 0) else 1
        return 0 if report.ok else 1
    if args.command == "show":
        from .experiments import (
            render_allocation_comparison,
            render_contention_matrix,
            render_topology,
        )
        from .core import (
            ContentionAnalysis,
            basic_allocation,
            basic_fairness_lp_allocation,
            maxmin_flow_allocation,
            naive_allocation,
        )
        from . import scenarios as _scen

        makers = {
            "fig1": _scen.fig1.make_scenario,
            "fig2": _scen.fig2.make_multi_hop_scenario,
            "fig6": _scen.fig6.make_scenario,
            "cross": _scen.cross,
            "star": _scen.star,
            "grid": _scen.grid_scenario,
            "parallel-chains": _scen.parallel_chains,
            "pentagon": lambda: _scen.fig5.make_scenario(),
        }
        scenario = makers[args.scenario]()
        if args.scenario == "pentagon":
            analysis = _scen.fig5.make_analysis()
        else:
            analysis = ContentionAnalysis(scenario)
        print(render_topology(scenario))
        print()
        print(render_contention_matrix(analysis))
        print()
        allocations = {
            "naive": naive_allocation(analysis).shares,
            "basic": basic_allocation(analysis).shares,
            "maxmin": maxmin_flow_allocation(analysis).shares,
            "2PA LP": basic_fairness_lp_allocation(analysis).shares,
        }
        print(render_allocation_comparison(allocations,
                                           scenario.flow_ids))
        return 0
    if args.command == "report":
        if args.artifact is not None:
            return _render_telemetry_report(args)

        def report_payload(tracer: Tracer) -> _Payload:
            # --json suppresses the human rendering, so skip its (heavy)
            # build entirely rather than simulating the tables twice.
            rendered = ""
            if not args.json:
                rendered = build_report(
                    duration=args.duration, seed=args.seed,
                    include_simulations=not args.no_sim,
                ).render()
            results: Dict[str, object] = {}
            if args.json or args.metrics_out:
                results = build_report_record(
                    duration=args.duration, seed=args.seed,
                    include_simulations=not args.no_sim,
                )
            return rendered, "report", results

        return _run_observed(
            args, "report", args.seed,
            {"duration": args.duration, "no_sim": args.no_sim},
            report_payload,
        )
    if args.command == "all":
        reports = run_all(verbose=True)
        print(run_table1().render())
        print()
        print(run_table2(duration=args.duration, seed=args.seed).render())
        print()
        print(run_table3(duration=args.duration, seed=args.seed).render())
        return 0 if all(r.matches() for r in reports) else 1
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
