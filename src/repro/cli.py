"""Command-line entry point: ``python -m repro`` or ``repro-experiments``.

Subcommands::

    examples              run all analytic worked examples (Figs. 1-5)
    table1                Table I (distributed local LPs on Fig. 6)
    table2 [--duration S] Table II simulation (Fig. 1 topology)
    table3 [--duration S] Table III simulation (Fig. 6 topology)
    ablation NAME         one of: alpha, cwmin, buffer, virtual-length,
                          scaling
    all                   everything above with default settings
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    ALL_ABLATIONS,
    build_report,
    run_all,
    run_table1,
    run_table2,
    run_table3,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce 'End-to-End Fair Bandwidth Allocation in Multi-hop "
            "Wireless Ad Hoc Networks' (ICDCS 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("examples", help="analytic worked examples")
    sub.add_parser("table1", help="Table I: distributed local LPs")

    for name, help_text in (
        ("table2", "Table II simulation (scenario 1)"),
        ("table3", "Table III simulation (scenario 2)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=40.0,
                       help="simulated seconds (default 40)")
        p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("ablation", help="run one ablation study")
    p.add_argument("name", choices=sorted(ALL_ABLATIONS))

    p = sub.add_parser("show", help="render a scenario and its analysis")
    p.add_argument("scenario", choices=[
        "fig1", "fig2", "fig6", "cross", "star", "grid",
        "parallel-chains", "pentagon",
    ])

    p = sub.add_parser("report", help="full reproduction report")
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-sim", action="store_true",
                   help="skip the simulation tables (fast)")

    p = sub.add_parser("all", help="run everything")
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "examples":
        reports = run_all(verbose=True)
        return 0 if all(r.matches() for r in reports) else 1
    if args.command == "table1":
        print(run_table1().render())
        return 0
    if args.command == "table2":
        print(run_table2(duration=args.duration, seed=args.seed).render())
        return 0
    if args.command == "table3":
        print(run_table3(duration=args.duration, seed=args.seed).render())
        return 0
    if args.command == "ablation":
        print(ALL_ABLATIONS[args.name]().render())
        return 0
    if args.command == "show":
        from .experiments import (
            render_allocation_comparison,
            render_contention_matrix,
            render_topology,
        )
        from .core import (
            ContentionAnalysis,
            basic_allocation,
            basic_fairness_lp_allocation,
            maxmin_flow_allocation,
            naive_allocation,
        )
        from . import scenarios as _scen

        makers = {
            "fig1": _scen.fig1.make_scenario,
            "fig2": _scen.fig2.make_multi_hop_scenario,
            "fig6": _scen.fig6.make_scenario,
            "cross": _scen.cross,
            "star": _scen.star,
            "grid": _scen.grid_scenario,
            "parallel-chains": _scen.parallel_chains,
            "pentagon": lambda: _scen.fig5.make_scenario(),
        }
        scenario = makers[args.scenario]()
        if args.scenario == "pentagon":
            analysis = _scen.fig5.make_analysis()
        else:
            analysis = ContentionAnalysis(scenario)
        print(render_topology(scenario))
        print()
        print(render_contention_matrix(analysis))
        print()
        allocations = {
            "naive": naive_allocation(analysis).shares,
            "basic": basic_allocation(analysis).shares,
            "maxmin": maxmin_flow_allocation(analysis).shares,
            "2PA LP": basic_fairness_lp_allocation(analysis).shares,
        }
        print(render_allocation_comparison(allocations,
                                           scenario.flow_ids))
        return 0
    if args.command == "report":
        report = build_report(
            duration=args.duration, seed=args.seed,
            include_simulations=not args.no_sim,
        )
        print(report.render())
        return 0
    if args.command == "all":
        reports = run_all(verbose=True)
        print(run_table1().render())
        print()
        print(run_table2(duration=args.duration, seed=args.seed).render())
        print()
        print(run_table3(duration=args.duration, seed=args.seed).render())
        return 0 if all(r.matches() for r in reports) else 1
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
