"""Routing substrate: shortest paths and DSR-lite."""

from .paths import (
    connectivity_graph,
    hop_distance,
    is_shortest,
    route_flows,
    shortest_route,
)
from .dsr import DsrNode, DsrProtocol, RouteCacheEntry, RouteRequest

__all__ = [
    "connectivity_graph",
    "shortest_route",
    "hop_distance",
    "route_flows",
    "is_shortest",
    "DsrProtocol",
    "DsrNode",
    "RouteRequest",
    "RouteCacheEntry",
]
