"""DSR-lite: on-demand source routing with flooding and route caches.

A control-plane model of Dynamic Source Routing sufficient for the
paper's use of it (route acquisition and hop counts on a static topology):

* **Route discovery** — the source floods a ROUTE REQUEST; each node
  appends itself and rebroadcasts the first copy of each request id it
  hears.  The destination answers the first arriving request with a ROUTE
  REPLY carrying the accumulated route (which, with synchronous flooding
  on a static topology, is a shortest path).
* **Route cache** — nodes remember every route they forward or originate,
  answering later discoveries from cache; caches can be invalidated to
  model link breaks.

Flooding is simulated breadth-first over the connectivity graph rather
than through the MAC: the paper's scenarios are static, so discovery
happens once at setup and does not interact with data-plane contention.
This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.model import Flow, Network, NodeId


@dataclass(frozen=True)
class RouteRequest:
    request_id: int
    source: NodeId
    destination: NodeId
    route_so_far: Tuple[NodeId, ...]


@dataclass
class RouteCacheEntry:
    route: Tuple[NodeId, ...]
    valid: bool = True


class DsrNode:
    """Per-node DSR state: route cache plus seen-request filter."""

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self.cache: Dict[Tuple[NodeId, NodeId], RouteCacheEntry] = {}
        self.seen_requests: Set[int] = set()

    def cached_route(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[NodeId, ...]]:
        entry = self.cache.get((source, destination))
        if entry is not None and entry.valid:
            return entry.route
        return None

    def learn_route(self, route: Tuple[NodeId, ...]) -> None:
        """Cache the route and every suffix/prefix passing through us."""
        self.cache[(route[0], route[-1])] = RouteCacheEntry(route)

    def invalidate(self, a: NodeId, b: NodeId) -> None:
        """Drop cached routes using link ``a-b`` (link-break handling)."""
        for key, entry in self.cache.items():
            r = entry.route
            for i in range(len(r) - 1):
                if {r[i], r[i + 1]} == {a, b}:
                    entry.valid = False
                    break


class DsrProtocol:
    """The network-wide DSR machinery."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.nodes: Dict[NodeId, DsrNode] = {
            n: DsrNode(n) for n in network.nodes
        }
        self._request_ids = itertools.count(1)
        self.discoveries = 0
        self.cache_hits = 0

    def find_route(
        self, source: NodeId, destination: NodeId
    ) -> Optional[List[NodeId]]:
        """Return a route, from cache if possible, else by discovery."""
        if source == destination:
            return [source]
        cached = self.nodes[source].cached_route(source, destination)
        if cached is not None:
            self.cache_hits += 1
            return list(cached)
        return self._discover(source, destination)

    def _discover(
        self, source: NodeId, destination: NodeId
    ) -> Optional[List[NodeId]]:
        """Synchronous flood: BFS expansion of ROUTE REQUESTs."""
        self.discoveries += 1
        request_id = next(self._request_ids)
        frontier: deque = deque()
        frontier.append(
            RouteRequest(request_id, source, destination, (source,))
        )
        self.nodes[source].seen_requests.add(request_id)
        while frontier:
            req = frontier.popleft()
            here = req.route_so_far[-1]
            for nbr in sorted(self.network.neighbors(here)):
                if nbr == destination:
                    route = req.route_so_far + (destination,)
                    self._propagate_reply(route)
                    return list(route)
                node = self.nodes[nbr]
                if request_id in node.seen_requests:
                    continue
                node.seen_requests.add(request_id)
                # A cache answer from an intermediate node.
                tail = node.cached_route(nbr, destination)
                if tail is not None and not (
                    set(tail[1:]) & set(req.route_so_far)
                ):
                    route = req.route_so_far + tail
                    self._propagate_reply(route)
                    return list(route)
                frontier.append(
                    RouteRequest(
                        request_id, source, destination,
                        req.route_so_far + (nbr,),
                    )
                )
        return None

    def _propagate_reply(self, route: Tuple[NodeId, ...]) -> None:
        """Every node on the route (and the source) learns it."""
        for node_id in route:
            self.nodes[node_id].learn_route(route)

    def build_flows(
        self,
        endpoints: List[Tuple[NodeId, NodeId]],
        weights: Optional[List[float]] = None,
    ) -> List[Flow]:
        """Discover routes for endpoint pairs and wrap them as flows."""
        flows: List[Flow] = []
        for idx, (src, dst) in enumerate(endpoints):
            route = self.find_route(src, dst)
            if route is None:
                raise ValueError(f"DSR found no route {src!r}->{dst!r}")
            weight = float(weights[idx]) if weights else 1.0
            flows.append(Flow(str(idx + 1), route, weight))
        return flows
