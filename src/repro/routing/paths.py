"""Shortest-path routing over the radio connectivity graph.

The paper uses Dynamic Source Routing, whose discovered routes on a static
topology are shortest paths (fewest hops) — which is also what makes the
shortcut-free assumption of Sec. II-D realistic.  This module provides the
static shortest-path machinery; :mod:`repro.routing.dsr` implements the
on-demand protocol on top of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.model import Flow, Network, NodeId
from ..graphs import Graph, bfs_hop_counts, bfs_shortest_path


def connectivity_graph(network: Network) -> Graph:
    """Node-level graph: vertices are nodes, edges are radio links."""
    g = Graph()
    for n in network.nodes:
        g.add_vertex(n)
    for a, b in network.links():
        g.add_edge(a, b)
    return g


def shortest_route(
    network: Network, source: NodeId, destination: NodeId
) -> Optional[List[NodeId]]:
    """A fewest-hops route, or None if the nodes are disconnected."""
    return bfs_shortest_path(connectivity_graph(network), source,
                             destination)


def hop_distance(
    network: Network, source: NodeId, destination: NodeId
) -> Optional[int]:
    """Hop count of the shortest route (None if unreachable)."""
    counts = bfs_hop_counts(connectivity_graph(network), source)
    return counts.get(destination)


def route_flows(
    network: Network,
    endpoints: Sequence[tuple],
    weights: Optional[Sequence[float]] = None,
) -> List[Flow]:
    """Build flows for (source, destination) pairs via shortest paths.

    Raises ``ValueError`` when any pair is disconnected.  Flow ids are
    1-based strings in input order.
    """
    graph = connectivity_graph(network)
    flows: List[Flow] = []
    for idx, (src, dst) in enumerate(endpoints):
        path = bfs_shortest_path(graph, src, dst)
        if path is None:
            raise ValueError(f"no route from {src!r} to {dst!r}")
        weight = float(weights[idx]) if weights else 1.0
        flows.append(Flow(str(idx + 1), path, weight))
    return flows


def is_shortest(network: Network, flow: Flow) -> bool:
    """Whether ``flow`` follows a fewest-hops route."""
    dist = hop_distance(network, flow.source, flow.destination)
    return dist is not None and dist == flow.length
