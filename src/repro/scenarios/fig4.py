"""Scenario of Fig. 4: the weighted subflow contention graph example.

Four flows with weights (1, 2, 3, 2); F2 has two hops, the rest one:

* subflows ``(F1.1, F2.1, F2.2, F3.1, F4.1)`` carry weights
  ``(1, 2, 2, 3, 2)``;
* maximal cliques: ``{F1.1, F2.1, F2.2, F3.1}`` and ``{F3.1, F4.1}``;
* basic shares from ``Σ w_j v_j = 1 + 4 + 3 + 2 = 10``;
* the centralized LP (Sec. IV-C) is
  ``max Σ r̂  s.t.  r̂1 + 2 r̂2 + r̂3 <= B,  r̂3 + r̂4 <= B`` with lower
  bounds ``(B/10, B/5, 3B/10, B/5)``, whose optimum is
  ``(3B/10, B/5, 3B/10, 7B/10)``;
* the resulting *subflow* allocated shares — phase 2's weights — are
  ``(r_{1.1}, r_{2.1}, r_{2.2}, r_{3.1}, r_{4.1})
  = (3B/10, B/5, B/5, 3B/10, 7B/10)``.

The paper specifies this example by its contention graph rather than node
geometry, so the scenario uses an explicit contention graph.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from ..core.contention import ContentionAnalysis, contention_graph_from_pairs
from ..core.model import Flow, Network, Scenario, SubflowId

#: Paper's LP optimum (B = 1).
PAPER_ALLOCATION = {"1": 0.3, "2": 0.2, "3": 0.3, "4": 0.7}
PAPER_BASIC_SHARES = {"1": 0.1, "2": 0.2, "3": 0.3, "4": 0.2}
#: Original subflow weights as listed in Sec. IV-C.
PAPER_SUBFLOW_WEIGHTS = {
    SubflowId("1", 1): 1.0,
    SubflowId("2", 1): 2.0,
    SubflowId("2", 2): 2.0,
    SubflowId("3", 1): 3.0,
    SubflowId("4", 1): 2.0,
}


def make_scenario(capacity: float = 1.0) -> Scenario:
    """Build the Fig. 4 scenario with an abstract (link-list) network."""
    flows = [
        Flow("1", ["A1", "A2"], weight=1.0),
        Flow("2", ["B1", "B2", "B3"], weight=2.0),
        Flow("3", ["C1", "C2"], weight=3.0),
        Flow("4", ["D1", "D2"], weight=2.0),
    ]
    nodes = sorted({n for f in flows for n in f.path})
    links = [
        (f.path[j], f.path[j + 1]) for f in flows for j in range(f.length)
    ]
    network = Network.from_links(nodes, links)
    return Scenario(network, flows, name="fig4", capacity=capacity)


def make_analysis(capacity: float = 1.0) -> ContentionAnalysis:
    """Scenario plus the paper's explicit contention graph."""
    scenario = make_scenario(capacity)
    subflows = scenario.all_subflows()
    big_clique = [
        SubflowId("1", 1),
        SubflowId("2", 1),
        SubflowId("2", 2),
        SubflowId("3", 1),
    ]
    pairs: List[Tuple[SubflowId, SubflowId]] = list(
        combinations(big_clique, 2)
    )
    pairs.append((SubflowId("3", 1), SubflowId("4", 1)))
    graph = contention_graph_from_pairs(subflows, pairs)
    return ContentionAnalysis(scenario, graph)
