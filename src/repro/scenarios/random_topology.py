"""Random ad hoc topologies for scaling studies and property-based tests.

Places nodes uniformly in a square field, connects nodes within the radio
range, and routes a configurable number of flows along shortest paths —
the standard workload model for evaluating ad hoc allocation algorithms
beyond the paper's two hand-built scenarios.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graphs import Graph, bfs_shortest_path, is_connected
from ..core.model import Flow, Network, Scenario


def node_graph(network: Network) -> Graph:
    """The node-level connectivity graph of a network."""
    g = Graph()
    for n in network.nodes:
        g.add_vertex(n)
    for a, b in network.links():
        g.add_edge(a, b)
    return g


def default_field_size(num_nodes: int, tx_range: float = 250.0) -> float:
    """A field size giving comfortably-connected random placements.

    Scales the side with ``sqrt(num_nodes)`` so the expected node degree
    stays roughly constant (~6) as networks grow.
    """
    return tx_range * max(1.5, (num_nodes / 4.0) ** 0.5)


def random_connected_network(
    num_nodes: int,
    field_size: Optional[float] = None,
    tx_range: float = 250.0,
    seed: int = 0,
    max_attempts: int = 200,
) -> Network:
    """A uniformly-random node placement whose graph is connected.

    Redraws placements (deterministically from ``seed``) until the radio
    graph is connected; raises ``RuntimeError`` after ``max_attempts``
    (increase the range or density instead of the attempt budget).
    ``field_size`` defaults to :func:`default_field_size`.
    """
    if field_size is None:
        field_size = default_field_size(num_nodes, tx_range)
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        positions = {
            f"n{i}": (
                float(rng.uniform(0, field_size)),
                float(rng.uniform(0, field_size)),
            )
            for i in range(num_nodes)
        }
        network = Network.from_positions(positions, tx_range)
        if is_connected(node_graph(network)):
            return network
    raise RuntimeError(
        f"no connected placement of {num_nodes} nodes in "
        f"{field_size}x{field_size} with range {tx_range} after "
        f"{max_attempts} attempts"
    )


def random_flows(
    network: Network,
    num_flows: int,
    seed: int = 0,
    min_hops: int = 1,
    max_hops: Optional[int] = None,
    weights: Optional[List[float]] = None,
) -> List[Flow]:
    """Shortest-path flows between random distinct endpoint pairs.

    Endpoint pairs are redrawn until the shortest path length lies in
    ``[min_hops, max_hops]``.  ``weights`` (cycled) assigns flow weights;
    default all 1.
    """
    rng = np.random.default_rng(seed)
    graph = node_graph(network)
    nodes = network.nodes
    flows: List[Flow] = []
    attempts = 0
    while len(flows) < num_flows:
        attempts += 1
        if attempts > 1000 * num_flows:
            raise RuntimeError(
                "could not sample enough flows; relax hop bounds"
            )
        src, dst = rng.choice(len(nodes), size=2, replace=False)
        path = bfs_shortest_path(graph, nodes[int(src)], nodes[int(dst)])
        if path is None:
            continue
        hops = len(path) - 1
        if hops < min_hops or (max_hops is not None and hops > max_hops):
            continue
        weight = 1.0
        if weights:
            weight = float(weights[len(flows) % len(weights)])
        flows.append(Flow(str(len(flows) + 1), path, weight))
    return flows


def make_random_scenario(
    num_nodes: int = 25,
    num_flows: int = 5,
    field_size: Optional[float] = None,
    tx_range: float = 250.0,
    seed: int = 0,
    min_hops: int = 1,
    max_hops: Optional[int] = None,
    capacity: float = 1.0,
) -> Scenario:
    """A complete random scenario (network + shortest-path flows)."""
    network = random_connected_network(
        num_nodes, field_size, tx_range, seed
    )
    flows = random_flows(
        network, num_flows, seed=seed + 1, min_hops=min_hops,
        max_hops=max_hops,
    )
    return Scenario(
        network, flows, name=f"random-n{num_nodes}-f{num_flows}-s{seed}",
        capacity=capacity,
    )


def _scenario_from_params(params: dict) -> Scenario:
    """Picklable single-argument adapter for parallel scenario sweeps."""
    return make_random_scenario(**params)


def random_scenario_sweep(
    param_sets: List[dict],
    jobs: int = 1,
) -> List[Scenario]:
    """Build one seeded random scenario per parameter dict.

    Each dict holds :func:`make_random_scenario` keyword arguments;
    every scenario is a pure function of its own parameters (all
    randomness is seeded), so ``jobs > 1`` builds them across worker
    processes (``jobs=0``: all cores) with a bit-identical result to
    the serial sweep — the list order matches ``param_sets``.
    """
    from ..perf.parallel import ParallelSweep

    return ParallelSweep(jobs).map(
        _scenario_from_params, [dict(p) for p in param_sets]
    )
