"""Paper scenarios (Figs. 1-6) and random-topology generators."""

from . import fig1, fig2, fig3, fig4, fig5, fig6
from .io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .library import cross, grid_scenario, parallel_chains, star
from .random_topology import (
    make_random_scenario,
    node_graph,
    random_connected_network,
    random_flows,
)

__all__ = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "make_random_scenario",
    "random_connected_network",
    "random_flows",
    "node_graph",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    "parallel_chains",
    "cross",
    "grid_scenario",
    "star",
]
