"""A library of classic ad hoc evaluation topologies.

Beyond the paper's two scenarios, these are the standard shapes the ad
hoc fair-scheduling literature evaluates on; all are parametric and
shortcut-free by construction:

* :func:`parallel_chains` — N disjoint multi-hop chains whose relay
  regions overlap pairwise (a generalized Fig. 1);
* :func:`cross` — two chains sharing a center relay (the classic
  "cross" contention pattern);
* :func:`grid_scenario` — flows routed across a regular grid;
* :func:`star` — N single-hop flows converging on one sink (uplink
  contention).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.model import Flow, Network, Scenario
from ..routing.paths import route_flows

#: Spacing that keeps consecutive nodes in range (250 m) but not
#: next-but-one nodes: shortcut-free chains.
CHAIN_SPACING = 200.0


def parallel_chains(
    num_chains: int = 2,
    hops: int = 2,
    chain_gap: float = 240.0,
    weights: Optional[Sequence[float]] = None,
    capacity: float = 1.0,
) -> Scenario:
    """``num_chains`` horizontal chains stacked ``chain_gap`` apart.

    With the default gap (240 m), same-column nodes of adjacent chains
    are in range while diagonal neighbors (312 m) are not: subflow j of
    one chain contends with subflows j-1, j, j+1 of the next — a ladder
    of overlapping contention regions.  A gap above 250 m decouples the
    chains entirely (each becomes its own contending flow group).
    """
    if num_chains < 1 or hops < 1:
        raise ValueError("need at least one chain and one hop")
    positions = {}
    flows: List[Flow] = []
    for c in range(num_chains):
        y = c * chain_gap
        path = []
        for h in range(hops + 1):
            node = f"c{c}n{h}"
            positions[node] = (h * CHAIN_SPACING, y)
            path.append(node)
        weight = float(weights[c]) if weights else 1.0
        flows.append(Flow(str(c + 1), path, weight))
    network = Network.from_positions(positions)
    return Scenario(network, flows,
                    name=f"parallel-{num_chains}x{hops}",
                    capacity=capacity)


def cross(arm_hops: int = 2, capacity: float = 1.0) -> Scenario:
    """Two flows crossing at a shared center relay.

    Flow 1 runs west->east, flow 2 south->north; both paths pass through
    the center node, so the flows contend *and* share queueing at one
    relay — the canonical coupled-relay pattern.
    """
    if arm_hops < 1:
        raise ValueError("need at least one hop per arm")
    positions = {"center": (0.0, 0.0)}
    west, east, south, north = [], [], [], []
    for i in range(1, arm_hops + 1):
        d = i * CHAIN_SPACING
        positions[f"w{i}"] = (-d, 0.0)
        positions[f"e{i}"] = (d, 0.0)
        positions[f"s{i}"] = (0.0, -d)
        positions[f"n{i}"] = (0.0, d)
        west.append(f"w{i}")
        east.append(f"e{i}")
        south.append(f"s{i}")
        north.append(f"n{i}")
    path1 = list(reversed(west)) + ["center"] + east
    path2 = list(reversed(south)) + ["center"] + north
    network = Network.from_positions(positions)
    flows = [Flow("1", path1), Flow("2", path2)]
    return Scenario(network, flows, name=f"cross-{arm_hops}",
                    capacity=capacity)


def grid_scenario(
    side: int = 4,
    flow_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    capacity: float = 1.0,
) -> Scenario:
    """A ``side x side`` grid with shortest-path flows.

    Default flows: one across the top row, one down the left column —
    they contend near the shared corner.  Node names are ``gRC`` with
    row/column indices.
    """
    if side < 2:
        raise ValueError("grid needs side >= 2")
    positions = {
        f"g{r}{c}": (c * CHAIN_SPACING, r * CHAIN_SPACING)
        for r in range(side) for c in range(side)
    }
    network = Network.from_positions(positions)
    if flow_pairs is None:
        flow_pairs = [
            (f"g0{0}", f"g0{side - 1}"),
            (f"g{0}0", f"g{side - 1}0"),
        ]
    flows = route_flows(network, list(flow_pairs))
    return Scenario(network, flows, name=f"grid-{side}",
                    capacity=capacity)


def star(
    num_flows: int = 4,
    radius: float = 200.0,
    weights: Optional[Sequence[float]] = None,
    capacity: float = 1.0,
) -> Scenario:
    """``num_flows`` single-hop uplinks to one sink.

    Every flow contends with every other (all endpoints within range of
    the sink), so the contention graph is complete: basic shares are
    ``w_i B / Σ w`` and the paper's machinery reduces to classic
    weighted fair queueing.
    """
    import math

    if num_flows < 1:
        raise ValueError("need at least one flow")
    if radius > 250.0:
        raise ValueError("sources must be within range of the sink")
    positions = {"sink": (0.0, 0.0)}
    flows = []
    for i in range(num_flows):
        angle = 2.0 * math.pi * i / num_flows
        node = f"src{i}"
        positions[node] = (radius * math.cos(angle),
                           radius * math.sin(angle))
        weight = float(weights[i]) if weights else 1.0
        flows.append(Flow(str(i + 1), [node, "sink"], weight))
    network = Network.from_positions(positions)
    return Scenario(network, flows, name=f"star-{num_flows}",
                    capacity=capacity)
