"""Scenario of Fig. 6: the five-flow topology driving Table I / Table III.

Flows (all weight 1):

* ``F1 = A->B->C->D->E`` (4 hops, virtual length 3)
* ``F2 = F->G``          (1 hop)
* ``F3 = H->I``          (1 hop)
* ``F4 = J->K->L``       (2 hops)
* ``F5 = M->N``          (1 hop)

The paper gives the contention structure through the centralized LP's
clique constraints; the geometry below (250 m range) reproduces exactly
those six maximal cliques:

    Ω1 = {F1.1, F1.2, F1.3}      -> 3 r̂1 <= B
    Ω2 = {F1.2, F1.3, F1.4}      -> 3 r̂1 <= B
    Ω3 = {F1.3, F1.4, F2.1}      -> 2 r̂1 + r̂2 <= B
    Ω4 = {F2.1, F3.1}            -> r̂2 + r̂3 <= B
    Ω5 = {F3.1, F4.1}            -> r̂3 + r̂4 <= B
    Ω6 = {F4.1, F4.2, F5.1}      -> 2 r̂4 + r̂5 <= B

Every inter-flow adjacency was placed deliberately: G–D = 237.7 m links
F2.1 to F1.3/F1.4 (Ω3); F–H = 223.6 m links F2.1 to F3.1 (Ω4); I–J = 200 m
links F3.1 to F4.1 (Ω5); M–K = 241.7 m links F5.1 to both F4 hops (Ω6).
All other cross-flow distances exceed 250 m.
"""

from __future__ import annotations

from ..core.model import Flow, Network, Scenario

#: Canonical positions (meters).
POSITIONS = {
    "A": (0.0, 0.0),
    "B": (200.0, 0.0),
    "C": (400.0, 0.0),
    "D": (600.0, 0.0),
    "E": (800.0, 0.0),
    "G": (660.0, 230.0),
    "F": (880.0, 320.0),
    "H": (1100.0, 360.0),
    "I": (1300.0, 360.0),
    "J": (1500.0, 360.0),
    "K": (1700.0, 360.0),
    "L": (1900.0, 360.0),
    "M": (1800.0, 140.0),
    "N": (1990.0, 0.0),
}

#: Centralized (2PA-C) allocated shares from the paper, B = 1.
PAPER_CENTRALIZED = {
    "1": 1.0 / 3.0,
    "2": 1.0 / 3.0,
    "3": 2.0 / 3.0,
    "4": 1.0 / 8.0,
    "5": 3.0 / 4.0,
}

#: Distributed (2PA-D) allocated shares printed in the paper:
#: (1/3, 1/5, 1/4, 1/4, 1/2).  Under a *uniform* local-information model
#: node M (source of F5) cannot learn clique Ω5 = {F3.1, F4.1} — the paper
#: lumps nodes J, K, M into one Table-I row and implicitly grants M the LP
#: constructed at J.  Our distributed algorithm therefore yields r̂5 = B/3
#: from M's own local LP; all other flows match the paper exactly.  Both
#: reference vectors are recorded here.
PAPER_DISTRIBUTED = {
    "1": 1.0 / 3.0,
    "2": 1.0 / 5.0,
    "3": 1.0 / 4.0,
    "4": 1.0 / 4.0,
    "5": 1.0 / 2.0,
}
OUR_DISTRIBUTED = {
    "1": 1.0 / 3.0,
    "2": 1.0 / 5.0,
    "3": 1.0 / 4.0,
    "4": 1.0 / 4.0,
    "5": 1.0 / 3.0,
}

#: Basic shares (global): Σ w_j v_j = 3+1+1+2+1 = 8.
PAPER_BASIC_SHARES = {f: 1.0 / 8.0 for f in ("1", "2", "3", "4", "5")}

#: Table I reference: per-source local LP solutions, B = 1.
#: Maps source node -> {flow id -> share in that node's local LP}.
TABLE1_LOCAL_SOLUTIONS = {
    "A": {"1": 1.0 / 3.0, "2": 1.0 / 3.0},
    "F": {"1": 2.0 / 5.0, "2": 1.0 / 5.0, "3": 4.0 / 5.0},
    "H": {"2": 3.0 / 4.0, "3": 1.0 / 4.0, "4": 3.0 / 4.0},
    "J": {"3": 3.0 / 4.0, "4": 1.0 / 4.0, "5": 1.0 / 2.0},
}

#: Table I reference: per-source local basic per-unit shares.
TABLE1_LOCAL_BASIC = {"A": 1.0 / 3.0, "F": 1.0 / 5.0, "H": 1.0 / 4.0,
                      "J": 1.0 / 4.0}


def make_scenario(capacity: float = 1.0, weight: float = 1.0) -> Scenario:
    """Build the Fig. 6 scenario (all flows share ``weight``)."""
    network = Network.from_positions(POSITIONS, tx_range=250.0)
    flows = [
        Flow("1", ["A", "B", "C", "D", "E"], weight),
        Flow("2", ["F", "G"], weight),
        Flow("3", ["H", "I"], weight),
        Flow("4", ["J", "K", "L"], weight),
        Flow("5", ["M", "N"], weight),
    ]
    return Scenario(network, flows, name="fig6", capacity=capacity)
