"""Scenario of Fig. 3: flows with and without shortcuts, virtual length.

* Fig. 3(b)/(c): a shortcut-free 6-hop chain (nodes 200 m apart, 250 m
  range) — its subflow contention graph is the square of a path, 3-colored
  into the concurrent sets {F1.1, F1.4}, {F1.2, F1.5}, {F1.3, F1.6}.
* Fig. 3(a): the same chain with one node displaced so that two
  non-consecutive path nodes come into range — a *shortcut*, which the
  virtual-length argument excludes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.model import Flow, Network, Scenario

#: Paper's 3-coloring of the 6-subflow chain (1-based hop -> color class).
PAPER_COLOR_CLASSES = [[1, 4], [2, 5], [3, 6]]


def make_chain_scenario(
    hops: int = 6, capacity: float = 1.0, weight: float = 1.0
) -> Scenario:
    """A shortcut-free ``hops``-hop chain flow (Fig. 3(b)/(c))."""
    if hops < 1:
        raise ValueError("need at least one hop")
    spacing = 200.0
    positions = {
        f"N{i}": (i * spacing, 0.0) for i in range(hops + 1)
    }
    network = Network.from_positions(positions, tx_range=250.0)
    flow = Flow("1", [f"N{i}" for i in range(hops + 1)], weight)
    return Scenario(network, [flow], name=f"chain{hops}", capacity=capacity)


def make_shortcut_scenario(capacity: float = 1.0) -> Scenario:
    """Fig. 3(a): a chain where N1 and N3 are in range (a shortcut).

    The path still uses every hop (as a non-shortest route would), but the
    shortcut invalidates the clean j±1/j±2 contention structure.
    """
    positions = {
        "N0": (0.0, 0.0),
        "N1": (200.0, 0.0),
        "N2": (310.0, 170.0),   # detour bump
        "N3": (420.0, 0.0),     # N1–N3 = 220 m: shortcut!
        "N4": (620.0, 0.0),
    }
    network = Network.from_positions(positions, tx_range=250.0)
    flow = Flow("1", ["N0", "N1", "N2", "N3", "N4"], 1.0)
    return Scenario(network, [flow], name="shortcut", capacity=capacity)
