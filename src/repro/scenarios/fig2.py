"""Scenarios of Fig. 2: fairness in the single-hop vs multi-hop case.

Three sub-scenarios over one fully-connected local neighborhood (every
node hears every other, so all subflows mutually contend):

* **(a)** two single-hop flows, weights (2, 1): the weighted-fair
  allocation is ``(2B/3, B/3)``.
* **(b)** F1 single-hop (w=2) vs F2 three-hop (w=1), allocating channel
  *time* proportional to weights: F2's ``B/3`` is split across 3 hops, so
  ``u_2 = B/9`` and ``u_2/u_1 = 1/6 ≠ w_2/w_1 = 1/2`` — unfair to the
  longer flow.
* **(c)** the paper's corrected allocation: ``(r_1, r_2) = (2B/5, 3B/5)``
  i.e. equal-per-hop shares ``(r̂_1, r̂_2) = (2B/5, B/5)``, restoring
  ``u_1/u_2 = 2 = w_1/w_2``.

All nodes being mutually in range means F2's 3-hop path has shortcuts; the
paper uses this configuration purely as a *local-channel* illustration, and
so do we (the virtual length still evaluates to 3).
"""

from __future__ import annotations

from typing import Dict

from ..core.model import Flow, Network, Scenario

#: Everything within a 250 m disc: one fully-connected neighborhood.
POSITIONS_A = {
    "A": (0.0, 0.0),
    "B": (60.0, 0.0),
    "C": (0.0, 60.0),
    "D": (60.0, 60.0),
}

POSITIONS_BC = {
    "A": (0.0, 0.0),
    "B": (60.0, 0.0),
    "C": (0.0, 60.0),
    "D": (60.0, 60.0),
    "E": (120.0, 60.0),
    "F": (120.0, 0.0),
}

#: Paper's reference allocations (B = 1).
PAPER_SINGLE_HOP = {"1": 2.0 / 3.0, "2": 1.0 / 3.0}          # Fig. 2(a)
PAPER_UNFAIR_THROUGHPUT = {"1": 2.0 / 3.0, "2": 1.0 / 9.0}   # Fig. 2(b)
PAPER_FAIR_SHARES = {"1": 2.0 / 5.0, "2": 1.0 / 5.0}         # Fig. 2(c)


def make_single_hop_scenario(capacity: float = 1.0) -> Scenario:
    """Fig. 2(a): two contending single-hop flows, weights 2 and 1."""
    network = Network.from_positions(POSITIONS_A, tx_range=250.0)
    flows = [
        Flow("1", ["A", "B"], weight=2.0),
        Flow("2", ["C", "D"], weight=1.0),
    ]
    return Scenario(network, flows, name="fig2a", capacity=capacity)


def make_multi_hop_scenario(capacity: float = 1.0) -> Scenario:
    """Fig. 2(b)/(c): single-hop F1 (w=2) vs three-hop F2 (w=1)."""
    network = Network.from_positions(POSITIONS_BC, tx_range=250.0)
    flows = [
        Flow("1", ["A", "B"], weight=2.0),
        Flow("2", ["C", "D", "E", "F"], weight=1.0),
    ]
    return Scenario(network, flows, name="fig2bc", capacity=capacity)


def unfair_time_share_allocation(
    scenario: Scenario, capacity: float = None
) -> Dict[str, float]:
    """Fig. 2(b)'s strawman: total channel *time* proportional to weight.

    Flow ``i`` gets ``r_i = w_i B / Σ w`` of channel time, split evenly
    over its ``l_i`` hops, so its end-to-end throughput is ``r_i / l_i``.
    Returns the end-to-end throughputs.
    """
    b = capacity if capacity is not None else scenario.capacity
    total_w = sum(f.weight for f in scenario.flows)
    return {
        f.flow_id: (f.weight * b / total_w) / f.length
        for f in scenario.flows
    }
