"""Scenario of Fig. 5: the pentagon — an unachievable clique bound.

Five single-hop unit-weight flows whose contention graph is the 5-cycle
``F1 - F2 - F3 - F4 - F5 - F1``.  Maximal cliques are the five edges, so
the weighted clique number is ``ω_Ω = 2`` and Proposition 1 bounds the
total effective throughput by ``5B/2`` (B/2 per flow).  But a 5-cycle's
maximum independent sets have size 2, so at most 2 flows transmit at any
instant: any schedule's total throughput is at most ``2B``, and the uniform
share each flow can actually sustain is ``2B/5``, not ``B/2`` — the
fractional schedule needed for B/2-per-flow has length 5/4 > 1.

The paper keeps the unattainable LP solution as phase-2 *weight factors*
(the "allocated shares").
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.contention import ContentionAnalysis, contention_graph_from_pairs
from ..core.model import Flow, Network, Scenario, SubflowId

#: Clique-bound per-flow share (unachievable) and the schedulable maximum.
PAPER_CLIQUE_BOUND_SHARE = 0.5
PAPER_CLIQUE_BOUND_TOTAL = 2.5
ACHIEVABLE_UNIFORM_SHARE = 0.4
FRACTIONAL_SCHEDULE_LENGTH = 1.25


def make_scenario(capacity: float = 1.0) -> Scenario:
    """Five abstract single-hop flows (geometry is immaterial)."""
    flows = [
        Flow(str(i), [f"S{i}", f"T{i}"], weight=1.0) for i in range(1, 6)
    ]
    nodes = sorted({n for f in flows for n in f.path})
    links = [(f.path[0], f.path[1]) for f in flows]
    network = Network.from_links(nodes, links)
    return Scenario(network, flows, name="fig5-pentagon", capacity=capacity)


def make_analysis(capacity: float = 1.0) -> ContentionAnalysis:
    """Scenario plus the explicit pentagon contention graph."""
    scenario = make_scenario(capacity)
    subflows = scenario.all_subflows()
    ring = [SubflowId(str(i), 1) for i in range(1, 6)]
    pairs: List[Tuple[SubflowId, SubflowId]] = [
        (ring[i], ring[(i + 1) % 5]) for i in range(5)
    ]
    graph = contention_graph_from_pairs(subflows, pairs)
    return ContentionAnalysis(scenario, graph)
