"""Scenario of Fig. 1: two 2-hop flows with partial contention.

``F1 = A -> B -> C`` and ``F2 = D -> E -> F`` (the paper's prose says
"F1 from node A to B", but its own buffer-overflow discussion makes B the
relay, so the destination is a third node).  The contention structure the
paper analyzes is:

* ``F1.1`` contends only with ``F1.2``;
* ``F1.2`` contends with ``F2.1`` and ``F2.2``;
* ``F2.1`` contends with ``F2.2``.

yielding maximal cliques ``{F1.1, F1.2}`` and ``{F1.2, F2.1, F2.2}``, basic
shares of ``B/4`` for both flows, and the Prop. 2 optimum
``(r̂_1, r̂_2) = (B/2, B/4)``.

The geometry below realizes exactly that contention graph with a 250 m
range: nodes on a line at x = 0, 200, 400, 520, 640, 860.  Verified
pairwise: C–D = 120 and C–E = 240 create the F1.2 contention; B–D = 320
keeps F1.1 clear of F2.
"""

from __future__ import annotations

from ..core.model import Flow, Network, Scenario

#: Canonical positions (meters); y = 0 for all nodes.
POSITIONS = {
    "A": (0.0, 0.0),
    "B": (200.0, 0.0),
    "C": (400.0, 0.0),
    "D": (520.0, 0.0),
    "E": (640.0, 0.0),
    "F": (860.0, 0.0),
}

#: The allocation strategies discussed in Sec. III for this topology,
#: normalized to B = 1 (flow id -> share).
PAPER_FAIRNESS_ALLOCATION = {"1": 1.0 / 3.0, "2": 1.0 / 3.0}
PAPER_BASIC_FAIRNESS_ALLOCATION = {"1": 0.5, "2": 0.25}
PAPER_BASIC_SHARES = {"1": 0.25, "2": 0.25}
#: Two-tier (single-hop) subflow allocation from the worked comparison:
#: (r_{1.1}, r_{1.2}, r_{2.1}, r_{2.2}) = (3B/4, B/4, 3B/8, 3B/8).
PAPER_TWO_TIER_SUBFLOWS = {
    ("1", 1): 0.75,
    ("1", 2): 0.25,
    ("2", 1): 0.375,
    ("2", 2): 0.375,
}
#: End-to-end throughputs of the two-tier allocation: (B/4, 3B/8).
PAPER_TWO_TIER_FLOWS = {"1": 0.25, "2": 0.375}


def make_scenario(capacity: float = 1.0, weight: float = 1.0) -> Scenario:
    """Build the Fig. 1 scenario (both flows share ``weight``)."""
    network = Network.from_positions(POSITIONS, tx_range=250.0)
    flows = [
        Flow("1", ["A", "B", "C"], weight),
        Flow("2", ["D", "E", "F"], weight),
    ]
    return Scenario(network, flows, name="fig1", capacity=capacity)
