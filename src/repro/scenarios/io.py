"""Scenario (de)serialization.

Scenarios round-trip through plain dicts / JSON files so experiments can
be saved, shared, and rerun.  The format is deliberately simple::

    {
      "name": "fig1",
      "capacity": 1.0,
      "tx_range": 250.0,
      "positions": {"A": [0.0, 0.0], ...},        # geometric networks
      "links": [["A", "B"], ...],                  # abstract networks
      "flows": [{"id": "1", "path": ["A","B","C"], "weight": 1.0}, ...]
    }

Exactly one of ``positions``/``links`` describes the network (when both
are present, ``links`` wins and positions are decorative).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..core.model import Flow, Network, Scenario


def scenario_to_dict(scenario: Scenario) -> Dict:
    """Serialize a scenario to a JSON-compatible dict."""
    net = scenario.network
    out: Dict = {
        "name": scenario.name,
        "capacity": scenario.capacity,
        "flows": [
            {"id": f.flow_id, "path": list(f.path), "weight": f.weight}
            for f in scenario.flows
        ],
    }
    if net.explicit_links is not None:
        out["links"] = sorted(
            sorted(link) for link in net.explicit_links
        )
        out["nodes"] = sorted(net.positions)
    else:
        out["tx_range"] = net.tx_range
        out["positions"] = {
            n: [x, y] for n, (x, y) in net.positions.items()
        }
    return out


def scenario_from_dict(data: Dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    if "links" in data:
        nodes = data.get("nodes")
        if nodes is None:
            nodes = sorted({n for link in data["links"] for n in link})
        network = Network.from_links(
            nodes, [tuple(link) for link in data["links"]]
        )
    elif "positions" in data:
        network = Network.from_positions(
            {n: (float(p[0]), float(p[1]))
             for n, p in data["positions"].items()},
            tx_range=float(data.get("tx_range", 250.0)),
        )
    else:
        raise ValueError("scenario dict needs 'positions' or 'links'")
    flows = [
        Flow(str(f["id"]), [str(n) for n in f["path"]],
             float(f.get("weight", 1.0)))
        for f in data.get("flows", [])
    ]
    if not flows:
        raise ValueError("scenario dict has no flows")
    return Scenario(
        network, flows,
        name=str(data.get("name", "")),
        capacity=float(data.get("capacity", 1.0)),
    )


def save_scenario(scenario: Scenario,
                  path: Union[str, Path]) -> None:
    """Write a scenario to a JSON file."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True)
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a scenario from a JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
