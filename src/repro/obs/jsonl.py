"""JSON-lines serialization for metric samples and trace records.

JSONL keeps run records streamable and diff-friendly: one self-describing
object per line, append-only, no enclosing document.  The helpers here are
shared by the :class:`~repro.obs.artifact.RunArtifact` writer and the
benchmark baseline emitter.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "dump_jsonl",
    "load_jsonl",
    "atomic_write_text",
    "trace_to_records",
    "records_to_trace",
]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename).

    A crashed or interrupted run never leaves a truncated artifact: the
    target either keeps its previous content or holds the complete new one.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".obs-", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def dump_jsonl(path: str, records: Iterable[Dict[str, object]]) -> int:
    """Atomically write one JSON object per line; returns the line count."""
    lines = [json.dumps(r, sort_keys=True, default=str) for r in records]
    atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Read back a JSONL file written by :func:`dump_jsonl`."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def trace_to_records(tracer) -> List[Dict[str, object]]:
    """Flatten a tracer's records into JSON-ready dicts.

    ``tracer`` is duck-typed (anything exposing ``records`` of
    :class:`~repro.sim.trace.TraceRecord`-shaped tuples) so that ``obs``
    stays a leaf package with no intra-repro imports.
    """
    return [
        {
            "record": "trace",
            "time": r.time,
            "category": r.category,
            "message": r.message,
            "fields": {k: _jsonable(v) for k, v in r.fields},
        }
        for r in tracer.records
    ]


def records_to_trace(records: Sequence[Dict[str, object]]):
    """Rebuild :class:`~repro.sim.trace.TraceRecord` objects from dicts."""
    from ..sim.trace import TraceRecord  # lazy: obs must stay import-leaf

    out = []
    for rec in records:
        if rec.get("record") not in (None, "trace"):
            continue
        fields = rec.get("fields", {}) or {}
        out.append(
            TraceRecord(
                float(rec["time"]),
                str(rec["category"]),
                str(rec["message"]),
                tuple(sorted(fields.items())),
            )
        )
    return out


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
