"""Human-readable rendering of a registry's profile data.

``repro-experiments ... --profile`` prints this after the experiment's
table: per-phase wall and CPU time, call counts, and the headline counters
(LP pivots, simulator events, 2PA-D messages), sorted by wall time so the
hottest phase tops the list.
"""

from __future__ import annotations

from typing import List

from .registry import MetricsRegistry

__all__ = ["render_profile"]


def render_profile(registry: MetricsRegistry) -> str:
    """Format the registry's timers/counters/gauges/histograms as text."""
    lines: List[str] = ["== profile =="]

    timers = sorted(registry.timers.values(),
                    key=lambda t: t.wall_s, reverse=True)
    if timers:
        lines.append(
            f"{'phase':<32}{'calls':>8}{'wall s':>12}{'cpu s':>12}"
            f"{'mean ms':>12}"
        )
        for t in timers:
            s = t.summary()
            lines.append(
                f"{t.name:<32}{s['calls']:>8}{s['wall_s']:>12.4f}"
                f"{s['cpu_s']:>12.4f}{s['mean_ms']:>12.3f}"
            )

    if registry.counters:
        lines.append("-- counters --")
        for name, counter in sorted(registry.counters.items()):
            lines.append(f"{name:<44}{counter.value:>16g}")

    if registry.gauges:
        lines.append("-- gauges --")
        for name, gauge in sorted(registry.gauges.items()):
            lines.append(f"{name:<44}{gauge.value:>16g}")

    if registry.histograms:
        lines.append("-- histograms --")
        lines.append(
            f"{'name':<32}{'count':>8}{'mean':>10}{'p50':>8}{'p90':>8}"
            f"{'p99':>8}{'max':>8}"
        )
        for name, hist in sorted(registry.histograms.items()):
            s = hist.summary()
            if not s["count"]:
                lines.append(f"{name:<32}{0:>8}")
                continue
            lines.append(
                f"{name:<32}{s['count']:>8}{s['mean']:>10.3g}"
                f"{s['p50']:>8.3g}{s['p90']:>8.3g}{s['p99']:>8.3g}"
                f"{s['max']:>8.3g}"
            )
    return "\n".join(lines)
