"""Run-artifact schema and validation.

The artifact format is intentionally simple enough to validate with a
hand-rolled checker (no external jsonschema dependency).  ``SCHEMA_NAME``
and ``SCHEMA_VERSION`` are embedded in every artifact so downstream
tooling can detect format drift across PRs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["SCHEMA_NAME", "SCHEMA_VERSION", "SchemaError", "validate_artifact"]

SCHEMA_NAME = "repro.obs/run-artifact"
SCHEMA_VERSION = 1

#: Required top-level fields and their accepted types.
_TOP_LEVEL: Dict[str, Tuple[type, ...]] = {
    "schema": (str,),
    "schema_version": (int,),
    "kind": (str,),
    "scenario": (str,),
    "seed": (int, type(None)),
    "config": (dict,),
    "version": (str,),
    "wall_time_s": (int, float),
    "results": (dict,),
    "metrics": (dict,),
    "trace": (list,),
}

_METRIC_SECTIONS = ("counters", "gauges", "histograms", "timers")

_TIMER_FIELDS = ("calls", "wall_s", "cpu_s")

_TRACE_FIELDS: Dict[str, Tuple[type, ...]] = {
    "time": (int, float),
    "category": (str,),
    "message": (str,),
    "fields": (dict,),
}


class SchemaError(ValueError):
    """An artifact document violates the run-artifact schema."""


def _fail(path: str, problem: str) -> None:
    raise SchemaError(f"artifact invalid at {path}: {problem}")


def validate_artifact(doc: object) -> Dict[str, object]:
    """Validate ``doc`` as a run artifact; returns it unchanged on success.

    Raises :class:`SchemaError` naming the offending path otherwise.
    """
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    for key, types in _TOP_LEVEL.items():
        if key not in doc:
            _fail("$", f"missing required field {key!r}")
        if not isinstance(doc[key], types):
            _fail(f"$.{key}",
                  f"expected {'/'.join(t.__name__ for t in types)}, "
                  f"got {type(doc[key]).__name__}")
    if doc["schema"] != SCHEMA_NAME:
        _fail("$.schema", f"expected {SCHEMA_NAME!r}, got {doc['schema']!r}")
    if doc["schema_version"] != SCHEMA_VERSION:
        _fail("$.schema_version",
              f"unsupported version {doc['schema_version']!r}")

    metrics = doc["metrics"]
    for section in _METRIC_SECTIONS:
        if section not in metrics:
            _fail("$.metrics", f"missing section {section!r}")
        if not isinstance(metrics[section], dict):
            _fail(f"$.metrics.{section}", "expected object")
    for name, value in metrics["counters"].items():
        if not isinstance(value, (int, float)):
            _fail(f"$.metrics.counters.{name}", "expected number")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, (int, float)):
            _fail(f"$.metrics.gauges.{name}", "expected number")
    for name, summary in metrics["histograms"].items():
        if not isinstance(summary, dict) or "count" not in summary:
            _fail(f"$.metrics.histograms.{name}",
                  "expected summary object with 'count'")
    for name, summary in metrics["timers"].items():
        if not isinstance(summary, dict):
            _fail(f"$.metrics.timers.{name}", "expected summary object")
        for field in _TIMER_FIELDS:
            if field not in summary:
                _fail(f"$.metrics.timers.{name}", f"missing {field!r}")
            if not isinstance(summary[field], (int, float)):
                _fail(f"$.metrics.timers.{name}.{field}", "expected number")

    for i, rec in enumerate(doc["trace"]):
        if not isinstance(rec, dict):
            _fail(f"$.trace[{i}]", "expected object")
        for field, types in _TRACE_FIELDS.items():
            if field not in rec:
                _fail(f"$.trace[{i}]", f"missing {field!r}")
            if not isinstance(rec[field], types):
                _fail(f"$.trace[{i}].{field}",
                      f"expected {'/'.join(t.__name__ for t in types)}")
    return doc


def describe_schema() -> List[str]:
    """Human-readable field reference (used by README / --help tooling)."""
    lines = [f"{SCHEMA_NAME} v{SCHEMA_VERSION}"]
    for key, types in _TOP_LEVEL.items():
        lines.append(
            f"  {key}: {'/'.join(t.__name__ for t in types)}"
        )
    lines.append("  metrics sections: " + ", ".join(_METRIC_SECTIONS))
    return lines
