"""Run-artifact schema and validation.

The artifact format is intentionally simple enough to validate with a
hand-rolled checker (no external jsonschema dependency).  ``SCHEMA_NAME``
and ``SCHEMA_VERSION`` are embedded in every artifact so downstream
tooling can detect format drift across PRs.

Version history:

* **v1** — kind/scenario/seed/config/version/wall_time_s/results/metrics/
  trace.
* **v2** — adds an optional top-level ``slo`` section (epoch-latency
  p50/p95/p99 plus per-phase and per-component time attribution; see
  :mod:`repro.obs.slo`).  v1 documents remain valid — the reader accepts
  every version in ``ACCEPTED_VERSIONS``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "ACCEPTED_VERSIONS",
    "SchemaError",
    "validate_artifact",
]

SCHEMA_NAME = "repro.obs/run-artifact"
SCHEMA_VERSION = 2

#: Versions this build can read.  Writers always emit ``SCHEMA_VERSION``.
ACCEPTED_VERSIONS = (1, 2)

#: Required top-level fields and their accepted types.
_TOP_LEVEL: Dict[str, Tuple[type, ...]] = {
    "schema": (str,),
    "schema_version": (int,),
    "kind": (str,),
    "scenario": (str,),
    "seed": (int, type(None)),
    "config": (dict,),
    "version": (str,),
    "wall_time_s": (int, float),
    "results": (dict,),
    "metrics": (dict,),
    "trace": (list,),
}

_METRIC_SECTIONS = ("counters", "gauges", "histograms", "timers")

_TIMER_FIELDS = ("calls", "wall_s", "cpu_s")

_TRACE_FIELDS: Dict[str, Tuple[type, ...]] = {
    "time": (int, float),
    "category": (str,),
    "message": (str,),
    "fields": (dict,),
}


class SchemaError(ValueError):
    """An artifact document violates the run-artifact schema."""


def _fail(path: str, problem: str) -> None:
    raise SchemaError(f"artifact invalid at {path}: {problem}")


def validate_artifact(doc: object) -> Dict[str, object]:
    """Validate ``doc`` as a run artifact; returns it unchanged on success.

    Raises :class:`SchemaError` naming the offending path otherwise.
    """
    if not isinstance(doc, dict):
        _fail("$", f"expected object, got {type(doc).__name__}")
    for key, types in _TOP_LEVEL.items():
        if key not in doc:
            _fail("$", f"missing required field {key!r}")
        if not isinstance(doc[key], types):
            _fail(f"$.{key}",
                  f"expected {'/'.join(t.__name__ for t in types)}, "
                  f"got {type(doc[key]).__name__}")
    if doc["schema"] != SCHEMA_NAME:
        _fail("$.schema", f"expected {SCHEMA_NAME!r}, got {doc['schema']!r}")
    if doc["schema_version"] not in ACCEPTED_VERSIONS:
        _fail("$.schema_version",
              f"unsupported version {doc['schema_version']!r}")

    slo = doc.get("slo")
    if slo is not None:
        # Imported here, not at module top: obs.slo imports obs.registry,
        # and keeping schema dependency-free of the metrics layer avoids
        # an import cycle through obs/__init__.
        from .slo import validate_slo

        try:
            validate_slo(slo)
        except ValueError as exc:
            _fail("$.slo", str(exc))

    metrics = doc["metrics"]
    for section in _METRIC_SECTIONS:
        if section not in metrics:
            _fail("$.metrics", f"missing section {section!r}")
        if not isinstance(metrics[section], dict):
            _fail(f"$.metrics.{section}", "expected object")
    for name, value in metrics["counters"].items():
        if not isinstance(value, (int, float)):
            _fail(f"$.metrics.counters.{name}", "expected number")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, (int, float)):
            _fail(f"$.metrics.gauges.{name}", "expected number")
    for name, summary in metrics["histograms"].items():
        if not isinstance(summary, dict) or "count" not in summary:
            _fail(f"$.metrics.histograms.{name}",
                  "expected summary object with 'count'")
    for name, summary in metrics["timers"].items():
        if not isinstance(summary, dict):
            _fail(f"$.metrics.timers.{name}", "expected summary object")
        for field in _TIMER_FIELDS:
            if field not in summary:
                _fail(f"$.metrics.timers.{name}", f"missing {field!r}")
            if not isinstance(summary[field], (int, float)):
                _fail(f"$.metrics.timers.{name}.{field}", "expected number")

    for i, rec in enumerate(doc["trace"]):
        if not isinstance(rec, dict):
            _fail(f"$.trace[{i}]", "expected object")
        for field, types in _TRACE_FIELDS.items():
            if field not in rec:
                _fail(f"$.trace[{i}]", f"missing {field!r}")
            if not isinstance(rec[field], types):
                _fail(f"$.trace[{i}].{field}",
                      f"expected {'/'.join(t.__name__ for t in types)}")
    return doc


def describe_schema() -> List[str]:
    """Human-readable field reference (used by README / --help tooling)."""
    lines = [f"{SCHEMA_NAME} v{SCHEMA_VERSION}"]
    for key, types in _TOP_LEVEL.items():
        lines.append(
            f"  {key}: {'/'.join(t.__name__ for t in types)}"
        )
    lines.append("  metrics sections: " + ", ".join(_METRIC_SECTIONS))
    lines.append("  slo (optional, v2): epoch_latency_ms percentiles + "
                 "phase/component attribution")
    return lines
