"""SLO summaries: epoch-latency percentiles, time attribution, trend deltas.

This module turns raw registry state into the three service-level views
the ROADMAP's scale tier asks for:

* :func:`latency_summary` / :func:`slo_report` — p50/p95/p99 (plus
  min/max/mean) of the ``runtime.epoch.latency_ms`` histogram, computed
  with the registry's weighted-percentile rule and embedded in the
  schema-versioned run artifact under the ``slo`` key;
* :func:`phase_attribution` / :func:`component_attribution` — where
  epoch time goes, per pipeline phase (``runtime.phase.*`` timers,
  share of the summed phase wall time) and per component (every timer
  grouped by its dotted prefix: ``lp``, ``2pad``, ``perf``, ...);
* :func:`bench_trend_rows` / :func:`perf_reference_rows` — deltas of
  current timer means against the checked-in baselines
  ``benchmarks/BENCH_obs.json`` and ``benchmarks/BENCH_perf.json``,
  rendered by ``repro-experiments report``.

Everything here consumes plain dicts (registry snapshots or loaded
artifacts), so the report command works on an artifact file from a
finished run without reconstructing any live objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import MetricsRegistry, weighted_percentile

__all__ = [
    "SLO_SCHEMA",
    "SLO_SCHEMA_VERSION",
    "EPOCH_LATENCY_HISTOGRAM",
    "latency_summary",
    "phase_attribution",
    "component_attribution",
    "slo_report",
    "render_slo",
    "bench_trend_rows",
    "perf_reference_rows",
    "validate_slo",
]

SLO_SCHEMA = "repro.obs/slo"
SLO_SCHEMA_VERSION = 1

# The histogram the runtime feeds once per committed epoch (milliseconds).
EPOCH_LATENCY_HISTOGRAM = "runtime.epoch.latency_ms"

# Phase timers follow ``runtime.phase.<name>``; this prefix is the contract
# between runtime instrumentation and attribution.
PHASE_TIMER_PREFIX = "runtime.phase."

_LATENCY_PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))


def latency_summary(values: List[float]) -> Dict[str, float]:
    """p50/p95/p99 + min/max/mean of raw latency samples.

    Uses the same Hyndman–Fan type-7 rule as
    :meth:`~repro.obs.registry.Histogram.percentile`, so artifact
    summaries and live histogram queries agree exactly.
    """
    if not values:
        return {"count": 0}
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    out: Dict[str, float] = {
        "count": n,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
    }
    for key, p in _LATENCY_PERCENTILES:
        out[key] = weighted_percentile(ordered, p)
    return out


def phase_attribution(
    timers: Dict[str, Dict[str, float]]
) -> List[Dict[str, object]]:
    """Per-phase wall time as a share of the summed phase wall time.

    ``timers`` is the ``timers`` section of a registry snapshot
    (``{name: {calls, wall_s, cpu_s, mean_ms}}``).  Only
    ``runtime.phase.*`` entries participate; rows sort by wall time
    descending so the dominant phase leads.
    """
    phases = {
        name[len(PHASE_TIMER_PREFIX):]: summary
        for name, summary in timers.items()
        if name.startswith(PHASE_TIMER_PREFIX)
    }
    total = sum(float(s.get("wall_s", 0.0)) for s in phases.values())
    rows = [
        {
            "phase": phase,
            "calls": int(s.get("calls", 0)),
            "wall_s": float(s.get("wall_s", 0.0)),
            "cpu_s": float(s.get("cpu_s", 0.0)),
            "mean_ms": float(s.get("mean_ms", 0.0)),
            "share": (float(s.get("wall_s", 0.0)) / total) if total else 0.0,
        }
        for phase, s in phases.items()
    ]
    rows.sort(key=lambda r: (-r["wall_s"], r["phase"]))
    return rows


def component_attribution(
    timers: Dict[str, Dict[str, float]]
) -> List[Dict[str, object]]:
    """Wall time grouped by dotted component prefix (``lp``, ``2pad``, ...).

    Phase timers are excluded — they partition the same epoch wall time
    the component view slices differently, and counting both would
    double-book the epoch.
    """
    groups: Dict[str, Dict[str, float]] = {}
    for name, summary in timers.items():
        if name.startswith(PHASE_TIMER_PREFIX):
            continue
        component = name.split(".", 1)[0]
        g = groups.setdefault(
            component, {"wall_s": 0.0, "cpu_s": 0.0, "calls": 0.0}
        )
        g["wall_s"] += float(summary.get("wall_s", 0.0))
        g["cpu_s"] += float(summary.get("cpu_s", 0.0))
        g["calls"] += float(summary.get("calls", 0))
    total = sum(g["wall_s"] for g in groups.values())
    rows = [
        {
            "component": component,
            "calls": int(g["calls"]),
            "wall_s": g["wall_s"],
            "cpu_s": g["cpu_s"],
            "share": (g["wall_s"] / total) if total else 0.0,
        }
        for component, g in groups.items()
    ]
    rows.sort(key=lambda r: (-r["wall_s"], r["component"]))
    return rows


def slo_report(
    registry: MetricsRegistry,
    trace_stats: Optional[Dict[str, int]] = None,
    event_stats: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """The ``slo`` section embedded in run artifacts (schema v2)."""
    hist = registry.histograms.get(EPOCH_LATENCY_HISTOGRAM)
    timers = {n: t.summary() for n, t in registry.timers.items()}
    report: Dict[str, object] = {
        "schema": SLO_SCHEMA,
        "schema_version": SLO_SCHEMA_VERSION,
        "epoch_latency_ms": latency_summary(hist.values if hist else []),
        "phase_attribution": phase_attribution(timers),
        "component_attribution": component_attribution(timers),
    }
    if trace_stats is not None:
        report["trace"] = dict(trace_stats)
    if event_stats is not None:
        report["events"] = dict(event_stats)
    return report


def validate_slo(slo: object) -> None:
    """Structural check used by schema validation and the CI smoke job."""
    if not isinstance(slo, dict):
        raise ValueError("slo section must be an object")
    if slo.get("schema") != SLO_SCHEMA:
        raise ValueError(
            f"slo schema {slo.get('schema')!r} != {SLO_SCHEMA!r}"
        )
    if slo.get("schema_version") != SLO_SCHEMA_VERSION:
        raise ValueError(
            f"slo schema_version {slo.get('schema_version')!r} != "
            f"{SLO_SCHEMA_VERSION}"
        )
    latency = slo.get("epoch_latency_ms")
    if not isinstance(latency, dict) or "count" not in latency:
        raise ValueError("slo.epoch_latency_ms must be a summary object")
    if latency["count"]:
        for key in ("min", "max", "mean", "p50", "p95", "p99"):
            if not isinstance(latency.get(key), (int, float)):
                raise ValueError(f"slo.epoch_latency_ms missing {key!r}")
    for section in ("phase_attribution", "component_attribution"):
        rows = slo.get(section)
        if not isinstance(rows, list):
            raise ValueError(f"slo.{section} must be a list")
        for row in rows:
            if not isinstance(row, dict) or "share" not in row:
                raise ValueError(f"slo.{section} rows need a 'share' field")


# ----------------------------------------------------------------------
# Rendering + benchmark trend deltas (the report command's tables)
# ----------------------------------------------------------------------

def _pct(value: float) -> str:
    return f"{value * 100.0:5.1f}%"


def render_slo(slo: Dict[str, object]) -> str:
    """Human-readable latency + attribution tables for the CLI."""
    lines: List[str] = []
    latency = slo.get("epoch_latency_ms", {"count": 0})
    lines.append("epoch latency (ms)")
    if latency.get("count"):
        lines.append(
            "  count {count:>6}  p50 {p50:8.3f}  p95 {p95:8.3f}  "
            "p99 {p99:8.3f}  mean {mean:8.3f}  max {max:8.3f}".format(
                **latency
            )
        )
    else:
        lines.append("  (no committed epochs recorded)")

    rows = slo.get("phase_attribution", [])
    if rows:
        lines.append("")
        lines.append("phase attribution")
        lines.append(
            f"  {'phase':<10} {'share':>6} {'wall_s':>10} "
            f"{'mean_ms':>9} {'calls':>7}"
        )
        for r in rows:
            lines.append(
                f"  {r['phase']:<10} {_pct(r['share'])} "
                f"{r['wall_s']:>10.4f} {r['mean_ms']:>9.3f} "
                f"{r['calls']:>7}"
            )

    rows = slo.get("component_attribution", [])
    if rows:
        lines.append("")
        lines.append("component attribution")
        lines.append(
            f"  {'component':<12} {'share':>6} {'wall_s':>10} {'calls':>7}"
        )
        for r in rows:
            lines.append(
                f"  {r['component']:<12} {_pct(r['share'])} "
                f"{r['wall_s']:>10.4f} {r['calls']:>7}"
            )

    for key in ("trace", "events"):
        stats = slo.get(key)
        if stats:
            pairs = "  ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            lines.append("")
            lines.append(f"{key}: {pairs}")
    return "\n".join(lines)


def bench_trend_rows(
    timers: Dict[str, Dict[str, float]], bench_obs: Dict[str, object]
) -> List[Dict[str, object]]:
    """Delta of current timer means vs the BENCH_obs baseline.

    The baseline stores timer summaries per sweep point; the largest
    point (most nodes) is the comparison target — the one the scale
    tier cares about.  Only timers present on both sides produce rows;
    ``delta`` is ``(current - baseline) / baseline`` of ``mean_ms``.
    """
    points = bench_obs.get("points") or []
    if not points:
        return []
    baseline = max(points, key=lambda p: p.get("nodes", 0))
    base_timers = baseline.get("timers", {})
    rows = []
    for name in sorted(set(timers) & set(base_timers)):
        current = float(timers[name].get("mean_ms", 0.0))
        base = float(base_timers[name].get("mean_ms", 0.0))
        rows.append(
            {
                "timer": name,
                "current_mean_ms": current,
                "baseline_mean_ms": base,
                "delta": ((current - base) / base) if base else 0.0,
            }
        )
    return rows


def perf_reference_rows(
    bench_perf: Dict[str, object]
) -> List[Dict[str, object]]:
    """Reference lines from BENCH_perf's dynamic-churn section.

    Reported as per-event fast-path milliseconds so an epoch-latency
    mean from a live run can be eyeballed against the checked-in
    fast-path baseline at each benchmarked size.
    """
    dynamic = (bench_perf.get("sections") or {}).get("dynamic") or {}
    rows = []
    for point in dynamic.get("points") or []:
        events = float(point.get("events", 0)) or 1.0
        rows.append(
            {
                "nodes": point.get("nodes"),
                "flows": point.get("flows"),
                "seed": point.get("seed"),
                "fast_ms_per_event": float(point.get("fast_ms", 0.0)) / events,
                "speedup": float(point.get("speedup", 0.0)),
            }
        )
    rows.sort(key=lambda r: (r["nodes"] or 0, r["flows"] or 0, r["seed"] or 0))
    return rows
