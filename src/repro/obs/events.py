"""Bounded streaming JSONL event bus: tail telemetry live, lose nothing silently.

The metrics registry aggregates; the event bus *streams*.  An event is
one JSON object — ``{"record": "event", "seq": N, "source": ..., "kind":
..., ...fields}`` — emitted at a discrete moment (epoch committed, flow
admitted, checkpoint written, warm basis rejected) and appended to a
JSONL file the instant it happens, so a long churn campaign can be
watched with ``tail -f`` instead of waiting for the end-of-run artifact.

Guarantees:

* **No torn lines.**  Each event is encoded once and appended with a
  single ``os.write`` on an ``O_APPEND`` descriptor.  POSIX appends are
  atomic per write call, so even :class:`~repro.perf.parallel.ParallelSweep`
  worker processes sharing one file never interleave mid-line.
* **Bounded memory, explicit drops.**  The in-memory buffer (what gets
  embedded in artifacts and merged across workers) holds at most
  ``max_pending`` events; overflow increments ``dropped`` and the
  ``obs.events.dropped`` counter instead of growing without bound or
  vanishing silently.  File streaming continues past the bound — the
  bound is backpressure on *memory*, not on the stream.
* **Deterministic merge.**  Every event carries a per-bus sequence
  number and a ``source`` label.  Worker buffers are drained in task
  submission order and absorbed verbatim, so the merged event list is
  identical run-to-run for a seeded workload.

Emit from instrumented code via the module helper, which costs one
``is None`` check when no bus is active::

    from repro.obs.events import emit_event

    emit_event("epoch.commit", epoch=12, status="converged")
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from .registry import incr

__all__ = [
    "EventBus",
    "get_event_bus",
    "set_event_bus",
    "using_event_bus",
    "emit_event",
]


class EventBus:
    """Collects and (optionally) streams discrete telemetry events.

    ``path=None`` keeps events purely in memory (tests, workers that
    ship buffers home instead of sharing a file).  The clock is
    injectable; timestamps are relative to bus creation so two seeded
    runs differ only in the ``t_s`` field, never in order or content.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_pending: int = 10_000,
        source: str = "main",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_pending = int(max_pending)
        self.source = source
        self._clock = clock
        self._origin = clock()
        self._seq = 0
        self.pending: List[Dict[str, object]] = []
        self.dropped = 0
        self.written = 0
        self._fd: Optional[int] = None

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the event dict that was recorded."""
        self._seq += 1
        event: Dict[str, object] = {
            "record": "event",
            "seq": self._seq,
            "source": self.source,
            "kind": kind,
            "t_s": self._clock() - self._origin,
        }
        for key, value in fields.items():
            if key not in event:
                event[key] = value
        if len(self.pending) < self.max_pending:
            self.pending.append(event)
        else:
            self.dropped += 1
            incr("obs.events.dropped")
        if self.path is not None:
            self._append_line(event)
        return event

    def _append_line(self, event: Dict[str, object]) -> None:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        line = json.dumps(event, sort_keys=True) + "\n"
        # One write call per line: O_APPEND makes it atomic, so worker
        # processes appending to the same file cannot tear each other's
        # lines.
        os.write(self._fd, line.encode("utf-8"))
        self.written += 1

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ------------------------------------------------------------------
    def drain(self) -> List[Dict[str, object]]:
        """Remove and return the pending buffer (for shipping to a parent)."""
        events, self.pending = self.pending, []
        return events

    def absorb(self, events: Iterable[Dict[str, object]]) -> int:
        """Fold events from another bus (a sweep worker) into this one.

        Events keep their original ``seq``/``source`` — merge order is
        the caller's (task-submission) order, which is what makes the
        merged stream deterministic.  Returns how many were kept; the
        rest count as drops.
        """
        kept = 0
        for event in events:
            if len(self.pending) < self.max_pending:
                self.pending.append(event)
                kept += 1
            else:
                self.dropped += 1
                incr("obs.events.dropped")
            if self.path is not None:
                self._append_line(event)
        return kept

    def stats(self) -> Dict[str, int]:
        return {
            "emitted": self._seq,
            "pending": len(self.pending),
            "dropped": self.dropped,
            "written": self.written,
        }

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# Module-level active bus + zero-overhead-when-off helper
# ----------------------------------------------------------------------

_active: Optional[EventBus] = None


def get_event_bus() -> Optional[EventBus]:
    """The currently active bus, or ``None`` when event streaming is off."""
    return _active


def set_event_bus(bus: Optional[EventBus]) -> Optional[EventBus]:
    """Install ``bus`` as the active one (``None`` disables events)."""
    global _active
    _active = bus
    return bus


class using_event_bus:
    """Context manager: activate a bus, restore the previous on exit.

    >>> with using_event_bus() as bus:
    ...     emit_event("demo", n=1)
    {...}
    >>> bus.pending[0]["kind"]
    'demo'
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        self._previous: Optional[EventBus] = None

    def __enter__(self) -> EventBus:
        self._previous = get_event_bus()
        set_event_bus(self.bus)
        return self.bus

    def __exit__(self, *exc: object) -> bool:
        set_event_bus(self._previous)
        self.bus.close()
        return False


def emit_event(kind: str, **fields: object) -> None:
    """Emit an event on the active bus; no-op when none is active."""
    bus = _active
    if bus is not None:
        bus.emit(kind, **fields)
