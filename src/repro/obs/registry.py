"""Unified metrics registry: counters, gauges, histograms, phase timers.

The registry is the measurement substrate for the whole stack.  Hot paths
call the module-level helpers (:func:`phase_timer`, :func:`incr`,
:func:`observe`, :func:`set_gauge`); when no registry is active these are
no-ops whose cost is a single ``is None`` check, so instrumented code pays
essentially nothing in the default configuration.

Activate a registry around a region of interest::

    from repro import obs

    with obs.using_registry() as reg:
        run_table2(duration=5.0)
    print(obs.render_profile(reg))

Phase timers accumulate wall-clock *and* CPU time and are reentrant: when
the same named timer is entered while already running (recursive or nested
use), only the outermost enter/exit pair contributes elapsed time, while
``calls`` counts every entry.  Distinct timer names nest freely, so
``lp.solve`` samples show up inside a surrounding ``2pad.run`` phase
without double bookkeeping.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
    "weighted_percentile",
    "get_registry",
    "set_registry",
    "using_registry",
    "phase_timer",
    "incr",
    "observe",
    "set_gauge",
]


def weighted_percentile(ordered: List[float], p: float) -> float:
    """Hyndman–Fan type-7 percentile of an already-sorted sample.

    The rule (the default in R, NumPy, and spreadsheets): for sample
    size ``n`` the percentile ``p`` sits at fractional rank
    ``h = (n - 1) * p / 100``; the estimate linearly interpolates the
    two order statistics bracketing ``h``::

        x[floor(h)] + (h - floor(h)) * (x[floor(h) + 1] - x[floor(h)])

    Unlike nearest-rank, this is continuous in ``p`` and exact at small
    counts — ``p50`` of ``[1, 2]`` is 1.5, not 1 — which matters for
    short campaigns where an epoch-latency histogram may hold only a
    handful of samples.
    """
    if not ordered:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    n = len(ordered)
    if n == 1:
        return ordered[0]
    h = (n - 1) * (p / 100.0)
    lo = math.floor(h)
    frac = h - lo
    if lo + 1 >= n:
        return ordered[-1]
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


class Counter:
    """A monotonically increasing count (events, pivots, messages...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins sample (queue depth, events/sec...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A value distribution with weighted-percentile summaries."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, p: float) -> float:
        """Hyndman–Fan type-7 percentile, ``p`` in [0, 100].

        See :func:`weighted_percentile` for the interpolation rule.
        """
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        return weighted_percentile(sorted(self.values), p)

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        n = len(ordered)
        return {
            "count": n,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / n,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class PhaseTimer:
    """Accumulated wall + CPU time for one named phase.

    Used as a context manager (usually via :func:`phase_timer`).  Reentrant
    same-name nesting counts elapsed time once (outermost pair only) while
    still counting every call.
    """

    __slots__ = ("name", "calls", "wall_s", "cpu_s", "_depth",
                 "_wall_start", "_cpu_start", "_wall_clock", "_cpu_clock")

    def __init__(
        self,
        name: str,
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self.name = name
        self.calls = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._depth = 0
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._wall_clock = wall_clock
        self._cpu_clock = cpu_clock

    def __enter__(self) -> "PhaseTimer":
        self.calls += 1
        self._depth += 1
        if self._depth == 1:
            self._wall_start = self._wall_clock()
            self._cpu_start = self._cpu_clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._depth -= 1
        if self._depth == 0:
            self.wall_s += self._wall_clock() - self._wall_start
            self.cpu_s += self._cpu_clock() - self._cpu_start
        return False

    def add(self, wall_s: float, cpu_s: float = 0.0, calls: int = 1) -> None:
        """Record an externally measured sample (no context manager)."""
        self.calls += calls
        self.wall_s += wall_s
        self.cpu_s += cpu_s

    def summary(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "mean_ms": (self.wall_s / self.calls * 1e3) if self.calls else 0.0,
        }


class MetricsRegistry:
    """Holds every named metric created during a run.

    Metrics are created lazily on first access, so instrumentation sites
    never need registration boilerplate.  Clock functions are injectable
    for deterministic tests.
    """

    def __init__(
        self,
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, PhaseTimer] = {}
        self._wall_clock = wall_clock
        self._cpu_clock = cpu_clock

    # -- lazy accessors -------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def timer(self, name: str) -> PhaseTimer:
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = PhaseTimer(
                name, self._wall_clock, self._cpu_clock
            )
        return t

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict view of every metric, ready for JSON export."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
            "timers": {
                n: t.summary() for n, t in sorted(self.timers.items())
            },
        }

    def mergeable_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Like :meth:`snapshot`, but lossless: histograms keep their raw
        values and timers their (calls, wall_s, cpu_s) triples, so the
        result can be shipped across a process boundary and folded into
        another registry with :meth:`merge_snapshot`."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: list(h.values) for n, h in sorted(self.histograms.items())
            },
            "timers": {
                n: {"calls": t.calls, "wall_s": t.wall_s, "cpu_s": t.cpu_s}
                for n, t in sorted(self.timers.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`mergeable_snapshot` from another registry (e.g. a
        parallel-sweep worker) into this one: counters and timers add,
        gauges overwrite, histogram values append.  Histogram entries that
        are summary dicts (from :meth:`snapshot`) carry no raw values and
        are skipped rather than fabricated."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, values in snap.get("histograms", {}).items():
            if isinstance(values, dict):
                continue
            h = self.histogram(name)
            for v in values:
                h.observe(float(v))
        for name, t in snap.get("timers", {}).items():
            self.timer(name).add(
                wall_s=float(t.get("wall_s", 0.0)),
                cpu_s=float(t.get("cpu_s", 0.0)),
                calls=int(t.get("calls", 0)),
            )

    def sample_records(self) -> Iterator[Dict[str, object]]:
        """One flat record per metric, for JSONL streaming."""
        for name, c in sorted(self.counters.items()):
            yield {"record": "counter", "name": name, "value": c.value}
        for name, g in sorted(self.gauges.items()):
            yield {"record": "gauge", "name": name, "value": g.value}
        for name, h in sorted(self.histograms.items()):
            yield {"record": "histogram", "name": name, **h.summary()}
        for name, t in sorted(self.timers.items()):
            yield {"record": "timer", "name": name, **t.summary()}

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()


# ----------------------------------------------------------------------
# Module-level active registry + zero-overhead-when-off helpers
# ----------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None


class _NullTimer:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def get_registry() -> Optional[MetricsRegistry]:
    """The currently active registry, or ``None`` when metrics are off."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the active one (``None`` disables metrics)."""
    global _active
    _active = registry
    return registry


class using_registry:
    """Context manager: activate a registry, restore the previous on exit.

    >>> with using_registry() as reg:
    ...     incr("demo.events")
    >>> reg.counters["demo.events"].value
    1.0
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = get_registry()
        set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc: object) -> bool:
        set_registry(self._previous)
        return False


def phase_timer(name: str):
    """Timer context manager for phase ``name``; no-op when metrics are off."""
    reg = _active
    if reg is None:
        return _NULL_TIMER
    return reg.timer(name)


def incr(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name``; no-op when metrics are off."""
    reg = _active
    if reg is not None:
        reg.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name``; no-op when metrics are off."""
    reg = _active
    if reg is not None:
        reg.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name``; no-op when metrics are off."""
    reg = _active
    if reg is not None:
        reg.gauge(name).set(value)
