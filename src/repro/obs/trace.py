"""Hierarchical spans: end-to-end tracing of the allocator pipeline.

A **span** is one timed, named region of execution with a deterministic
id, an optional parent, and free-form tags.  Spans nest: the epoch
pipeline opens ``runtime.epoch``, each phase opens a child
(``runtime.phase.solve``...), every LP solve inside the phase opens a
grandchild (``lp.solve``), and so on down to 2PA-D per-flow gossip and
checkpoint writes.  The finished trace is a tree encoded as flat JSONL
records (one object per span, ``parent`` linking upward), so campaigns
can answer "where does epoch time go, per phase, per LP solve, per
gossip exchange" from a single file.

Design rules, matching :mod:`repro.obs.registry`:

* **Deterministic ids.**  Span ids are sequence numbers assigned in
  *open* order (``"s1"``, ``"s2"``, ...), not random — two runs of the
  same seeded workload produce identical id assignments, so traces can
  be diffed across PRs and a reproducer can cite a span id.
* **Zero-cost when off.**  Instrumentation calls :func:`span`; with no
  tracer active it returns a shared :class:`NullSpan` whose every method
  is a no-op — the disabled path costs one ``is None`` check and must
  never change allocation results (the CI telemetry-smoke job asserts
  disabled runs are bitwise identical).
* **Bounded.**  A tracer keeps at most ``max_spans`` finished spans;
  overflow increments an explicit ``dropped`` counter (surfaced as
  ``obs.trace.dropped``) rather than silently growing or silently
  truncating.

Usage::

    from repro.obs import trace

    with trace.using_tracer() as tracer:
        with trace.span("runtime.epoch", epoch=0) as sp:
            with trace.span("runtime.phase.solve"):
                ...
            sp.tag(status="converged")
    records = tracer.to_records()          # JSONL-ready span dicts
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "using_tracer",
    "span",
    "current_span_id",
    "tag_current",
]


class Span:
    """One open (then finished) traced region.

    Created by :meth:`SpanTracer.span` — not directly.  Used as a
    context manager; :meth:`tag` attaches/overwrites tags while open
    (tags recorded at close time are what the trace keeps).
    """

    __slots__ = ("span_id", "parent_id", "name", "tags", "start_s",
                 "end_s", "_tracer")

    def __init__(self, tracer: "SpanTracer", span_id: str,
                 parent_id: Optional[str], name: str,
                 tags: Dict[str, object], start_s: float) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags = tags
        self.start_s = start_s
        self.end_s: Optional[float] = None

    def tag(self, **tags: object) -> "Span":
        """Attach (or overwrite) tags; chainable."""
        self.tags.update(tags)
        return self

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return end - self.start_s

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    def to_record(self) -> Dict[str, object]:
        return {
            "record": "span",
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }


class NullSpan:
    """Shared do-nothing span for the disabled path (zero-cost)."""

    __slots__ = ()

    span_id = ""
    parent_id = None
    name = ""
    duration_s = 0.0

    def tag(self, **tags: object) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = NullSpan()


class SpanTracer:
    """Collects a bounded tree of spans with deterministic ids.

    The clock is injectable for deterministic tests; ids depend only on
    span-open order, never on the clock.  Not thread-safe by design —
    each :class:`~repro.perf.parallel.ParallelSweep` worker process gets
    its own tracer (like its own metrics registry).
    """

    def __init__(
        self,
        max_spans: int = 100_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.max_spans = int(max_spans)
        self._clock = clock
        self._origin = clock()
        self._next = 0
        self._stack: List[Span] = []
        self.finished: List[Span] = []
        self.dropped = 0
        self.opened = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **tags: object) -> Span:
        """Open a child of the innermost open span (root when none)."""
        return self._open(name, tags)

    def _open(self, name: str, tags: Dict[str, object]) -> Span:
        """Hot path: ``tags`` is owned by the span, not copied."""
        self._next += 1
        self.opened += 1
        stack = self._stack
        parent = stack[-1].span_id if stack else None
        sp = Span(
            self, f"s{self._next}", parent, name, tags,
            self._clock() - self._origin,
        )
        stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        sp.end_s = self._clock() - self._origin
        # Spans close innermost-first under context-manager discipline;
        # tolerate (and repair) a missed exit by popping through it.
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break
        if len(self.finished) < self.max_spans:
            self.finished.append(sp)
        else:
            self.dropped += 1

    # ------------------------------------------------------------------
    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1].span_id if self._stack else None

    def to_records(self) -> List[Dict[str, object]]:
        """JSONL-ready records of every finished span, in close order."""
        return [sp.to_record() for sp in self.finished]

    def stats(self) -> Dict[str, int]:
        return {
            "opened": self.opened,
            "finished": len(self.finished),
            "dropped": self.dropped,
            "open": len(self._stack),
        }

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self.dropped = 0
        self.opened = 0
        self._next = 0


# ----------------------------------------------------------------------
# Module-level active tracer + zero-overhead-when-off helpers
# ----------------------------------------------------------------------

_active: Optional[SpanTracer] = None


def get_tracer() -> Optional[SpanTracer]:
    """The currently active tracer, or ``None`` when tracing is off."""
    return _active


def set_tracer(tracer: Optional[SpanTracer]) -> Optional[SpanTracer]:
    """Install ``tracer`` as the active one (``None`` disables tracing)."""
    global _active
    _active = tracer
    return tracer


class using_tracer:
    """Context manager: activate a tracer, restore the previous on exit.

    >>> with using_tracer() as tracer:
    ...     with span("demo"):
    ...         pass
    >>> tracer.finished[0].name
    'demo'
    """

    def __init__(self, tracer: Optional[SpanTracer] = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self._previous: Optional[SpanTracer] = None

    def __enter__(self) -> SpanTracer:
        self._previous = get_tracer()
        set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc: object) -> bool:
        set_tracer(self._previous)
        return False


def span(name: str, **tags: object):
    """Open a span named ``name``; the shared no-op span when tracing is off."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer._open(name, tags)


def current_span_id() -> Optional[str]:
    """Innermost open span id, or ``None`` (tracing off / at the root).

    Instrumentation uses this to stamp *metrics* with trace context —
    e.g. a stale warm-basis fallback event carries the span id of the
    LP solve that triggered it, so the fallback is attributable to a
    specific epoch/probe in the trace tree.
    """
    tracer = _active
    if tracer is None:
        return None
    return tracer.current_span_id()


def tag_current(**tags: object) -> None:
    """Tag the innermost open span from code that did not open it.

    Lets deep helpers (e.g. the warm-start installer inside the simplex
    solver) annotate the enclosing solve span without threading span
    objects through their signatures.  No-op when tracing is off or no
    span is open.
    """
    tracer = _active
    if tracer is not None and tracer._stack:
        tracer._stack[-1].tags.update(tags)
