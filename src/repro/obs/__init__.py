"""``repro.obs``: the unified observability layer for the 2PA stack.

Three pieces, designed to compose:

* :mod:`~repro.obs.registry` — counters, gauges, histograms, and reentrant
  phase timers behind module-level helpers that cost one ``is None`` check
  when no registry is active;
* :mod:`~repro.obs.artifact` + :mod:`~repro.obs.jsonl` — structured,
  schema-versioned run records written atomically (JSON or JSONL), so
  experiments can be diffed across PRs;
* :mod:`~repro.obs.schema` / :mod:`~repro.obs.profile` — validation and
  human-readable profile rendering for the CLI's ``--profile`` flag.

Instrumentation points live in the hot paths of the reproduction:
clique enumeration (``contention.*``), simplex pivots and LP solves
(``lp.*``), 2PA-D constraint propagation (``2pad.*``), and the
discrete-event loop (``sim.*``).  See README's Observability section for
the full metric and flag reference.
"""

from .artifact import RunArtifact
from .jsonl import (
    atomic_write_text,
    dump_jsonl,
    load_jsonl,
    records_to_trace,
    trace_to_records,
)
from .profile import render_profile
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    get_registry,
    incr,
    observe,
    phase_timer,
    set_gauge,
    set_registry,
    using_registry,
)
from .schema import SCHEMA_NAME, SCHEMA_VERSION, SchemaError, validate_artifact

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "using_registry",
    "phase_timer",
    "incr",
    "observe",
    "set_gauge",
    "RunArtifact",
    "render_profile",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "validate_artifact",
    "atomic_write_text",
    "dump_jsonl",
    "load_jsonl",
    "trace_to_records",
    "records_to_trace",
]
