"""``repro.obs``: the unified observability layer for the 2PA stack.

Six pieces, designed to compose:

* :mod:`~repro.obs.registry` — counters, gauges, histograms, and reentrant
  phase timers behind module-level helpers that cost one ``is None`` check
  when no registry is active;
* :mod:`~repro.obs.trace` — hierarchical spans with deterministic ids
  covering the epoch pipeline, LP solves, 2PA-D gossip, and checkpoints
  (same zero-cost-when-off contract, via a shared ``NullSpan``);
* :mod:`~repro.obs.events` — a bounded streaming JSONL event bus with
  explicit drop counters, torn-line-safe under parallel sweep workers;
* :mod:`~repro.obs.export` + :mod:`~repro.obs.slo` — Prometheus
  text-format exposition, epoch-latency p50/p95/p99 summaries, and
  per-phase/per-component time attribution for ``repro-experiments
  report``;
* :mod:`~repro.obs.artifact` + :mod:`~repro.obs.jsonl` — structured,
  schema-versioned run records written atomically (JSON or JSONL), so
  experiments can be diffed across PRs;
* :mod:`~repro.obs.schema` / :mod:`~repro.obs.profile` — validation and
  human-readable profile rendering for the CLI's ``--profile`` flag.

Instrumentation points live in the hot paths of the reproduction:
clique enumeration (``contention.*``), simplex pivots and LP solves
(``lp.*``), 2PA-D constraint propagation (``2pad.*``), and the
discrete-event loop (``sim.*``).  See README's Observability section for
the full metric and flag reference.
"""

from .artifact import RunArtifact
from .events import (
    EventBus,
    emit_event,
    get_event_bus,
    set_event_bus,
    using_event_bus,
)
from .export import (
    render_prometheus,
    validate_prometheus_text,
    write_prometheus,
)
from .jsonl import (
    atomic_write_text,
    dump_jsonl,
    load_jsonl,
    records_to_trace,
    trace_to_records,
)
from .profile import render_profile
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    get_registry,
    incr,
    observe,
    phase_timer,
    set_gauge,
    set_registry,
    using_registry,
    weighted_percentile,
)
from .schema import SCHEMA_NAME, SCHEMA_VERSION, SchemaError, validate_artifact
from .slo import render_slo, slo_report
from .trace import (
    NullSpan,
    Span,
    SpanTracer,
    current_span_id,
    get_tracer,
    set_tracer,
    span,
    using_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
    "weighted_percentile",
    "get_registry",
    "set_registry",
    "using_registry",
    "phase_timer",
    "incr",
    "observe",
    "set_gauge",
    "Span",
    "NullSpan",
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "using_tracer",
    "span",
    "current_span_id",
    "EventBus",
    "get_event_bus",
    "set_event_bus",
    "using_event_bus",
    "emit_event",
    "render_prometheus",
    "write_prometheus",
    "validate_prometheus_text",
    "slo_report",
    "render_slo",
    "RunArtifact",
    "render_profile",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SchemaError",
    "validate_artifact",
    "atomic_write_text",
    "dump_jsonl",
    "load_jsonl",
    "trace_to_records",
    "records_to_trace",
]
