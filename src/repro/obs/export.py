"""Prometheus text-format exposition for the metrics registry.

Renders a :class:`~repro.obs.registry.MetricsRegistry` as Prometheus
text exposition format (version 0.0.4) so a scrape target, pushgateway,
or plain file drop can ingest run telemetry without bespoke tooling:

* counters  → ``repro_<name>_total`` (``# TYPE ... counter``)
* gauges    → ``repro_<name>``       (``# TYPE ... gauge``)
* histograms→ ``repro_<name>`` summaries — ``{quantile="0.5|0.95|0.99"}``
  samples plus ``_sum``/``_count`` (``# TYPE ... summary``), quantiles
  computed with the registry's weighted-percentile rule
* timers    → ``repro_<name>_seconds_total`` (wall), ``_cpu_seconds_total``,
  and ``_calls_total`` counters

Metric names are sanitized to the Prometheus grammar (dots and other
punctuation become underscores) and prefixed ``repro_`` to namespace the
exposition.  Rendering is deterministic: families sort by name, samples
by label.  :func:`validate_prometheus_text` is a small structural
checker used by tests and the CI telemetry-smoke job — it verifies the
grammar, that every sample belongs to a declared ``# TYPE`` family, and
that values parse as floats.
"""

from __future__ import annotations

import math
import re
from pathlib import Path
from typing import List, Union

from .jsonl import atomic_write_text
from .registry import MetricsRegistry

__all__ = [
    "render_prometheus",
    "write_prometheus",
    "validate_prometheus_text",
    "PrometheusFormatError",
]

_NAME_PREFIX = "repro_"
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)$"
)

_SUMMARY_QUANTILES = (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0))


class PrometheusFormatError(ValueError):
    """Raised by :func:`validate_prometheus_text` on malformed exposition."""


def sanitize_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus metric grammar."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return _NAME_PREFIX + cleaned


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in ``registry`` as Prometheus exposition text."""
    lines: List[str] = []

    for name in sorted(registry.counters):
        prom = sanitize_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(registry.counters[name].value)}")

    for name in sorted(registry.gauges):
        prom = sanitize_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(registry.gauges[name].value)}")

    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        prom = sanitize_name(name)
        lines.append(f"# TYPE {prom} summary")
        if hist.count:
            for label, p in _SUMMARY_QUANTILES:
                lines.append(
                    f'{prom}{{quantile="{label}"}} '
                    f"{_fmt(hist.percentile(p))}"
                )
        lines.append(f"{prom}_sum {_fmt(sum(hist.values))}")
        lines.append(f"{prom}_count {_fmt(hist.count)}")

    for name in sorted(registry.timers):
        timer = registry.timers[name]
        base = sanitize_name(name)
        for suffix, value in (
            ("_seconds_total", timer.wall_s),
            ("_cpu_seconds_total", timer.cpu_s),
            ("_calls_total", float(timer.calls)),
        ):
            prom = base + suffix
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_fmt(value)}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry,
                     path: Union[str, Path]) -> str:
    """Atomically write the exposition to ``path``; returns the text."""
    text = render_prometheus(registry)
    atomic_write_text(Path(path), text)
    return text


def validate_prometheus_text(text: str) -> int:
    """Structurally validate exposition text; returns the sample count.

    Checks the 0.0.4 grammar per line, that every sample's base family
    (name stripped of ``_sum``/``_count``) was declared by a ``# TYPE``
    line, and that values parse.  Raises
    :class:`PrometheusFormatError` on the first violation.
    """
    declared = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                raise PrometheusFormatError(
                    f"line {lineno}: malformed TYPE declaration: {line!r}"
                )
            declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise PrometheusFormatError(
                f"line {lineno}: not a valid sample line: {line!r}"
            )
        name = match.group("name")
        base = name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in declared:
                base = base[: -len(suffix)]
                break
        if base not in declared:
            raise PrometheusFormatError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        raw = match.group("value")
        if raw not in ("+Inf", "-Inf", "NaN"):
            try:
                float(raw)
            except ValueError as exc:
                raise PrometheusFormatError(
                    f"line {lineno}: bad sample value {raw!r}"
                ) from exc
        samples += 1
    return samples
