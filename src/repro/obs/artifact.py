"""Structured run artifacts: one machine-readable record per experiment.

A :class:`RunArtifact` bundles everything needed to compare two runs of the
same experiment across PRs: what ran (kind, scenario, seed, config), which
code ran it (package version), how long it took (wall time), the paper
quantities it produced (``results``), every metric the registry collected,
and optionally the raw trace records.  Writes are atomic, so benchmark
tooling never reads a half-written file.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .jsonl import atomic_write_text, dump_jsonl, load_jsonl, trace_to_records
from .registry import MetricsRegistry
from .schema import SCHEMA_NAME, SCHEMA_VERSION, validate_artifact

__all__ = ["RunArtifact"]


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports modules that import repro.obs,
    # so a top-level import here would be circular.
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - partial-init edge
        return "unknown"


@dataclass
class RunArtifact:
    """A complete, schema-versioned record of one experiment run."""

    kind: str
    scenario: str = ""
    seed: Optional[int] = None
    config: Dict[str, object] = field(default_factory=dict)
    results: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    trace: List[Dict[str, object]] = field(default_factory=list)
    slo: Optional[Dict[str, object]] = None
    wall_time_s: float = 0.0
    version: str = field(default_factory=_package_version)
    created_unix: float = field(default_factory=time.time)

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------
    def attach_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Snapshot ``registry`` into the artifact's metrics section."""
        if registry is None:
            self.metrics = MetricsRegistry().snapshot()
        else:
            self.metrics = registry.snapshot()

    def attach_trace(self, tracer) -> None:
        """Export a :class:`~repro.sim.trace.Tracer`'s records."""
        self.trace = trace_to_records(tracer)

    def attach_slo(
        self,
        registry: Optional[MetricsRegistry],
        trace_stats: Optional[Dict[str, int]] = None,
        event_stats: Optional[Dict[str, int]] = None,
    ) -> None:
        """Embed the SLO section (epoch latency + attribution) from
        ``registry``; see :func:`repro.obs.slo.slo_report`."""
        from .slo import slo_report

        self.slo = slo_report(
            registry if registry is not None else MetricsRegistry(),
            trace_stats=trace_stats,
            event_stats=event_stats,
        )

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        if not self.metrics:
            self.attach_registry(None)
        doc: Dict[str, object] = {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "scenario": self.scenario,
            "seed": self.seed,
            "config": dict(self.config),
            "version": self.version,
            "created_unix": self.created_unix,
            "wall_time_s": self.wall_time_s,
            "results": self.results,
            "metrics": self.metrics,
            "trace": list(self.trace),
        }
        if self.slo is not None:
            doc["slo"] = self.slo
        return validate_artifact(doc)

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "RunArtifact":
        validate_artifact(doc)
        return cls(
            kind=doc["kind"],
            scenario=doc["scenario"],
            seed=doc["seed"],
            config=dict(doc["config"]),
            results=dict(doc["results"]),
            metrics=dict(doc["metrics"]),
            trace=list(doc["trace"]),
            slo=doc.get("slo"),
            wall_time_s=float(doc["wall_time_s"]),
            version=str(doc["version"]),
            created_unix=float(doc.get("created_unix", 0.0)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True,
                          default=str)

    # ------------------------------------------------------------------
    # Disk I/O (atomic)
    # ------------------------------------------------------------------
    def write(self, path: str) -> str:
        """Atomically write the artifact to ``path``.

        A ``.jsonl`` suffix selects the streaming layout (header line, then
        one line per metric sample and trace record); anything else gets a
        single pretty-printed JSON document.
        """
        if str(path).endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            atomic_write_text(str(path), self.to_json() + "\n")
        return str(path)

    def write_jsonl(self, path: str) -> int:
        """JSONL layout: artifact header, metric samples, trace records."""
        doc = self.to_json_dict()
        header = {k: v for k, v in doc.items()
                  if k not in ("metrics", "trace")}
        header["record"] = "artifact-header"
        records: List[Dict[str, object]] = [header]
        metrics = doc["metrics"]
        for section in ("counters", "gauges"):
            for name, value in metrics.get(section, {}).items():
                records.append({"record": section[:-1], "name": name,
                                "value": value})
        for name, summary in metrics.get("histograms", {}).items():
            records.append({"record": "histogram", "name": name, **summary})
        for name, summary in metrics.get("timers", {}).items():
            records.append({"record": "timer", "name": name, **summary})
        records.extend(doc["trace"])
        return dump_jsonl(str(path), records)

    @classmethod
    def load(cls, path: str) -> "RunArtifact":
        """Read back an artifact written by :meth:`write` (either layout)."""
        if str(path).endswith(".jsonl"):
            records = load_jsonl(str(path))
            header = next(
                r for r in records if r.get("record") == "artifact-header"
            )
            metrics: Dict[str, Dict[str, object]] = {
                "counters": {}, "gauges": {}, "histograms": {}, "timers": {}
            }
            trace: List[Dict[str, object]] = []
            for rec in records:
                kind = rec.get("record")
                if kind in ("counter", "gauge"):
                    metrics[kind + "s"][rec["name"]] = rec["value"]
                elif kind in ("histogram", "timer"):
                    body = {k: v for k, v in rec.items()
                            if k not in ("record", "name")}
                    metrics[kind + "s"][rec["name"]] = body
                elif kind == "trace":
                    trace.append({k: v for k, v in rec.items()
                                  if k != "record"})
            doc = {k: v for k, v in header.items() if k != "record"}
            doc["metrics"] = metrics
            doc["trace"] = trace
            return cls.from_json_dict(doc)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))
