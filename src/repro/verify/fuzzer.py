"""Seeded scenario fuzzer: generate → check → shrink → serialize.

Drives the whole verification layer on *arbitrary* topologies.  Each case
draws a random connected network and shortest-path flow set from a
dedicated :class:`~repro.sim.rng.RngRegistry` stream (so case ``i`` of
master seed ``s`` is reproducible forever and independent of every other
case), runs every differential oracle and paper invariant from
:mod:`repro.verify.oracles` / :mod:`repro.verify.invariants`, and — on a
failure — *shrinks* the scenario (dropping flows, then unused nodes,
while the same check keeps failing) down to a minimal reproducer that is
serialized through :mod:`repro.scenarios.io` with the originating seed.

The ``repro-experiments verify`` CLI subcommand and the test suite both
run exactly this code path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.allocation import (
    basic_allocation,
    basic_fairness_lp_allocation,
    build_basic_fairness_lp,
    fairness_constrained_allocation,
)
from ..core.bounds import bound_vs_basic_consistency
from ..core.contention import ContentionAnalysis
from ..core.distributed import DistributedAllocator
from ..core.model import Network, Scenario
from ..obs.registry import incr, phase_timer
from ..scenarios.io import scenario_to_dict
from ..scenarios.random_topology import (
    random_connected_network,
    random_flows,
)
from ..sim.rng import RngRegistry
from .invariants import (
    check_basic_fairness,
    check_clique_capacity,
    check_fairness_constraint,
    check_prop1_bound,
    check_virtual_length_consistency,
)
from .oracles import (
    BruteForceLimit,
    check_2pad_against_centralized,
    cliques_agree,
    lp_objective_matches,
)

__all__ = [
    "CheckOutcome",
    "FuzzFailure",
    "FuzzReport",
    "VerificationSuite",
    "generate_scenario",
    "inject_share_fault",
    "run_fuzz",
    "shrink_scenario",
]

PASS, FAIL, SKIP = "pass", "fail", "skip"

#: Default exhaustive-clique-enumeration cap for fuzzing (see oracles).
FUZZ_BRUTE_FORCE_MAX_VERTICES = 16

LP_TOL = 1e-6


@dataclass(frozen=True)
class CheckOutcome:
    """One check on one scenario: named, tri-state, with diagnostics."""

    name: str
    status: str  # pass | fail | skip
    details: str = ""

    @property
    def failed(self) -> bool:
        return self.status == FAIL


def inject_share_fault(shares: Dict[str, float],
                       capacity: float) -> Dict[str, float]:
    """The canonical injected fault: inflate one flow's share past B.

    Bumping the lexicographically-first flow by ``B/2`` always breaks at
    least one clique-capacity constraint of a throughput-optimal
    allocation (every flow sits in some tight clique at the LP optimum),
    so a healthy checker must flag it.
    """
    faulted = dict(shares)
    victim = min(faulted)
    faulted[victim] += 0.5 * capacity
    return faulted


class VerificationSuite:
    """Runs every oracle + invariant against one scenario.

    ``fault`` optionally post-processes the phase-1 LP allocation before
    its invariants are checked — the hook used to prove the harness
    actually catches bad allocations (``repro verify --inject-fault``).
    """

    def __init__(
        self,
        brute_force_max_vertices: int = FUZZ_BRUTE_FORCE_MAX_VERTICES,
        lp_tol: float = LP_TOL,
        with_scipy: bool = False,
        fault: Optional[Callable[[Dict[str, float], float],
                                 Dict[str, float]]] = None,
        faults: bool = False,
        churn: bool = False,
        backend: str = "simplex",
        sharded: bool = False,
        overload: bool = False,
    ) -> None:
        self.brute_force_max_vertices = brute_force_max_vertices
        self.lp_tol = lp_tol
        self.with_scipy = with_scipy
        self.fault = fault
        #: Also run each case under a random fault plan (lossy 2PA-D with
        #: the resilience safety invariants) — ``repro verify --faults``.
        self.faults = faults
        #: Also run each case through the long-lived runtime under a
        #: seeded churn timeline — ``repro verify --churn``.
        self.churn = churn
        #: Also run the component-sharded differential axis — the
        #: :class:`~repro.perf.shard.ShardedSolver` at jobs=1 and jobs>1
        #: against the monolithic LP, plus sharded-vs-monolithic
        #: :class:`AllocatorRuntime` journals in centralized and
        #: distributed-lossy modes — ``repro verify --sharded``.  Every
        #: comparison is bitwise (``==`` on floats): sharding is exact.
        self.sharded = sharded
        #: Also run each case through the overload-protected runtime
        #: under an open-loop heavy-traffic arrival trace with forced
        #: deadline stalls and an adversarial fault plan (arrival
        #: bursts; worker faults ride along in the reproducer) —
        #: ``repro verify --overload``.
        self.overload = overload
        #: Float LP solver under test (``repro verify --backend``): every
        #: allocation the suite checks and the float side of the
        #: ``lp.float_vs_exact`` oracle run on this backend.
        self.backend = backend

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> List[CheckOutcome]:
        """All checks on ``scenario``; never raises on check failure."""
        out: List[CheckOutcome] = []
        analysis = ContentionAnalysis(scenario)
        b = scenario.capacity

        # Differential oracle: Bron–Kerbosch vs exhaustive enumeration.
        with phase_timer("verify.cliques"):
            try:
                ok = cliques_agree(
                    analysis.graph, self.brute_force_max_vertices
                )
                out.append(CheckOutcome(
                    "cliques.brute_force", PASS if ok else FAIL,
                    "" if ok else "Bron–Kerbosch != brute-force enumeration",
                ))
            except BruteForceLimit as exc:
                out.append(CheckOutcome("cliques.brute_force", SKIP,
                                        str(exc)))

        # Structural invariants of the contention analysis.
        res = check_virtual_length_consistency(scenario, analysis)
        out.append(CheckOutcome(
            "invariants.virtual_length", PASS if res.ok else FAIL,
            res.details,
        ))
        ok = bound_vs_basic_consistency(analysis)
        out.append(CheckOutcome(
            "invariants.omega_le_basic_denom", PASS if ok else FAIL,
            "" if ok else "ω_Ω > Σ w_i v_i",
        ))

        # Basic allocation: proportional, feasible, below the Prop.1 bound.
        with phase_timer("verify.allocations"):
            basic = basic_allocation(analysis)
            out.extend(self._allocation_checks(
                "basic", analysis, basic.shares, b,
                fairness=True, prop1=True, basic_fair=True,
            ))

            # Fairness-constrained (Prop. 1) allocation: the bound itself.
            prop1 = fairness_constrained_allocation(analysis)
            out.extend(self._allocation_checks(
                "prop1", analysis, prop1.shares, b,
                fairness=True, prop1=True, basic_fair=False,
            ))

            # Phase-1 LP (2PA-C) allocation, optionally faulted.
            lp_alloc = basic_fairness_lp_allocation(
                analysis, backend=self.backend
            )
            lp_shares = dict(lp_alloc.shares)
            if self.fault is not None:
                lp_shares = self.fault(lp_shares, b)
            out.extend(self._allocation_checks(
                "lp", analysis, lp_shares, b,
                fairness=False, prop1=False, basic_fair=True,
            ))

        # Differential oracle: float simplex vs exact Fraction reference,
        # per contending flow group, plus total-objective agreement.
        with phase_timer("verify.exact_lp"):
            out.extend(self._lp_oracle_checks(analysis, lp_shares, b))

        # Differential oracle: 2PA-D against 2PA-C.
        with phase_timer("verify.2pad"):
            try:
                report = check_2pad_against_centralized(
                    scenario, lp_alloc.shares, analysis=analysis,
                    tol=self.lp_tol,
                )
                out.append(CheckOutcome(
                    "2pad.vs_centralized", PASS if report["ok"] else FAIL,
                    "; ".join(report["mismatches"][:3]),
                ))
            except Exception as exc:  # a crash in 2PA-D is a finding too
                out.append(CheckOutcome(
                    "2pad.vs_centralized", FAIL,
                    f"{type(exc).__name__}: {exc}",
                ))

        if self.sharded:
            out.extend(self._sharded_checks(
                scenario, analysis, dict(lp_alloc.shares)
            ))
        return out

    # ------------------------------------------------------------------
    def _sharded_checks(
        self,
        scenario: Scenario,
        analysis: ContentionAnalysis,
        lp_shares: Dict[str, float],
    ) -> List[CheckOutcome]:
        """Differential checks of the component-sharded solve path.

        The monolithic phase-1 LP allocation (``lp_shares``, before any
        injected fault) is the bitwise reference: flows in different
        components share no clique, so the sharded solve is exact and
        every comparison here is plain ``==`` on floats, no tolerance.
        The two runtime checks replay a short arrival/departure
        timeline twice — ``sharded=True`` vs ``sharded=False`` — and
        compare the committed journals, in centralized mode and in
        distributed mode with 20% loss (where the shard seam must be
        inert).
        """
        from ..perf.shard import ShardedSolver

        out: List[CheckOutcome] = []
        with phase_timer("verify.sharded"):
            for name, jobs in (("sharded.vs_monolithic", 1),
                               ("sharded.parallel_jobs", 2)):
                try:
                    shares = ShardedSolver(
                        backend=self.backend, jobs=jobs
                    ).solve(analysis)
                    ok = shares == lp_shares
                    details = "" if ok else "; ".join(
                        f"{fid}: sharded {shares.get(fid)!r} != "
                        f"monolithic {lp_shares.get(fid)!r}"
                        for fid in sorted(set(shares) | set(lp_shares))
                        if shares.get(fid) != lp_shares.get(fid)
                    )[:400]
                except Exception as exc:
                    ok = False
                    details = f"{type(exc).__name__}: {exc}"
                out.append(CheckOutcome(name, PASS if ok else FAIL,
                                        details))
            out.append(self._sharded_runtime_check(
                "sharded.runtime_centralized", scenario,
                mode="centralized", loss=0.0,
            ))
            out.append(self._sharded_runtime_check(
                "sharded.runtime_distributed", scenario,
                mode="distributed", loss=0.2,
            ))
        return out

    def _sharded_runtime_check(
        self,
        name: str,
        scenario: Scenario,
        mode: str,
        loss: float,
    ) -> CheckOutcome:
        """One sharded-vs-monolithic runtime journal differential."""
        from ..resilience.runtime import AllocatorRuntime, RuntimeConfig

        def journal(sharded: bool):
            rt = AllocatorRuntime(scenario, RuntimeConfig(
                mode=mode, loss=loss, sharded=sharded,
            ))
            ids = [f.flow_id for f in scenario.flows]
            rt.set_active(ids)        # everything arrives
            rt.set_active(ids[1:])    # one departure dirties a component
            rt.set_active(ids)        # re-arrival: memo must still agree
            return [
                (r.epoch, r.status, tuple(r.active), r.shares)
                for r in rt.journal
            ]

        try:
            sharded_j, mono_j = journal(True), journal(False)
            ok = sharded_j == mono_j
            details = ("" if ok
                       else "sharded runtime journal != monolithic")
        except Exception as exc:
            ok = False
            details = f"{type(exc).__name__}: {exc}"
        return CheckOutcome(name, PASS if ok else FAIL, details)

    # ------------------------------------------------------------------
    def run_lp_checks(self, scenario: Scenario) -> List[CheckOutcome]:
        """Only the ``lp.*`` checks of :meth:`run` (same names/verdicts).

        The shrinker uses this as a fast path when the original failure
        is an LP check: re-proving an ``lp.*`` failure on a candidate
        scenario does not require re-running the exponential brute-force
        clique oracle or the 2PA-D differential, and skipping them keeps
        every shrink step cheap.  The checks it does run are produced by
        the same code as :meth:`run`, so a candidate fails here iff it
        fails there.
        """
        out: List[CheckOutcome] = []
        analysis = ContentionAnalysis(scenario)
        b = scenario.capacity
        with phase_timer("verify.allocations"):
            lp_alloc = basic_fairness_lp_allocation(
                analysis, backend=self.backend
            )
            lp_shares = dict(lp_alloc.shares)
            if self.fault is not None:
                lp_shares = self.fault(lp_shares, b)
            out.extend(self._allocation_checks(
                "lp", analysis, lp_shares, b,
                fairness=False, prop1=False, basic_fair=True,
            ))
        with phase_timer("verify.exact_lp"):
            out.extend(self._lp_oracle_checks(analysis, lp_shares, b))
        return out

    # ------------------------------------------------------------------
    def fault_outcomes(
        self,
        scenario: Scenario,
        plan,
        seed: int,
        index: int,
    ) -> List[CheckOutcome]:
        """Run ``scenario`` under ``plan`` and check the safety invariants.

        The lossy 2PA-D run (retry/backoff channel, degradation ladder)
        comes from :func:`repro.resilience.campaign.run_chaos_case`; its
        ``chaos.*`` checks are re-labelled ``faults.*`` here so the fuzz
        report separates them from the fault-free differential oracles.
        A fresh registry is built per call so the channel's fault streams
        are a pure function of ``(seed, index)`` — shrinking re-runs make
        byte-identical per-link decisions.
        """
        from ..resilience.campaign import run_chaos_case

        registry = RngRegistry(seed)
        with phase_timer("verify.faults"):
            case = run_chaos_case(
                scenario, plan, registry,
                prefix=("verify", index, "faults", "channel"),
            )
        return [
            CheckOutcome(
                name.replace("chaos.", "faults.", 1),
                PASS if ok else FAIL,
                details,
            )
            for name, ok, details in case.checks
        ]

    # ------------------------------------------------------------------
    def churn_outcomes(
        self,
        scenario: Scenario,
        timeline,
        seed: int,
        index: int,
    ) -> List[CheckOutcome]:
        """Run ``scenario`` through ``timeline`` on the long-lived runtime.

        Reuses :func:`repro.resilience.campaign.run_churn_case` — epoch
        pipeline, admission control, per-epoch invariant records, and
        the mid-timeline crash + restore differential.  All randomness
        is a pure function of ``(seed, index)`` via the runtime's stream
        prefix, so shrinking re-runs replay byte-identical epochs.
        """
        from ..resilience.campaign import run_churn_case

        with phase_timer("verify.churn"):
            case = run_churn_case(
                scenario, timeline,
                seed=seed,
                hysteresis=0.3,
                stream_prefix=("verify", index, "churn"),
                fault=self.fault,
            )
        return [
            CheckOutcome(name, PASS if ok else FAIL, details)
            for name, ok, details in case.checks
        ]

    # ------------------------------------------------------------------
    def overload_outcomes(
        self,
        scenario: Scenario,
        trace,
        plan,
        seed: int,
        index: int,
    ) -> List[CheckOutcome]:
        """Run ``scenario`` under open-loop overload with forced stalls.

        Reuses :func:`repro.resilience.campaign.run_overload_case` —
        deadline-bounded epochs, the graduated shedding ladder, bounded
        admission queue with age eviction — at ``jobs=1`` (worker faults
        in ``plan`` are inert in-process; its arrival bursts are live).
        Two early epochs run with an already-expired watchdog so the
        breach path and the ``overload.breach_recorded`` pairing
        invariant are exercised on *every* case, deterministically — no
        wall-clock dependence.
        """
        from ..resilience.campaign import run_overload_case

        with phase_timer("verify.overload"):
            case = run_overload_case(
                scenario, trace,
                seed=seed,
                plan=plan,
                hysteresis=0.3,
                max_queue_age=4,
                stall_epochs=2,
                fault=self.fault,
            )
        return [
            CheckOutcome(name, PASS if ok else FAIL, details)
            for name, ok, details in case.checks
        ]

    # ------------------------------------------------------------------
    def _allocation_checks(
        self,
        label: str,
        analysis: ContentionAnalysis,
        shares: Dict[str, float],
        capacity: float,
        fairness: bool,
        prop1: bool,
        basic_fair: bool,
    ) -> List[CheckOutcome]:
        out: List[CheckOutcome] = []
        res = check_clique_capacity(analysis, shares, capacity,
                                    tol=self.lp_tol)
        out.append(CheckOutcome(f"{label}.clique_capacity",
                                PASS if res.ok else FAIL, res.details))
        if basic_fair:
            res = check_basic_fairness(analysis, shares, capacity)
            out.append(CheckOutcome(f"{label}.basic_fairness",
                                    PASS if res.ok else FAIL, res.details))
        if fairness:
            res = check_fairness_constraint(analysis, shares)
            out.append(CheckOutcome(f"{label}.fairness_constraint",
                                    PASS if res.ok else FAIL, res.details))
        if prop1:
            res = check_prop1_bound(analysis, shares, capacity)
            out.append(CheckOutcome(f"{label}.prop1_bound",
                                    PASS if res.ok else FAIL, res.details))
        return out

    def _lp_oracle_checks(
        self,
        analysis: ContentionAnalysis,
        lp_shares: Dict[str, float],
        capacity: float,
    ) -> List[CheckOutcome]:
        out: List[CheckOutcome] = []
        diff_ok, total_ok = True, True
        details_diff, details_total = [], []
        for group in analysis.groups:
            lp = build_basic_fairness_lp(analysis, group, capacity)
            report = lp_objective_matches(lp, tol=self.lp_tol,
                                          with_scipy=self.with_scipy,
                                          backend=self.backend)
            if not report["ok"]:
                diff_ok = False
                details_diff.append(
                    f"group [{','.join(f.flow_id for f in group)}]: "
                    f"{report}"
                )
                continue
            exact_obj = report.get("exact_objective")
            if exact_obj is not None:
                total = sum(lp_shares.get(f.flow_id, 0.0) for f in group)
                if abs(total - exact_obj) > self.lp_tol:
                    total_ok = False
                    details_total.append(
                        f"group [{','.join(f.flow_id for f in group)}]: "
                        f"allocated total {total:.9g} != exact optimum "
                        f"{exact_obj:.9g}"
                    )
        out.append(CheckOutcome(
            "lp.float_vs_exact", PASS if diff_ok else FAIL,
            "; ".join(details_diff),
        ))
        out.append(CheckOutcome(
            "lp.allocation_total_optimal", PASS if total_ok else FAIL,
            "; ".join(details_total),
        ))
        return out


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------

def generate_scenario(registry: RngRegistry, index: int) -> Scenario:
    """Case ``index`` of the registry's master seed.

    All randomness flows through the ``("verify", index)`` stream, so
    adding cases never perturbs earlier ones and any case regenerates
    from ``(master_seed, index)`` alone.
    """
    stream = registry.stream(("verify", index))
    for _ in range(25):
        num_nodes = int(stream.integers(6, 13))
        num_flows = int(stream.integers(2, 5))
        topo_seed = int(stream.integers(0, 2**31 - 1))
        flow_seed = int(stream.integers(0, 2**31 - 1))
        weights = ([1.0], [1.0, 2.0], [1.0, 2.0, 3.0])[
            int(stream.integers(0, 3))
        ]
        max_hops = (None, 3, 4)[int(stream.integers(0, 3))]
        try:
            network = random_connected_network(num_nodes, seed=topo_seed)
            flows = random_flows(
                network, num_flows, seed=flow_seed,
                max_hops=max_hops, weights=list(weights),
            )
        except RuntimeError:
            continue  # unconnectable/unroutable draw; redraw from stream
        return Scenario(
            network, flows,
            name=f"verify-s{registry.master_seed}-c{index}",
            capacity=1.0,
        )
    raise RuntimeError(
        f"could not generate case {index} for seed {registry.master_seed}"
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _drop_flow(scenario: Scenario, flow_id: str) -> Optional[Scenario]:
    flows = [f for f in scenario.flows if f.flow_id != flow_id]
    if not flows:
        return None
    return Scenario(scenario.network, flows, name=scenario.name,
                    capacity=scenario.capacity)


def _drop_node(scenario: Scenario, node: str) -> Optional[Scenario]:
    net = scenario.network
    if any(node in f.path for f in scenario.flows):
        return None
    if net.explicit_links is not None:
        nodes = [n for n in net.positions if n != node]
        links = [tuple(l) for l in net.explicit_links if node not in l]
        shrunk = Network.from_links(nodes, links)
    else:
        positions = {n: p for n, p in net.positions.items() if n != node}
        shrunk = Network.from_positions(positions, net.tx_range)
    return Scenario(shrunk, list(scenario.flows), name=scenario.name,
                    capacity=scenario.capacity)


def shrink_scenario(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
) -> Scenario:
    """Greedy shrink: drop flows, then unused nodes, while still failing.

    ``still_fails`` must return True when the candidate scenario still
    exhibits the original failure; candidates that crash it are rejected
    so the reproducer stays faithful to the original symptom.
    """
    def fails(candidate: Scenario) -> bool:
        try:
            return still_fails(candidate)
        except Exception:
            return False

    current = scenario
    progress = True
    while progress:
        progress = False
        for flow in list(current.flows):
            candidate = _drop_flow(current, flow.flow_id)
            if candidate is not None and fails(candidate):
                current = candidate
                progress = True
                break
        if progress:
            continue
        used = {n for f in current.flows for n in f.path}
        for node in current.network.nodes:
            if node in used:
                continue
            candidate = _drop_node(current, node)
            if candidate is not None and fails(candidate):
                current = candidate
                progress = True
                break
    return current


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------

@dataclass
class FuzzFailure:
    """One failing case, with its shrunk reproducer."""

    case: int
    check: str
    details: str
    scenario: Dict[str, object]          # original (serialized)
    shrunk: Dict[str, object]            # minimal reproducer (serialized)
    reproducer_path: Optional[str] = None
    #: Serialized (shrunk) fault plan for ``faults.*`` failures (also
    #: carries the shrunk overload plan for ``overload.*`` failures).
    fault_plan: Optional[Dict[str, object]] = None
    #: Serialized (shrunk) churn timeline for ``churn.*`` failures.
    churn_timeline: Optional[Dict[str, object]] = None
    #: Serialized (shrunk) arrival trace for ``overload.*`` failures.
    arrival_trace: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "check": self.check,
            "details": self.details,
            "scenario": self.scenario,
            "shrunk": self.shrunk,
            "reproducer_path": self.reproducer_path,
            "fault_plan": self.fault_plan,
            "churn_timeline": self.churn_timeline,
            "arrival_trace": self.arrival_trace,
        }


@dataclass
class FuzzReport:
    """Aggregate of one fuzzing run, renderable and artifact-ready."""

    cases: int
    seed: int
    inject_fault: bool
    backend: str = "simplex"
    sharded: bool = False
    checks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Healthy run: no failures — unless a fault was injected, in
        which case the harness is healthy only if it *caught* something."""
        if self.inject_fault:
            return bool(self.failures)
        return not self.failures

    def tally(self, outcome: CheckOutcome) -> None:
        row = self.checks.setdefault(
            outcome.name, {PASS: 0, FAIL: 0, SKIP: 0}
        )
        row[outcome.status] += 1
        incr(f"verify.{outcome.name}.{outcome.status}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "inject_fault": self.inject_fault,
            "backend": self.backend,
            "sharded": self.sharded,
            "ok": self.ok,
            "checks": {k: dict(v) for k, v in sorted(self.checks.items())},
            "failures": [f.to_dict() for f in self.failures],
        }

    def render(self) -> str:
        lines = [
            f"repro verify: {self.cases} case(s), seed {self.seed}"
            + (f" [backend {self.backend}]"
               if self.backend != "simplex" else "")
            + (" [sharded]" if self.sharded else "")
            + (" [fault injected]" if self.inject_fault else ""),
            "",
            f"  {'check':<34} {'pass':>6} {'fail':>6} {'skip':>6}",
        ]
        for name in sorted(self.checks):
            row = self.checks[name]
            lines.append(
                f"  {name:<34} {row[PASS]:>6} {row[FAIL]:>6} {row[SKIP]:>6}"
            )
        lines.append("")
        if self.failures:
            lines.append(f"{len(self.failures)} failure(s):")
            for f in self.failures:
                where = f" -> {f.reproducer_path}" if f.reproducer_path \
                    else ""
                shrunk_flows = len(f.shrunk.get("flows", []))
                lines.append(
                    f"  case {f.case}: {f.check} "
                    f"(shrunk to {shrunk_flows} flow(s)){where}"
                )
                if f.details:
                    lines.append(f"    {f.details}")
        else:
            lines.append("all checks passed")
        return "\n".join(lines)


def _run_case(
    index: int,
    seed: int,
    suite: VerificationSuite,
) -> Tuple[List[CheckOutcome], Optional[FuzzFailure]]:
    """Generate, check, and (on failure) shrink case ``index`` of ``seed``.

    Self-contained and deterministic: all randomness comes from the
    ``("verify", index)`` stream of a fresh registry, so the result is a
    pure function of ``(seed, index, suite config)`` — which is what lets
    :func:`run_fuzz` fan cases across worker processes and still merge a
    bit-identical report.
    """
    registry = RngRegistry(seed)
    with phase_timer("verify.case"):
        scenario = generate_scenario(registry, index)
        outcomes = suite.run(scenario)
        plan = None
        if suite.faults:
            from ..resilience.faults import FaultPlan

            plan = FaultPlan.draw(
                registry.stream(("verify", index, "faults")),
                nodes=scenario.network.nodes,
            )
            outcomes = outcomes + suite.fault_outcomes(
                scenario, plan, seed, index
            )
        timeline = None
        if suite.churn:
            from ..resilience.epochs import ChurnTimeline

            timeline = ChurnTimeline.draw(
                registry.stream(("verify", index, "churn")),
                scenario.flow_ids,
                scenario.network.nodes,
                scenario.network.links(),
            )
            outcomes = outcomes + suite.churn_outcomes(
                scenario, timeline, seed, index
            )
        trace = None
        overload_plan = None
        if suite.overload:
            from ..resilience.faults import FaultPlan
            from ..traffic.openloop import (
                OpenLoopConfig, draw_arrival_trace,
            )

            trace = draw_arrival_trace(
                registry.stream(("verify", index, "overload")),
                list(scenario.flow_ids), 10,
                OpenLoopConfig(rate=3.0),
            )
            overload_plan = FaultPlan.draw(
                registry.stream(("verify", index, "overload-plan")),
                nodes=scenario.network.nodes,
                overload=True,
            )
            outcomes = outcomes + suite.overload_outcomes(
                scenario, trace, overload_plan, seed, index
            )
    incr("verify.cases")
    failed = [o for o in outcomes if o.failed]
    if not failed:
        return outcomes, None
    first = failed[0]
    faults_check = first.name.startswith("faults.")
    churn_check = first.name.startswith("churn.")
    overload_check = first.name.startswith("overload.")
    lp_check = first.name.startswith("lp.")

    def fails_with(candidate: Scenario, candidate_plan,
                   candidate_timeline, candidate_trace=None,
                   candidate_overload_plan=None) -> bool:
        if faults_check:
            outs = suite.fault_outcomes(
                candidate, candidate_plan, seed, index
            )
        elif churn_check:
            outs = suite.churn_outcomes(
                candidate, candidate_timeline, seed, index
            )
        elif overload_check:
            outs = suite.overload_outcomes(
                candidate,
                candidate_trace if candidate_trace is not None else trace,
                candidate_overload_plan
                if candidate_overload_plan is not None else overload_plan,
                seed, index,
            )
        elif lp_check:
            # LP-only failures shrink against the LP checks alone — no
            # brute-force clique enumeration per candidate.
            outs = suite.run_lp_checks(candidate)
        else:
            outs = suite.run(candidate)
        return any(o.name == first.name and o.failed for o in outs)

    def still_fails(candidate: Scenario) -> bool:
        return fails_with(candidate, plan, timeline)

    with phase_timer("verify.shrink"):
        minimal = shrink_scenario(scenario, still_fails)
        if faults_check and plan is not None:
            # Then shrink the fault plan itself (drop crash/flap events,
            # zero rates) while the same check keeps failing.
            progress = True
            while progress:
                progress = False
                for candidate_plan in plan.shrink_candidates():
                    try:
                        if fails_with(minimal, candidate_plan, timeline):
                            plan = candidate_plan
                            progress = True
                            break
                    except Exception:
                        continue
        if churn_check and timeline is not None:
            # Shrink the timeline (drop events, truncate the horizon)
            # while the same check keeps failing.  Events referencing
            # entities the shrunk scenario lost are skipped (and
            # counted) by the runtime, so every candidate is well
            # defined.
            progress = True
            while progress:
                progress = False
                for candidate_timeline in timeline.shrink_candidates():
                    try:
                        if fails_with(minimal, plan, candidate_timeline):
                            timeline = candidate_timeline
                            progress = True
                            break
                    except Exception:
                        continue
        if overload_check and trace is not None:
            # Shrink the arrival trace first (drop arrivals, truncate
            # the horizon), then the fault plan (drop bursts and worker
            # faults), while the same check keeps failing.
            progress = True
            while progress:
                progress = False
                for candidate_trace in trace.shrink_candidates():
                    try:
                        if fails_with(minimal, plan, timeline,
                                      candidate_trace=candidate_trace):
                            trace = candidate_trace
                            progress = True
                            break
                    except Exception:
                        continue
            if overload_plan is not None:
                progress = True
                while progress:
                    progress = False
                    for cand in overload_plan.shrink_candidates():
                        try:
                            if fails_with(
                                minimal, plan, timeline,
                                candidate_overload_plan=cand,
                            ):
                                overload_plan = cand
                                progress = True
                                break
                        except Exception:
                            continue
    if faults_check and plan is not None:
        plan_doc = plan.to_dict()
    elif overload_check and overload_plan is not None:
        plan_doc = overload_plan.to_dict()
    else:
        plan_doc = None
    failure = FuzzFailure(
        case=index,
        check=first.name,
        details=first.details,
        scenario=scenario_to_dict(scenario),
        shrunk=scenario_to_dict(minimal),
        fault_plan=plan_doc,
        churn_timeline=timeline.to_dict()
        if churn_check and timeline is not None else None,
        arrival_trace=trace.to_dict()
        if overload_check and trace is not None else None,
    )
    return outcomes, failure


def _run_case_task(payload: Tuple[int, int, VerificationSuite]):
    """Picklable single-argument adapter for :class:`ParallelSweep`."""
    index, seed, suite = payload
    return _run_case(index, seed, suite)


def run_fuzz(
    cases: int = 50,
    seed: int = 0,
    inject_fault: bool = False,
    reproducer_dir: Optional[str] = None,
    brute_force_max_vertices: int = FUZZ_BRUTE_FORCE_MAX_VERTICES,
    with_scipy: bool = False,
    max_failures: int = 5,
    jobs: int = 1,
    faults: bool = False,
    churn: bool = False,
    backend: str = "simplex",
    sharded: bool = False,
    overload: bool = False,
) -> FuzzReport:
    """Run ``cases`` seeded scenarios through the verification suite.

    On a failing check the scenario is shrunk to a minimal reproducer; if
    ``reproducer_dir`` is given, the reproducer (scenario + seed + check
    name) is written there as JSON.  After ``max_failures`` distinct
    failures the run stops early — a systemic bug does not need 200
    identical shrink sessions.

    ``jobs > 1`` fans the cases across worker processes
    (:class:`repro.perf.parallel.ParallelSweep`); results are merged in
    case order and the early-stop tally is applied at merge time, so the
    report is bit-identical to the serial run.  ``jobs=0`` uses all
    cores.  Reproducer files are always written from this process.

    ``faults=True`` additionally runs every case through lossy 2PA-D
    under a fault plan drawn from stream ``("verify", i, "faults")`` and
    asserts the resilience safety invariants (``faults.*`` checks); a
    failing case's fault plan is shrunk alongside the scenario and lands
    in the reproducer.

    ``churn=True`` additionally runs every case through the long-lived
    allocator runtime under a churn timeline drawn from stream
    ``("verify", i, "churn")`` and asserts the churn safety invariants
    (``churn.*`` checks, including the crash + restore differential); a
    failing case's timeline is shrunk alongside the scenario and lands
    in the reproducer under ``churn_timeline``.

    ``backend`` selects the float LP solver under test (``"simplex"``
    or ``"revised"``); reproducers record it so a failure found on one
    backend is replayed against the same backend.

    ``sharded=True`` additionally runs the component-sharded
    differential axis per case — :class:`~repro.perf.shard.ShardedSolver`
    at jobs=1 and jobs=2 against the monolithic LP allocation, and
    sharded-vs-monolithic runtime journals in centralized and
    distributed-lossy modes — asserting bitwise identity throughout
    (``sharded.*`` checks).

    ``overload=True`` additionally drives every case through the
    overload-protected runtime under an open-loop arrival trace from
    stream ``("verify", i, "overload")`` and a fault plan (arrival
    bursts, worker faults) from ``("verify", i, "overload-plan")``, with
    two forced deadline stalls per case so the breach machinery is
    always exercised (``overload.*`` checks, including the
    no-breach-without-staleness-record pairing).  On failure the arrival
    trace is shrunk first, then the plan; both land in the reproducer
    (``arrival_trace`` / ``fault_plan``).
    """
    fault = inject_share_fault if inject_fault else None
    suite = VerificationSuite(
        brute_force_max_vertices=brute_force_max_vertices,
        with_scipy=with_scipy,
        fault=fault,
        faults=faults,
        churn=churn,
        backend=backend,
        sharded=sharded,
        overload=overload,
    )
    report = FuzzReport(cases=cases, seed=seed, inject_fault=inject_fault,
                        backend=backend, sharded=sharded)

    if jobs == 1:
        results = (
            _run_case(index, seed, suite) for index in range(cases)
        )
    else:
        from ..perf.parallel import ParallelSweep

        results = iter(ParallelSweep(jobs).map(
            _run_case_task, [(i, seed, suite) for i in range(cases)]
        ))

    for outcomes, failure in results:
        for outcome in outcomes:
            report.tally(outcome)
        if failure is None:
            continue
        if reproducer_dir is not None:
            failure.reproducer_path = _write_reproducer(
                reproducer_dir, seed, failure.case, failure.check, failure,
                backend=backend,
            )
        report.failures.append(failure)
        incr("verify.failures")
        if len(report.failures) >= max_failures:
            break
    return report


def _write_reproducer(
    directory: str, seed: int, case: int, check: str,
    failure: FuzzFailure, backend: str = "simplex",
) -> str:
    """Serialize a shrunk failure for humans, CI artifacts, and replay."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    safe_check = check.replace("/", "_").replace(" ", "_")
    path = out_dir / f"verify-reproducer-s{seed}-c{case}-{safe_check}.json"
    doc = {
        "kind": "repro.verify/reproducer",
        "seed": seed,
        "case": case,
        "check": check,
        "backend": backend,
        "details": failure.details,
        "scenario": failure.shrunk,
        "original_scenario": failure.scenario,
    }
    if failure.fault_plan is not None:
        doc["fault_plan"] = failure.fault_plan
    if failure.churn_timeline is not None:
        doc["churn_timeline"] = failure.churn_timeline
    if failure.arrival_trace is not None:
        doc["arrival_trace"] = failure.arrival_trace
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return str(path)
