"""Paper-invariant checkers (Secs. II–III).

Each checker takes a scenario's :class:`~repro.core.contention.ContentionAnalysis`
plus an allocation (flow-id -> share) and asserts one property the paper
proves or assumes:

==========================  ============================================
checker                     paper source
==========================  ============================================
``clique_capacity``         Eq. (6): ``Σ_i n_{i,k} r̂_i <= B`` per
                            maximal clique ``Ω_k``
``basic_fairness``          Sec. II-D: every flow gets at least its
                            basic share ``w_i B / Σ_j w_j v_j``
``fairness_constraint``     Sec. II-C: ``|r̂_i/w_i − r̂_j/w_j| < ε``
                            within each contending flow group
``prop1_bound``             Prop. 1: group throughput ``<= (Σ w_i) B/ω_Ω``
                            under the fairness constraint
``virtual_length``          Sec. II-D: ``v_i = min(l_i, 3)``, and for
                            shortcut-free flows no clique holds more than
                            ``v_i`` subflows of flow ``i``
==========================  ============================================

Checkers return a :class:`CheckResult` rather than raising, so the fuzzer
can aggregate, count, and shrink on them; ``assert_all`` converts to a
hard failure for use inside tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.contention import ContentionAnalysis
from ..core.fairness_defs import basic_shares
from ..core.model import Scenario

__all__ = [
    "CheckResult",
    "assert_all",
    "check_clique_capacity",
    "check_basic_fairness",
    "check_fairness_constraint",
    "check_prop1_bound",
    "check_virtual_length_consistency",
]

DEFAULT_TOL = 1e-9


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    details: str = ""
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def assert_all(results: Sequence[CheckResult]) -> None:
    """Raise ``AssertionError`` listing every failed check."""
    failed = [r for r in results if not r.ok]
    if failed:
        lines = [f"{r.name}: {r.details or 'failed'}" for r in failed]
        for r in failed:
            lines.extend(f"  - {v}" for v in r.violations)
        raise AssertionError(
            f"{len(failed)} invariant(s) violated:\n" + "\n".join(lines)
        )


def check_clique_capacity(
    analysis: ContentionAnalysis,
    shares: Mapping[str, float],
    capacity: Optional[float] = None,
    tol: float = DEFAULT_TOL,
) -> CheckResult:
    """Eq. (6): every maximal clique's load fits within B."""
    b = capacity if capacity is not None else analysis.scenario.capacity
    violations: List[str] = []
    for k, clique in enumerate(analysis.cliques):
        coeffs = analysis.clique_coefficients(clique)
        load = sum(n * shares.get(fid, 0.0) for fid, n in coeffs.items())
        if load > b + tol:
            members = "+".join(sorted(str(s) for s in clique))
            violations.append(
                f"clique {k} ({members}): load {load:.9g} > B={b:g}"
            )
    return CheckResult(
        "clique_capacity",
        not violations,
        f"{len(violations)}/{len(analysis.cliques)} cliques overloaded"
        if violations else "",
        violations,
    )


def check_basic_fairness(
    analysis: ContentionAnalysis,
    shares: Mapping[str, float],
    capacity: Optional[float] = None,
    tol: float = 1e-7,
) -> CheckResult:
    """Sec. II-D: every flow receives at least its basic share."""
    b = capacity if capacity is not None else analysis.scenario.capacity
    violations: List[str] = []
    for group in analysis.groups:
        basic = basic_shares(group, b)
        for flow in group:
            got = shares.get(flow.flow_id, 0.0)
            if got < basic[flow.flow_id] - tol:
                violations.append(
                    f"flow {flow.flow_id}: {got:.9g} < basic "
                    f"{basic[flow.flow_id]:.9g}"
                )
    return CheckResult(
        "basic_fairness",
        not violations,
        f"{len(violations)} flow(s) below basic share"
        if violations else "",
        violations,
    )


def check_fairness_constraint(
    analysis: ContentionAnalysis,
    shares: Mapping[str, float],
    epsilon: float = 1e-7,
) -> CheckResult:
    """Sec. II-C: shares proportional to weights within each group."""
    violations: List[str] = []
    for group in analysis.groups:
        normalized = {
            f.flow_id: shares.get(f.flow_id, 0.0) / f.weight for f in group
        }
        spread = max(normalized.values()) - min(normalized.values())
        if spread > epsilon:
            violations.append(
                f"group [{','.join(f.flow_id for f in group)}]: "
                f"max |r̂_i/w_i − r̂_j/w_j| = {spread:.9g} > ε={epsilon:g}"
            )
    return CheckResult(
        "fairness_constraint",
        not violations,
        f"{len(violations)} group(s) not weight-proportional"
        if violations else "",
        violations,
    )


def check_prop1_bound(
    analysis: ContentionAnalysis,
    shares: Mapping[str, float],
    capacity: Optional[float] = None,
    tol: float = 1e-7,
) -> CheckResult:
    """Prop. 1: per-group throughput at most ``(Σ w_i) B / ω_Ω(group)``.

    Only meaningful for allocations satisfying the fairness constraint
    (the proposition's hypothesis); the callers gate accordingly.
    """
    from ..graphs import weighted_clique_number

    b = capacity if capacity is not None else analysis.scenario.capacity
    violations: List[str] = []
    for group in analysis.groups:
        group_ids = {f.flow_id for f in group}
        group_graph = analysis.graph.subgraph(
            [v for v in analysis.graph if v.flow in group_ids]
        )
        weights = {
            v: float(group_graph.attr(v, "weight", 1.0)) for v in group_graph
        }
        omega = weighted_clique_number(group_graph, weights)
        if omega <= 0:
            continue
        bound = sum(f.weight for f in group) * b / omega
        total = sum(shares.get(f.flow_id, 0.0) for f in group)
        if total > bound + tol:
            violations.append(
                f"group [{','.join(f.flow_id for f in group)}]: total "
                f"{total:.9g} > (Σw)B/ω_Ω = {bound:.9g}"
            )
    return CheckResult(
        "prop1_bound",
        not violations,
        f"{len(violations)} group(s) above the Prop. 1 bound"
        if violations else "",
        violations,
    )


def check_virtual_length_consistency(
    scenario: Scenario,
    analysis: Optional[ContentionAnalysis] = None,
) -> CheckResult:
    """Sec. II-D: ``v_i = min(l_i, 3)`` and its clique-level consequence.

    For shortcut-free flows, no maximal clique of the contention graph may
    contain more than ``v_i`` subflows of flow ``i`` (at most three
    consecutive hops of a shortcut-free path are mutually within range —
    the fact that justifies the virtual-length definition).  Flows *with*
    shortcuts are exempt from the clique-level clause.
    """
    violations: List[str] = []
    for flow in scenario.flows:
        expected = min(flow.length, 3)
        if flow.virtual_length != expected:
            violations.append(
                f"flow {flow.flow_id}: v={flow.virtual_length} != "
                f"min({flow.length}, 3)"
            )
    if analysis is not None:
        shortcut_free = {
            f.flow_id for f in scenario.flows
            if not scenario.network.has_shortcut(f)
        }
        for k, coeffs in enumerate(analysis.all_coefficients()):
            for fid, n in coeffs.items():
                if fid in shortcut_free:
                    v = scenario.flow(fid).virtual_length
                    if n > v:
                        violations.append(
                            f"clique {k}: {n} subflows of shortcut-free "
                            f"flow {fid} > v={v}"
                        )
    return CheckResult(
        "virtual_length",
        not violations,
        f"{len(violations)} virtual-length violation(s)"
        if violations else "",
        violations,
    )
