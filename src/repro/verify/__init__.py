"""``repro.verify``: differential oracles, invariant checkers, fuzzing.

The reproduction's correctness claims rest on three from-scratch
algorithms — Bron–Kerbosch clique enumeration, a two-phase float simplex,
and the 2PA-D gossip protocol.  This package validates all three on
*arbitrary* inputs:

* :mod:`~repro.verify.exact_lp` — an exact-arithmetic
  (``fractions.Fraction``) reference simplex, the ground truth for LPs;
* :mod:`~repro.verify.oracles` — differential oracles (brute-force
  cliques vs Bron–Kerbosch, float vs exact LP, 2PA-D vs 2PA-C);
* :mod:`~repro.verify.invariants` — checkers for the paper's Sec. II–III
  properties (clique capacity, basic fairness, the fairness constraint,
  the Prop. 1 bound, virtual-length consistency);
* :mod:`~repro.verify.fuzzer` — a seeded scenario fuzzer that runs every
  oracle and invariant on random topologies and shrinks failures to
  minimal serialized reproducers.

CLI: ``repro-experiments verify --cases 200 --seed 0 --json``.
"""

from .exact_lp import ExactSolution, exact_objective, solve_exact
from .invariants import (
    CheckResult,
    assert_all,
    check_basic_fairness,
    check_clique_capacity,
    check_fairness_constraint,
    check_prop1_bound,
    check_virtual_length_consistency,
)
from .oracles import (
    BruteForceLimit,
    brute_force_maximal_cliques,
    check_2pad_against_centralized,
    cliques_agree,
    lp_objective_matches,
)
from .fuzzer import (
    CheckOutcome,
    FuzzFailure,
    FuzzReport,
    VerificationSuite,
    generate_scenario,
    inject_share_fault,
    run_fuzz,
    shrink_scenario,
)

__all__ = [
    "ExactSolution",
    "solve_exact",
    "exact_objective",
    "CheckResult",
    "assert_all",
    "check_clique_capacity",
    "check_basic_fairness",
    "check_fairness_constraint",
    "check_prop1_bound",
    "check_virtual_length_consistency",
    "BruteForceLimit",
    "brute_force_maximal_cliques",
    "cliques_agree",
    "lp_objective_matches",
    "check_2pad_against_centralized",
    "CheckOutcome",
    "FuzzFailure",
    "FuzzReport",
    "VerificationSuite",
    "generate_scenario",
    "inject_share_fault",
    "run_fuzz",
    "shrink_scenario",
]
