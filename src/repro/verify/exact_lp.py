"""Exact-arithmetic reference LP solver (``fractions.Fraction``).

The production solver (:mod:`repro.lp.simplex`) runs on floats with
epsilon-guarded sign tests; this module re-implements the same two-phase
primal simplex over exact rationals so it can serve as a *differential
oracle*: every coefficient of a :class:`~repro.lp.problem.LinearProgram`
is a float and therefore converts to a ``Fraction`` without rounding, so
the optimum computed here is the mathematically exact optimum of the LP
the float solver was given.  Agreement (status equal, objectives within a
small tolerance) certifies the float solver on that instance; disagreement
is a genuine bug in one of the two.

Bland's rule (smallest eligible index enters, smallest basis index leaves
on ratio ties) guarantees termination without any cycling heuristics —
there are no epsilons anywhere in this file's pivoting logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..lp.problem import LinearProgram, LPSolution

__all__ = ["ExactSolution", "solve_exact", "exact_objective"]

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass(frozen=True)
class ExactSolution:
    """Result of an exact solve: rational values, rational objective."""

    status: str                        # "optimal" | "infeasible" | "unbounded"
    values: Dict[str, Fraction]
    objective: Optional[Fraction]      # None unless optimal

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def to_lp_solution(self) -> LPSolution:
        """Float view, shaped like the production solver's output."""
        if not self.is_optimal:
            obj = float("nan") if self.status == "infeasible" else float("inf")
            return LPSolution(self.status, {}, obj)
        return LPSolution(
            "optimal",
            {v: float(x) for v, x in self.values.items()},
            float(self.objective),
        )


def exact_objective(lp: LinearProgram) -> Optional[Fraction]:
    """The exact optimal objective of ``lp``, or None if not optimal."""
    return solve_exact(lp).objective


def solve_exact(lp: LinearProgram) -> ExactSolution:
    """Solve ``lp`` (max c'x, Ax <= b, x >= lb) in exact arithmetic."""
    names = lp.variables
    if not names:
        return ExactSolution("optimal", {}, _ZERO)
    index = {v: j for j, v in enumerate(names)}
    n = len(names)

    c = [_ZERO] * n
    for v, coeff in lp.objective.items():
        c[index[v]] = Fraction(coeff)
    lb = [Fraction(lp.lower_bounds.get(v, 0.0)) for v in names]

    rows: List[List[Fraction]] = []
    rhs: List[Fraction] = []
    for con in lp.constraints:
        row = [_ZERO] * n
        for v, coeff in con.coeffs.items():
            row[index[v]] = Fraction(coeff)
        rows.append(row)
        # Shift out the lower bounds (y = x - lb, y >= 0), exactly.
        rhs.append(Fraction(con.bound) - sum(
            row[j] * lb[j] for j in range(n) if row[j]
        ))

    status, y, objective = _simplex_leq(c, rows, rhs)
    if status != "optimal":
        return ExactSolution(status, {}, None)
    values = {v: y[j] + lb[j] for j, v in enumerate(names)}
    total = sum(
        Fraction(coeff) * values[v] for v, coeff in lp.objective.items()
    )
    return ExactSolution("optimal", values, Fraction(total))


def _simplex_leq(
    c: List[Fraction], a: List[List[Fraction]], b: List[Fraction]
) -> Tuple[str, Optional[List[Fraction]], Optional[Fraction]]:
    """Maximize ``c'y`` s.t. ``A y <= b``, ``y >= 0`` (b may be negative)."""
    m, n = len(a), len(c)
    if m == 0:
        if any(cj > 0 for cj in c):
            return "unbounded", None, None
        return "optimal", [_ZERO] * n, _ZERO

    # Negate rows with negative rhs into >= rows; those get a surplus and
    # an artificial variable, plain <= rows get a slack.
    a = [list(row) for row in a]
    b = list(b)
    ge = [bi < 0 for bi in b]
    for i in range(m):
        if ge[i]:
            a[i] = [-x for x in a[i]]
            b[i] = -b[i]

    num_slack = sum(1 for g in ge if not g)
    num_art = sum(1 for g in ge if g)
    total = n + num_slack + num_art * 2  # surplus + artificial per >= row

    tableau = [row + [_ZERO] * (total - n) for row in a]
    basis = [0] * m
    slack_j, surplus_j, art_j = n, n + num_slack, n + num_slack + num_art
    art_start = n + num_slack + num_art
    for i in range(m):
        if ge[i]:
            tableau[i][surplus_j] = -_ONE
            tableau[i][art_j] = _ONE
            basis[i] = art_j
            surplus_j += 1
            art_j += 1
        else:
            tableau[i][slack_j] = _ONE
            basis[i] = slack_j
            slack_j += 1

    if num_art:
        obj1 = [_ZERO] * total
        for j in range(art_start, total):
            obj1[j] = -_ONE
        status = _run_simplex(tableau, b, obj1, basis, total)
        if status == "unbounded":  # pragma: no cover - phase 1 is bounded
            return "infeasible", None, None
        infeasibility = sum(
            b[i] for i in range(m) if basis[i] >= art_start
        )
        if infeasibility > 0:
            return "infeasible", None, None
        _drive_out_artificials(tableau, b, basis, art_start)

    obj2 = [_ZERO] * total
    for j in range(n):
        obj2[j] = c[j]
    status = _run_simplex(tableau, b, obj2, basis, art_start)
    if status == "unbounded":
        return "unbounded", None, None

    y = [_ZERO] * total
    for i in range(m):
        y[basis[i]] = b[i]
    objective = sum(c[j] * y[j] for j in range(n))
    return "optimal", y[:n], Fraction(objective)


def _run_simplex(
    tableau: List[List[Fraction]],
    rhs: List[Fraction],
    obj: List[Fraction],
    basis: List[int],
    limit: int,
) -> str:
    """Pivot in place under Bland's rule; columns >= ``limit`` never enter."""
    m = len(tableau)
    while True:
        entering = -1
        in_basis = set(basis)
        for j in range(limit):
            if j in in_basis:
                continue
            reduced = obj[j] - sum(
                obj[basis[i]] * tableau[i][j] for i in range(m)
                if tableau[i][j]
            )
            if reduced > 0:
                entering = j
                break
        if entering < 0:
            return "optimal"

        leaving = -1
        best_ratio: Optional[Fraction] = None
        for i in range(m):
            coeff = tableau[i][entering]
            if coeff > 0:
                ratio = rhs[i] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded"

        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering


def _pivot(
    tableau: List[List[Fraction]],
    rhs: List[Fraction],
    row: int,
    col: int,
) -> None:
    piv = tableau[row][col]
    tableau[row] = [x / piv for x in tableau[row]]
    rhs[row] /= piv
    pivot_row = tableau[row]
    for i in range(len(tableau)):
        if i == row:
            continue
        factor = tableau[i][col]
        if factor:
            tableau[i] = [
                x - factor * y for x, y in zip(tableau[i], pivot_row)
            ]
            rhs[i] -= factor * rhs[row]


def _drive_out_artificials(
    tableau: List[List[Fraction]],
    rhs: List[Fraction],
    basis: List[int],
    art_start: int,
) -> None:
    """Pivot zero-valued basic artificials out on any nonzero real column."""
    for i in range(len(tableau)):
        if basis[i] >= art_start:
            for j in range(art_start):
                if tableau[i][j] != 0:
                    _pivot(tableau, rhs, i, j)
                    basis[i] = j
                    break
