"""Differential oracles: independent implementations to check the stack.

Three oracles, one per from-scratch algorithm the reproduction's claims
rest on:

* **Cliques** — :func:`brute_force_maximal_cliques` enumerates every
  clique by canonical extension and keeps the maximal ones; agreement with
  the Bron–Kerbosch implementation (including the deterministic ordering)
  certifies :func:`repro.graphs.maximal_cliques` on that graph.
* **LP** — :func:`lp_objective_matches` compares the float simplex against
  the exact ``Fraction`` reference solver of :mod:`repro.verify.exact_lp`
  (and ``scipy.optimize.linprog`` when importable).
* **2PA-D vs 2PA-C** — :func:`check_2pad_against_centralized` recomputes
  the gossip fixpoint independently, checks that every flow's source ends
  up holding *every* global clique constraint involving its flow, and —
  whenever each source's local view covers its whole contending group —
  demands bit-for-bit (1e-6) agreement with the centralized solution.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..core.contention import ContentionAnalysis
from ..core.distributed import DistributedAllocator
from ..graphs import Graph, maximal_cliques
from ..graphs.cliques import clique_vertex_order, sort_cliques
from ..graphs.graph import Vertex
from ..lp.problem import LinearProgram
from ..lp.solvers import solve
from .exact_lp import solve_exact

__all__ = [
    "BruteForceLimit",
    "brute_force_maximal_cliques",
    "cliques_agree",
    "lp_objective_matches",
    "check_2pad_against_centralized",
]

#: Vertex count beyond which the exhaustive clique enumeration is skipped
#: (a complete graph on n vertices has 2^n cliques to walk).
DEFAULT_BRUTE_FORCE_MAX_VERTICES = 14


class BruteForceLimit(Exception):
    """Raised when a graph is too large for exhaustive enumeration."""


def brute_force_maximal_cliques(
    graph: Graph,
    max_vertices: int = DEFAULT_BRUTE_FORCE_MAX_VERTICES,
) -> List[FrozenSet[Vertex]]:
    """All maximal cliques by exhaustive canonical-order enumeration.

    Grows every clique along a fixed vertex order (each extension only adds
    later vertices adjacent to all current members), then filters to
    maximal ones via a common-neighborhood test.  Exponential and proudly
    so — it shares no code or algorithmic idea with Bron–Kerbosch, which is
    what makes it an oracle.  Output ordering matches
    :func:`repro.graphs.maximal_cliques` so results compare with ``==``.
    """
    n = graph.num_vertices()
    if n > max_vertices:
        raise BruteForceLimit(
            f"{n} vertices > brute-force cap {max_vertices}"
        )
    if n == 0:
        return []
    order = clique_vertex_order(graph)
    rank = {v: i for i, v in enumerate(order)}
    adj = {v: graph.neighbors(v) for v in order}

    found: List[FrozenSet[Vertex]] = []

    def extend(members: List[Vertex], candidates: List[Vertex]) -> None:
        if members and _is_maximal(graph, adj, members):
            found.append(frozenset(members))
        for idx, v in enumerate(candidates):
            extend(
                members + [v],
                [u for u in candidates[idx + 1:] if u in adj[v]],
            )

    extend([], order)
    # Isolated-vertex graphs: singletons are handled by the loop above.
    return sort_cliques(found, rank)


def _is_maximal(graph: Graph, adj, members: Sequence[Vertex]) -> bool:
    common: Optional[Set[Vertex]] = None
    for v in members:
        common = adj[v] if common is None else (common & adj[v])
    return not (common - set(members))


def cliques_agree(
    graph: Graph,
    max_vertices: int = DEFAULT_BRUTE_FORCE_MAX_VERTICES,
) -> bool:
    """Bron–Kerbosch and the brute force agree exactly (order included)."""
    return maximal_cliques(graph) == brute_force_maximal_cliques(
        graph, max_vertices
    )


# ----------------------------------------------------------------------
# LP oracle
# ----------------------------------------------------------------------

def scipy_available() -> bool:
    try:
        import scipy.optimize  # noqa: F401
        return True
    except Exception:  # pragma: no cover - scipy is baked into the image
        return False


def _relaxed(lp: LinearProgram, delta: float) -> LinearProgram:
    """A copy of ``lp`` with every bound slackened by ``delta``.

    Floating-point problem *data* (e.g. basic shares like ``B/7``) can be
    exactly infeasible by one ulp — ``7 * float(B/7) > B`` in exact
    rationals — even though the real-number LP it encodes is feasible.
    The relaxed copy decides whether an exact "infeasible" verdict is a
    genuine disagreement or this borderline artifact.
    """
    out = LinearProgram()
    for name in lp.variables:
        out.add_variable(name, lp.objective.get(name, 0.0))
    for con in lp.constraints:
        out.add_constraint(dict(con.coeffs), con.bound + delta, con.label)
    for name, bound in lp.lower_bounds.items():
        # set_lower_bound clamps at the existing value, so write directly.
        out.lower_bounds[name] = bound - delta
    return out


def lp_objective_matches(
    lp: LinearProgram,
    tol: float = 1e-6,
    with_scipy: bool = False,
    borderline_delta: float = 1e-9,
    backend: str = "simplex",
) -> Dict[str, object]:
    """Differential solve of ``lp``: float solver vs exact reference.

    ``backend`` selects the float solver under test (``"simplex"`` or
    ``"revised"``); the report's ``backend`` key records the choice and
    the ``simplex_status`` / ``simplex_objective`` keys (named for the
    historical default) carry whichever float backend ran.

    Returns a report dict with ``ok`` plus the per-backend statuses and
    objectives.  Agreement means equal statuses and, for optimal LPs,
    objectives within ``tol``; the float solver's point must additionally
    be feasible for the LP (within ``tol``) — an "optimal" vertex that
    violates a constraint is a solver bug even if its objective looks
    right.

    One asymmetry is deliberate: when the exact solver reports infeasible
    but the float solver reports optimal, the LP is re-solved exactly with
    all bounds slackened by ``borderline_delta``.  If that relaxation is
    feasible and its exact optimum matches the float objective, the
    original verdict was a one-ulp data artifact (see :func:`_relaxed`)
    and the backends are deemed to agree (flagged ``borderline``).
    """
    float_sol = solve(lp, backend)
    exact_sol = solve_exact(lp)
    report: Dict[str, object] = {
        "ok": True,
        "backend": backend,
        "simplex_status": float_sol.status,
        "exact_status": exact_sol.status,
    }
    if float_sol.status == "optimal" and exact_sol.status == "infeasible":
        relaxed_sol = solve_exact(_relaxed(lp, borderline_delta))
        if relaxed_sol.is_optimal:
            report["borderline"] = True
            exact_sol = relaxed_sol
        else:
            report["ok"] = False
            return report
    elif float_sol.status != exact_sol.status:
        report["ok"] = False
        return report
    if not exact_sol.is_optimal:
        return report
    exact_obj = float(exact_sol.objective)
    report["simplex_objective"] = float_sol.objective
    report["exact_objective"] = exact_obj
    if abs(float_sol.objective - exact_obj) > tol:
        report["ok"] = False
    if not lp.is_feasible(float_sol.values, tol=tol):
        report["ok"] = False
        report["simplex_point_infeasible"] = True
    if with_scipy and scipy_available():
        scipy_sol = solve(lp, "scipy")
        report["scipy_status"] = scipy_sol.status
        if scipy_sol.status != exact_sol.status:
            report["ok"] = False
        elif scipy_sol.is_optimal:
            report["scipy_objective"] = scipy_sol.objective
            if abs(scipy_sol.objective - exact_obj) > tol:
                report["ok"] = False
    return report


# ----------------------------------------------------------------------
# 2PA-C vs 2PA-D oracle
# ----------------------------------------------------------------------

def _flow_cliques(
    cliques: Sequence[FrozenSet], flow_id: str
) -> Set[FrozenSet]:
    return {c for c in cliques if any(sid.flow == flow_id for sid in c)}


def check_2pad_against_centralized(
    scenario,
    centralized_shares: Dict[str, float],
    allocator: Optional[DistributedAllocator] = None,
    analysis: Optional[ContentionAnalysis] = None,
    tol: float = 1e-6,
) -> Dict[str, object]:
    """Differential check of the distributed protocol (Sec. IV-B).

    Three layers, strongest applicable wins:

    1. *Gossip fixpoint*: the synchronous per-flow gossip must land on the
       one-shot union of path-local flow-relevant cliques, recomputed here
       from the views alone (no propagation code involved).
    2. *Constraint completeness*: every maximal clique of the **global**
       contention graph that contains a subflow of flow ``i`` must be held
       at ``i``'s source after propagation — the property that makes the
       local LPs sound.
    3. *Conditional equivalence*: for each contending flow group whose
       members' sources all see the whole group (known flows == group
       flows and held cliques cover all the group's global cliques), the
       2PA-D shares must equal 2PA-C's within ``tol`` — the Fig. 1
       "no optimality gap" case, which random dense topologies hit often.

    Returns a dict with ``ok``, per-layer booleans, and diagnostics.
    """
    if allocator is None:
        allocator = DistributedAllocator(scenario)
    if not allocator._shares:
        allocator.run()
    if analysis is None:
        analysis = allocator.analysis

    report: Dict[str, object] = {
        "ok": True,
        "gossip_fixpoint": True,
        "constraint_completeness": True,
        "conditional_equivalence": True,
        "fully_informed_groups": 0,
        "groups": len(analysis.groups),
        "mismatches": [],
    }

    # Layer 1: gossip fixpoint == one-shot union over path nodes.
    for flow in scenario.flows:
        union: Set[FrozenSet] = set()
        for node in flow.path:
            union |= _flow_cliques(
                allocator.views[node].local_cliques, flow.flow_id
            )
        for node in flow.path:
            view = allocator.views[node]
            held = _flow_cliques(
                list(view.local_cliques) + list(view.received_cliques),
                flow.flow_id,
            )
            if not union <= held:
                report["gossip_fixpoint"] = False
                report["mismatches"].append(
                    f"flow {flow.flow_id}: node {node} missing "
                    f"{len(union - held)} gossiped clique(s)"
                )

    # Layer 2: source holds every global clique involving its flow.
    for flow in scenario.flows:
        global_cliques = _flow_cliques(analysis.cliques, flow.flow_id)
        held = set(allocator.views[flow.source].all_cliques())
        missing = global_cliques - held
        if missing:
            report["constraint_completeness"] = False
            report["mismatches"].append(
                f"flow {flow.flow_id}: source {flow.source} missing "
                f"{len(missing)} global clique constraint(s)"
            )

    # Layer 3: full-view groups must match the centralized solution.
    dist_shares = {
        f.flow_id: allocator._shares.get(f.flow_id) for f in scenario.flows
    }
    for group in analysis.groups:
        group_ids = {f.flow_id for f in group}
        group_cliques = {
            c for c in analysis.cliques
            if any(sid.flow in group_ids for sid in c)
        }
        fully_informed = True
        for flow in group:
            view = allocator.views[flow.source]
            if view.known_flows() != group_ids:
                fully_informed = False
                break
            if not group_cliques <= set(view.all_cliques()):
                fully_informed = False
                break
        if not fully_informed:
            continue
        report["fully_informed_groups"] += 1
        for flow in group:
            got = dist_shares[flow.flow_id]
            want = centralized_shares[flow.flow_id]
            if got is None or abs(got - want) > tol:
                report["conditional_equivalence"] = False
                report["mismatches"].append(
                    f"flow {flow.flow_id}: 2PA-D {got} != 2PA-C {want} "
                    f"in a fully-informed group"
                )

    report["ok"] = (
        report["gossip_fixpoint"]
        and report["constraint_completeness"]
        and report["conditional_equivalence"]
    )
    return report
