"""``python -m repro`` forwards to the CLI."""

import sys

from .cli import main

sys.exit(main())
