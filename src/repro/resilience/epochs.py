"""Churn timelines: seeded, serializable epoch-by-epoch topology change.

A :class:`ChurnTimeline` is the long-lived analogue of a
:class:`~repro.resilience.faults.FaultPlan`: a *declarative, serializable*
schedule of everything that changes between allocation epochs —

* **flow churn** — flows arrive (``flow-up``) and depart (``flow-down``);
* **node churn** — nodes crash (``node-down``) and rejoin (``node-up``);
  a down node takes every incident link with it, breaking the paths that
  cross it;
* **link churn** — mobility moves a pair of nodes out of (``link-down``)
  or back into (``link-up``) transmission range.  An administratively
  down link carries no traffic *and* causes no interference, consistent
  with :meth:`repro.core.model.Network.in_range` treating link presence
  and radio range as the same predicate.

Timelines follow the fault-plan discipline exactly: :meth:`draw` consumes
its stream in a *fixed order* (independent of earlier outcomes), so a
timeline is a pure function of the stream state and regenerates from
``(master seed, stream name)`` alone; :meth:`to_dict` /
:meth:`from_dict` round-trip through plain dicts so the fuzzer can put a
``churn_timeline`` next to the scenario in a JSON reproducer; and
:meth:`shrink_candidates` yields one-step-simpler timelines for greedy
failure shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ChurnEvent", "ChurnTimeline", "EVENT_KINDS"]

#: Every legal event kind, in the canonical *application* order used by
#: the runtime within one epoch: capacity is restored before it is
#: removed, and membership changes are applied last so admission sees
#: the epoch's final topology.
EVENT_KINDS = (
    "node-up",
    "link-up",
    "node-down",
    "link-down",
    "flow-down",
    "flow-up",
)

_KIND_RANK = {kind: i for i, kind in enumerate(EVENT_KINDS)}


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class ChurnEvent:
    """One topology or membership change taking effect at ``epoch``."""

    epoch: int
    kind: str
    flow: Optional[str] = None
    node: Optional[str] = None
    link: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.epoch < 0:
            raise ValueError(f"event epoch must be >= 0, got {self.epoch}")
        if self.kind.startswith("flow") and self.flow is None:
            raise ValueError(f"{self.kind} event needs a flow id")
        if self.kind.startswith("node") and self.node is None:
            raise ValueError(f"{self.kind} event needs a node id")
        if self.kind.startswith("link"):
            if self.link is None:
                raise ValueError(f"{self.kind} event needs a link")
            object.__setattr__(self, "link", _link_key(*self.link))

    def sort_key(self) -> Tuple:
        """Canonical within-epoch order: kind rank, then subject id."""
        subject = self.flow or self.node or "/".join(self.link or ())
        return (self.epoch, _KIND_RANK[self.kind], subject)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"epoch": self.epoch, "kind": self.kind}
        if self.flow is not None:
            out["flow"] = self.flow
        if self.node is not None:
            out["node"] = self.node
        if self.link is not None:
            out["link"] = list(self.link)
        return out

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ChurnEvent":
        link = doc.get("link")
        return cls(
            epoch=int(doc["epoch"]),
            kind=str(doc["kind"]),
            flow=None if doc.get("flow") is None else str(doc["flow"]),
            node=None if doc.get("node") is None else str(doc["node"]),
            link=None if link is None else (str(link[0]), str(link[1])),
        )


@dataclass(frozen=True)
class ChurnTimeline:
    """A complete churn schedule: epoch count, initial flows, events."""

    epochs: int
    initial_active: Tuple[str, ...] = ()
    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"need at least 1 epoch, got {self.epochs}")
        late = [e for e in self.events if e.epoch >= self.epochs]
        if late:
            raise ValueError(
                f"{len(late)} event(s) scheduled at/after epoch "
                f"{self.epochs} (the horizon)"
            )
        object.__setattr__(
            self, "events",
            tuple(sorted(self.events, key=ChurnEvent.sort_key)),
        )

    @property
    def quiet(self) -> bool:
        return not self.events

    def epoch_events(self, epoch: int) -> List[ChurnEvent]:
        """Events taking effect at ``epoch``, in canonical order."""
        return [e for e in self.events if e.epoch == epoch]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "initial_active": list(self.initial_active),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ChurnTimeline":
        return cls(
            epochs=int(doc["epochs"]),
            initial_active=tuple(
                str(f) for f in doc.get("initial_active", [])
            ),
            events=tuple(
                ChurnEvent.from_dict(e) for e in doc.get("events", [])
            ),
        )

    # ------------------------------------------------------------------
    # Random timeline generation (fuzzer / campaign entry point)
    # ------------------------------------------------------------------
    @classmethod
    def draw(
        cls,
        rng,
        flow_ids: Sequence[str],
        nodes: Sequence[str],
        links: Sequence[Tuple[str, str]],
        epochs: int = 12,
        p_flow: float = 0.25,
        p_node: float = 0.1,
        p_link: float = 0.2,
        max_down_nodes: int = 2,
    ) -> "ChurnTimeline":
        """Draw a random timeline from a ``numpy.random.Generator``.

        The draw order is fixed — initial membership first, then per
        epoch: flow toggles over sorted flow ids, node toggles over
        sorted node ids, one link-toggle gate plus an index draw — so a
        timeline is a pure function of the stream state, exactly like
        :meth:`FaultPlan.draw`.  Draws are consumed whether or not the
        corresponding event fires, so shrinking the *scenario* never
        perturbs the surviving entities' toggles.
        """
        flows = sorted(map(str, flow_ids))
        node_list = sorted(map(str, nodes))
        link_list = sorted(_link_key(str(a), str(b)) for a, b in links)

        initial: List[str] = []
        for fid in flows:
            if float(rng.random()) < 0.75:
                initial.append(fid)
        if not initial and flows:
            initial.append(flows[int(rng.integers(0, len(flows)))])

        active = set(initial)
        down_nodes: set = set()
        down_links: set = set()
        events: List[ChurnEvent] = []
        for epoch in range(1, epochs):
            for fid in flows:
                toggle = float(rng.random()) < p_flow
                if not toggle:
                    continue
                if fid in active:
                    active.discard(fid)
                    events.append(ChurnEvent(epoch, "flow-down", flow=fid))
                else:
                    active.add(fid)
                    events.append(ChurnEvent(epoch, "flow-up", flow=fid))
            for node in node_list:
                toggle = float(rng.random()) < p_node
                if not toggle:
                    continue
                if node in down_nodes:
                    down_nodes.discard(node)
                    events.append(ChurnEvent(epoch, "node-up", node=node))
                elif len(down_nodes) < max_down_nodes:
                    down_nodes.add(node)
                    events.append(ChurnEvent(epoch, "node-down", node=node))
            if link_list:
                toggle = float(rng.random()) < p_link
                index = int(rng.integers(0, len(link_list)))
                if toggle:
                    link = link_list[index]
                    if link in down_links:
                        down_links.discard(link)
                        events.append(ChurnEvent(epoch, "link-up",
                                                 link=link))
                    else:
                        down_links.add(link)
                        events.append(ChurnEvent(epoch, "link-down",
                                                 link=link))
        return cls(epochs=epochs, initial_active=tuple(initial),
                   events=tuple(events))

    # ------------------------------------------------------------------
    # Shrinking support
    # ------------------------------------------------------------------
    def shrink_candidates(self) -> List["ChurnTimeline"]:
        """One-step-simpler timelines, for greedy failure shrinking.

        Ordered from most to least aggressive: no events at all, all
        node events gone, all link events gone, the horizon truncated to
        the last eventful epoch + 1, whole epochs emptied, then single
        events dropped.  The runtime tolerates events referencing flows
        or nodes that a *scenario* shrink removed (they are skipped and
        counted), so timeline and scenario shrinking compose.
        """
        out: List[ChurnTimeline] = []
        if self.events:
            out.append(replace(self, events=()))
        node_events = tuple(e for e in self.events
                            if e.kind.startswith("node"))
        if node_events:
            out.append(replace(self, events=tuple(
                e for e in self.events if not e.kind.startswith("node")
            )))
        link_events = tuple(e for e in self.events
                            if e.kind.startswith("link"))
        if link_events:
            out.append(replace(self, events=tuple(
                e for e in self.events if not e.kind.startswith("link")
            )))
        if self.events:
            last = max(e.epoch for e in self.events)
            if last + 1 < self.epochs:
                out.append(replace(self, epochs=last + 1))
        eventful = sorted({e.epoch for e in self.events})
        if len(eventful) > 1:
            for epoch in eventful:
                out.append(replace(self, events=tuple(
                    e for e in self.events if e.epoch != epoch
                )))
        if len(self.events) > 1:
            for i in range(len(self.events)):
                out.append(replace(
                    self,
                    events=self.events[:i] + self.events[i + 1:],
                ))
        return out
