"""The long-lived allocator runtime: epochs, churn, checkpoints, admission.

The paper solves one static allocation; its motivating setting (Sec. I)
is a mobile ad hoc network where links break, nodes crash, and flows
come and go.  :class:`AllocatorRuntime` closes that gap: it holds the
committed allocation state of a *lifetime* of operation and advances it
through explicit **epochs**, each triggered by a batch of
:class:`~repro.resilience.epochs.ChurnEvent`\\ s.

One epoch is a pure function of ``(committed state, config seed, epoch
index, events)``:

1. **Apply events** in canonical order (capacity restored before
   removed, membership last); events referencing entities unknown to
   the base scenario are skipped and counted, so shrunk reproducers
   stay well defined.
2. **Diff the topology.**  Down nodes and links are removed from the
   base network (an out-of-range link neither carries traffic nor
   interferes); the resulting topology state — reduced network,
   repaired routes, incremental contention structure — is cached per
   ``(down-links, down-nodes)`` signature and *rebuilt identically* on
   restore, because every ingredient is deterministic: routes come from
   a fresh :class:`~repro.routing.dsr.DsrProtocol` flooding in sorted
   order, contention from :class:`~repro.perf.incremental.IncrementalContention`
   over the routable flows in base-scenario order.
3. **Re-route and suspend.**  Active flows whose path broke take the
   DSR repair route; flows with no route (or a dead endpoint) are
   suspended into the admission queue with a machine-readable reason.
4. **Admission.**  Queued flows retry FIFO, then the epoch's arrivals
   are gated: a flow is admitted only if Eq. (6) holds with *every*
   active flow (candidate included) at its Sec. II-D basic share —
   which proves every existing flow keeps its floor.  Non-admits are
   queued or rejected, each with a ``reason`` in the decision log.
5. **Solve** on the final active set — centralized phase-1 LP
   (warm-started, memoized) or full 2PA-D through the PR-4 resilience
   stack (lossy channel, degradation ladder, LP fallback chain) with a
   per-epoch fault plan drawn from a *fresh* seeded registry, so replay
   after restore consumes identical randomness.
6. **Dampen.**  With ``hysteresis=h``, a flow's share moves at most a
   fraction ``h`` per epoch (no flapping), but never below
   ``min(solver share, basic floor)``; a damped allocation is re-passed
   through the floor-aware capacity governor.
7. **Validate** Eq. (6) and the basic-share floor; on failure the epoch
   falls back to the basic floors (feasible for the admitted set by the
   admission predicate) and records the violation.
8. **Commit** — state swaps atomically in memory, the epoch record
   joins the journal, and (when configured) a crash-consistent
   checkpoint is written via :mod:`repro.resilience.checkpoint`.

Because nothing before step 8 mutates committed allocation state, a
crash at *any* point — mid-epoch or at an epoch boundary — restores
from the last checkpoint and replays to a bitwise-identical state
(``tests/test_checkpoint.py`` proves it differentially).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set,
    Tuple, Union,
)

from ..core.allocation import basic_fairness_lp_allocation
from ..core.contention import ContentionAnalysis
from ..core.distributed import DistributedAllocator
from ..core.model import Flow, Network, Scenario
from ..obs.events import emit_event
from ..obs.registry import incr, observe, phase_timer
from ..obs.trace import span
from ..perf.incremental import IncrementalContention
from ..perf.shard import ShardedSolver
from ..perf.warm import WarmLPCache
from ..routing.dsr import DsrProtocol
from ..scenarios.io import scenario_from_dict, scenario_to_dict
from ..sim.rng import RngRegistry
from ..verify.invariants import check_basic_fairness, check_clique_capacity
from .admission import (
    ADMIT,
    REASON_ENDPOINT_DOWN,
    REASON_FLOOR,
    REASON_OK,
    REASON_OVERLOAD,
    REASON_UNROUTABLE,
    AdmissionController,
    basic_share_feasible,
)
from .channel import UnreliableChannel
from .checkpoint import CheckpointCorruptError, load_checkpoint, save_checkpoint
from .degrade import (
    ResilientLPBackend,
    enforce_clique_capacity,
    global_basic_shares,
)
from .epochs import ChurnEvent, ChurnTimeline
from .faults import FaultInjector, FaultPlan

__all__ = ["AllocatorRuntime", "EpochRecord", "RuntimeConfig"]

#: Validation tolerance for the per-epoch Eq. (6) check — the same LP
#: tolerance the verification fuzzer applies to phase-1 allocations
#: (float simplex results satisfy their constraints to ~1e-6, not 1e-9).
_VALIDATE_TOL = 1e-6


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _topo_key_str(down_links: Iterable[Tuple[str, str]],
                  down_nodes: Iterable[str]) -> str:
    return json.dumps(
        [sorted([a, b] for a, b in down_links), sorted(down_nodes)],
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of one runtime; serialized into every checkpoint.

    ``checkpoint_path`` is deliberately *not* serialized — it names a
    location in the current environment, and a restored runtime keeps
    checkpointing to wherever it was restored from.  ``jobs`` is not
    serialized either: it sizes the shard process pool of the machine
    the runtime happens to run on, and the solved shares are bitwise
    identical at every job count, so carrying it across restores would
    only break payload equality between differently-parallel replicas.

    ``sharded`` (default on) routes the centralized solve through the
    component-sharded :class:`~repro.perf.shard.ShardedSolver` — per-
    component memoization replaces the all-or-nothing global memo, and
    dirty components can solve in parallel.  Turning it off restores
    the monolithic solve, which the differential tests use as the
    bitwise reference.
    """

    seed: int = 0
    mode: str = "centralized"  # "centralized" | "distributed"
    hysteresis: Optional[float] = None
    loss: float = 0.0
    crash_prob: float = 0.0
    max_retries: int = 4
    max_rounds: int = 256
    admission: bool = True
    queue_rejected: bool = True
    max_queue: int = 32
    #: Epochs a flow may sit in the waiting queue before age-based
    #: eviction (``None`` disables it — the historical behaviour).
    max_queue_age: Optional[int] = None
    incremental: bool = True
    warm_lp: bool = True
    memo: bool = True
    sharded: bool = True
    jobs: Optional[int] = 1
    validate: bool = True
    stream_prefix: Tuple = ("runtime",)
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("centralized", "distributed"):
            raise ValueError(f"unknown runtime mode {self.mode!r}")
        if self.hysteresis is not None and not 0.0 < self.hysteresis:
            raise ValueError(
                f"hysteresis must be positive, got {self.hysteresis}"
            )
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {self.loss}")
        object.__setattr__(
            self, "stream_prefix", tuple(self.stream_prefix)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "hysteresis": self.hysteresis,
            "loss": self.loss,
            "crash_prob": self.crash_prob,
            "max_retries": self.max_retries,
            "max_rounds": self.max_rounds,
            "admission": self.admission,
            "queue_rejected": self.queue_rejected,
            "max_queue": self.max_queue,
            "max_queue_age": self.max_queue_age,
            "incremental": self.incremental,
            "warm_lp": self.warm_lp,
            "memo": self.memo,
            "sharded": self.sharded,
            "validate": self.validate,
            "stream_prefix": list(self.stream_prefix),
        }

    @classmethod
    def from_dict(
        cls,
        doc: Mapping[str, object],
        checkpoint_path: Optional[str] = None,
    ) -> "RuntimeConfig":
        hysteresis = doc.get("hysteresis")
        return cls(
            seed=int(doc.get("seed", 0)),
            mode=str(doc.get("mode", "centralized")),
            hysteresis=None if hysteresis is None else float(hysteresis),
            loss=float(doc.get("loss", 0.0)),
            crash_prob=float(doc.get("crash_prob", 0.0)),
            max_retries=int(doc.get("max_retries", 4)),
            max_rounds=int(doc.get("max_rounds", 256)),
            admission=bool(doc.get("admission", True)),
            queue_rejected=bool(doc.get("queue_rejected", True)),
            max_queue=int(doc.get("max_queue", 32)),
            max_queue_age=(
                None if doc.get("max_queue_age") is None
                else int(doc["max_queue_age"])
            ),
            incremental=bool(doc.get("incremental", True)),
            warm_lp=bool(doc.get("warm_lp", True)),
            memo=bool(doc.get("memo", True)),
            sharded=bool(doc.get("sharded", True)),
            validate=bool(doc.get("validate", True)),
            stream_prefix=tuple(doc.get("stream_prefix", ("runtime",))),
            checkpoint_path=checkpoint_path,
        )


@dataclass
class EpochRecord:
    """One committed epoch: the journal entry and artifact row."""

    epoch: int
    events: List[Dict] = field(default_factory=list)
    active: List[str] = field(default_factory=list)
    shares: Dict[str, float] = field(default_factory=dict)
    status: str = ""
    admissions: List[Dict] = field(default_factory=list)
    queued: List[str] = field(default_factory=list)
    rerouted: List[str] = field(default_factory=list)
    suspended: List[str] = field(default_factory=list)
    skipped_events: int = 0
    damped: bool = False
    fallback_basic: bool = False
    checks: List[List] = field(default_factory=list)
    convergence: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(bool(ok) for _name, ok, _details in self.checks)

    def failed_checks(self) -> List[Tuple[str, str]]:
        return [(str(name), str(details))
                for name, ok, details in self.checks if not ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "events": list(self.events),
            "active": list(self.active),
            "shares": dict(self.shares),
            "status": self.status,
            "admissions": list(self.admissions),
            "queued": list(self.queued),
            "rerouted": list(self.rerouted),
            "suspended": list(self.suspended),
            "skipped_events": self.skipped_events,
            "damped": self.damped,
            "fallback_basic": self.fallback_basic,
            "checks": [list(c) for c in self.checks],
            "convergence": dict(self.convergence),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "EpochRecord":
        return cls(
            epoch=int(doc["epoch"]),
            events=[dict(e) for e in doc.get("events", [])],
            active=[str(f) for f in doc.get("active", [])],
            shares={str(k): float(v)
                    for k, v in doc.get("shares", {}).items()},
            status=str(doc.get("status", "")),
            admissions=[dict(a) for a in doc.get("admissions", [])],
            queued=[str(f) for f in doc.get("queued", [])],
            rerouted=[str(f) for f in doc.get("rerouted", [])],
            suspended=[str(f) for f in doc.get("suspended", [])],
            skipped_events=int(doc.get("skipped_events", 0)),
            damped=bool(doc.get("damped", False)),
            fallback_basic=bool(doc.get("fallback_basic", False)),
            checks=[[str(c[0]), bool(c[1]), str(c[2])]
                    for c in doc.get("checks", [])],
            convergence=dict(doc.get("convergence", {})),
        )


class _TopologyState:
    """Everything derived from one ``(down-links, down-nodes)`` signature.

    Built once per signature, as a pure function of the base scenario
    and the outage sets: the reduced network, a repaired route for every
    base flow that still has one (base path if intact, else a fresh DSR
    discovery — all flows routed at construction in base order, so route
    results never depend on call history), and the contention structure
    over the routable flows.
    """

    def __init__(
        self,
        base: Scenario,
        down_links: Iterable[Tuple[str, str]],
        down_nodes: Iterable[str],
        incremental: bool,
    ) -> None:
        self.down_links = frozenset(_link_key(a, b) for a, b in down_links)
        self.down_nodes = frozenset(down_nodes)
        self.key_str = _topo_key_str(self.down_links, self.down_nodes)
        self.pristine = not self.down_links and not self.down_nodes
        self.routed: Dict[str, Flow] = {}
        self.unroutable: Dict[str, str] = {}
        self.rerouted: Set[str] = set()

        if self.pristine:
            self.network = base.network
            for flow in base.flows:
                self.routed[flow.flow_id] = flow
            self.scenario = base
        else:
            alive = [n for n in base.network.nodes
                     if n not in self.down_nodes]
            alive_set = set(alive)
            links = [
                (a, b) for a, b in base.network.links()
                if a in alive_set and b in alive_set
                and _link_key(a, b) not in self.down_links
            ]
            self.network = Network.from_links(alive, links)
            link_set = {_link_key(a, b) for a, b in links}
            protocol = DsrProtocol(self.network)
            for flow in base.flows:
                fid = flow.flow_id
                if (flow.source not in alive_set
                        or flow.destination not in alive_set):
                    self.unroutable[fid] = REASON_ENDPOINT_DOWN
                    continue
                intact = all(n in alive_set for n in flow.path) and all(
                    _link_key(flow.path[i], flow.path[i + 1]) in link_set
                    for i in range(len(flow.path) - 1)
                )
                if intact:
                    self.routed[fid] = flow
                    continue
                route = protocol.find_route(flow.source, flow.destination)
                if route is None:
                    self.unroutable[fid] = REASON_UNROUTABLE
                else:
                    self.routed[fid] = Flow(fid, list(route), flow.weight)
                    self.rerouted.add(fid)
            self.scenario = Scenario(
                self.network,
                [self.routed[f.flow_id] for f in base.flows
                 if f.flow_id in self.routed],
                name=base.name,
                capacity=base.capacity,
            )
        self.base_order = [f.flow_id for f in base.flows
                           if f.flow_id in self.routed]
        self.contention = (
            IncrementalContention(self.scenario) if incremental else None
        )

    def ordered(self, flow_ids: Iterable[str]) -> List[str]:
        wanted = set(flow_ids)
        return [fid for fid in self.base_order if fid in wanted]

    def analysis_of(
        self, flow_ids: Sequence[str], name: str
    ) -> ContentionAnalysis:
        if self.contention is not None:
            return self.contention.analysis_for(flow_ids, name=name)
        wanted = set(flow_ids)
        flows = [self.routed[fid] for fid in self.base_order
                 if fid in wanted]
        return ContentionAnalysis(Scenario(
            self.network, flows, name=name,
            capacity=self.scenario.capacity,
        ))


class AllocatorRuntime:
    """Long-lived, epoch-advancing, checkpointable allocation service.

    The base ``scenario`` fixes the node universe and the universe of
    *known* flows (their ids, weights, and preferred paths); churn then
    selects which of them are active and which parts of the topology
    are up.  The runtime starts at epoch ``-1`` with nothing active —
    feed it a :class:`~repro.resilience.epochs.ChurnTimeline` via
    :meth:`run_timeline` (whose ``initial_active`` become epoch-0
    arrivals, admission-gated like any other), drive it epoch by epoch
    with :meth:`advance`, or use the :meth:`set_active` convenience that
    diffs a target membership into events (the dynamic experiment's
    entry point).

    If :meth:`advance` raises, the committed state is unchanged but the
    admission log may hold decisions from the aborted epoch — discard
    the instance and :meth:`restore` from the last checkpoint, exactly
    as a crashed process would.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config if config is not None else RuntimeConfig()
        self.epoch = -1
        self.active: Set[str] = set()
        self.down_links: Set[Tuple[str, str]] = set()
        self.down_nodes: Set[str] = set()
        self.shares: Dict[str, float] = {}
        self.journal: List[EpochRecord] = []
        self.last_convergence: Dict[str, object] = {}
        self.admitted_epoch: Dict[str, int] = {}
        self.admission = AdmissionController(
            enabled=True,
            queue_rejected=self.config.queue_rejected,
            max_queue=self.config.max_queue,
            max_queue_age=self.config.max_queue_age,
        )
        self._warm = WarmLPCache() if self.config.warm_lp else None
        self._memo: Optional[Dict[Tuple[str, frozenset], Dict]] = (
            {} if self.config.memo else None
        )
        #: Component-sharded centralized solver (the pluggable backend
        #: seam).  Its per-component memo replaces the global ``_memo``
        #: on the centralized path; warm-basis reuse is skipped because
        #: warm and cold solves are proven bitwise identical.
        self._shard: Optional[ShardedSolver] = (
            ShardedSolver(
                backend="simplex",
                jobs=self.config.jobs,
                memo=self.config.memo,
            )
            if self.config.sharded and self.config.mode == "centralized"
            else None
        )
        self._topo: Dict[Tuple[frozenset, frozenset], _TopologyState] = {}
        #: Per-topology clique-cache dumps carried across restore for
        #: topologies not yet revisited (see :meth:`state_payload`).
        self._clique_store: Dict[str, List[dict]] = {}
        self._base_index = {
            f.flow_id: i for i, f in enumerate(scenario.flows)
        }
        #: Test hook: called at ``("staged", epoch)`` after the epoch is
        #: fully computed but before commit, and ``("pre-checkpoint",
        #: epoch)`` after the in-memory commit but before the checkpoint
        #: write.  Raising from it simulates a crash at that point.
        self.crash_hook: Optional[Callable[[str, int], None]] = None
        #: Overload watchdog seam: called with a phase label at every
        #: phase boundary and at every per-flow admission probe.  Pure
        #: observation unless it raises (the overload layer raises
        #: ``EpochDeadlineExceeded`` on budget breach — nothing is
        #: committed then, per the :meth:`advance` contract).  Not
        #: serialized: a restored runtime starts unwatched.
        self.watchdog: Optional[Callable[[str], None]] = None

    def _tick(self, point: str) -> None:
        """Give the watchdog a chance to interrupt between work units."""
        if self.watchdog is not None:
            self.watchdog(point)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _topology(
        self,
        down_links: Iterable[Tuple[str, str]],
        down_nodes: Iterable[str],
    ) -> _TopologyState:
        key = (
            frozenset(_link_key(a, b) for a, b in down_links),
            frozenset(down_nodes),
        )
        topo = self._topo.get(key)
        if topo is None:
            with phase_timer("runtime.topology.build"):
                topo = _TopologyState(
                    self.scenario, key[0], key[1], self.config.incremental
                )
            seed = self._clique_store.get(topo.key_str)
            if seed and topo.contention is not None:
                topo.contention.seed_component_cliques(seed)
            self._topo[key] = topo
            incr("runtime.topology.builds")
        return topo

    def current_analysis(self) -> ContentionAnalysis:
        """Contention analysis of the committed active set."""
        topo = self._topology(self.down_links, self.down_nodes)
        return topo.analysis_of(
            topo.ordered(self.active), name=f"{self.scenario.name}-active"
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admission_reason(
        self, topo: _TopologyState, active: Set[str], fid: str
    ) -> Tuple[str, str]:
        """The verdict for admitting ``fid`` on ``topo`` next to ``active``."""
        unroutable = topo.unroutable.get(fid)
        if unroutable is not None:
            return unroutable, f"flow {fid} has no usable path"
        if not self.config.admission:
            return REASON_OK, ""
        ids = topo.ordered(active | {fid})
        analysis = topo.analysis_of(
            ids, name=f"{self.scenario.name}-admit"
        )
        if basic_share_feasible(analysis):
            return REASON_OK, ""
        return (
            REASON_FLOOR,
            "Eq. (6) fails with every active flow at its basic share",
        )

    # ------------------------------------------------------------------
    # The epoch pipeline
    # ------------------------------------------------------------------
    def advance(
        self, events: Sequence[ChurnEvent] = (),
        *,
        freeze_admission: bool = False,
        clamp_basic: bool = False,
    ) -> EpochRecord:
        """Run one epoch; returns the committed record.

        The whole pipeline (stage + commit) runs under the
        ``runtime.epoch`` timer and span; each of the eight phases
        opens its own ``runtime.phase.*`` child inside.  Wall latency
        of the complete epoch feeds the ``runtime.epoch.latency_ms``
        histogram the SLO report summarizes.

        The keyword flags are the overload ladder's hooks (both default
        off, leaving the epoch byte-identical to historical behaviour):
        ``freeze_admission`` skips every admission probe — arrivals are
        queued unprobed under ``REASON_OVERLOAD`` and the waiting queue
        is not retried; ``clamp_basic`` skips the LP entirely and
        commits the Sec. II-D basic floors through the capacity
        governor (status ``overload-clamp``).
        """
        epoch = self.epoch + 1
        t0 = time.perf_counter()
        with phase_timer("runtime.epoch"), \
                span("runtime.epoch", epoch=epoch) as epoch_span:
            staged = self._stage(
                epoch, events,
                freeze_admission=freeze_admission,
                clamp_basic=clamp_basic,
            )
            if self.crash_hook is not None:
                self.crash_hook("staged", epoch)
            with phase_timer("runtime.phase.commit"), \
                    span("runtime.phase.commit"):
                self._commit(*staged)
            record = staged[0]
            epoch_span.tag(
                status=record.status,
                active=len(record.active),
                damped=record.damped,
                fallback_basic=record.fallback_basic,
            )
        observe(
            "runtime.epoch.latency_ms", (time.perf_counter() - t0) * 1e3
        )
        return staged[0]

    def run_timeline(self, timeline: ChurnTimeline) -> List[EpochRecord]:
        """Advance through every remaining epoch of ``timeline``.

        Resumable: a runtime restored at epoch ``k`` continues with
        epoch ``k + 1``.  The timeline's ``initial_active`` flows enter
        as epoch-0 arrivals (admission-gated like any arrival).
        """
        records: List[EpochRecord] = []
        for epoch in range(self.epoch + 1, timeline.epochs):
            events = list(timeline.epoch_events(epoch))
            if epoch == 0:
                events = [
                    ChurnEvent(0, "flow-up", flow=fid)
                    for fid in timeline.initial_active
                ] + events
            records.append(self.advance(events))
        return records

    def set_active(self, flow_ids: Iterable[str]) -> Dict[str, float]:
        """Diff a target membership into one epoch of flow events.

        Convenience for callers that think in active *sets* rather than
        event streams (the dynamic experiment).  Always advances one
        epoch, even on a no-op diff — a re-solve of an unchanged set is
        memoized, so the cost is one cache hit.
        """
        wanted = set(flow_ids)
        unknown = wanted - set(self._base_index)
        if unknown:
            raise KeyError(f"unknown flows {sorted(unknown)}")
        epoch = self.epoch + 1
        events = [
            ChurnEvent(epoch, "flow-up", flow=fid)
            for fid in sorted(wanted - self.active)
        ] + [
            ChurnEvent(epoch, "flow-down", flow=fid)
            for fid in sorted(self.active - wanted)
        ]
        self.advance(events)
        return dict(self.shares)

    # -- staging --------------------------------------------------------
    def _stage(self, epoch: int, events: Sequence[ChurnEvent],
               freeze_admission: bool = False, clamp_basic: bool = False):
        active = set(self.active)
        down_links = set(self.down_links)
        down_nodes = set(self.down_nodes)
        admitted = dict(self.admitted_epoch)
        known_nodes = set(self.scenario.network.positions)
        skipped = 0
        arrivals: List[str] = []
        applied: List[Dict] = []

        # Phase 1 — APPLY: fold the event batch into the staged sets.
        with phase_timer("runtime.phase.apply"), \
                span("runtime.phase.apply") as apply_span:
            self._tick("apply")
            for ev in sorted(events, key=ChurnEvent.sort_key):
                ok = True
                if ev.kind in ("node-up", "node-down"):
                    if ev.node in known_nodes:
                        (down_nodes.discard if ev.kind == "node-up"
                         else down_nodes.add)(ev.node)
                    else:
                        ok = False
                elif ev.kind in ("link-up", "link-down"):
                    if all(n in known_nodes for n in ev.link):
                        (down_links.discard if ev.kind == "link-up"
                         else down_links.add)(ev.link)
                    else:
                        ok = False
                elif ev.kind == "flow-down":
                    if ev.flow in self._base_index:
                        active.discard(ev.flow)
                        admitted.pop(ev.flow, None)
                        self.admission.drop_waiting(ev.flow)
                    else:
                        ok = False
                elif ev.kind == "flow-up":
                    if (ev.flow in self._base_index
                            and ev.flow not in active
                            and ev.flow not in arrivals):
                        arrivals.append(ev.flow)
                    elif ev.flow not in self._base_index:
                        ok = False
                if ok:
                    applied.append(ev.to_dict())
                else:
                    skipped += 1
                    incr("runtime.epoch.skipped_events")
            apply_span.tag(applied=len(applied), skipped=skipped)

        # Phase 2 — DIFF: resolve the topology for the staged outage sets
        # (cache hit or full rebuild).
        with phase_timer("runtime.phase.diff"), \
                span("runtime.phase.diff") as diff_span:
            self._tick("diff")
            topo = self._topology(down_links, down_nodes)
            diff_span.tag(
                pristine=topo.pristine,
                routable=len(topo.routed),
                unroutable=len(topo.unroutable),
            )

        # Phase 3 — SUSPEND: park active flows the new topology cannot
        # carry, then shrink newest-first until the floors fit.
        with phase_timer("runtime.phase.suspend"), \
                span("runtime.phase.suspend") as suspend_span:
            self._tick("suspend")
            suspended: List[str] = []
            for fid in sorted(active & set(topo.unroutable),
                              key=self._base_index.get):
                active.discard(fid)
                admitted.pop(fid, None)
                suspended.append(fid)
                self.admission.decide(
                    fid, epoch, topo.unroutable[fid],
                    "active flow lost its path",
                )
            rerouted = topo.ordered(active & topo.rerouted)

            # Suspend newest-first until the survivors' basic floors fit —
            # a topology change can shrink cliques around flows admitted
            # under roomier conditions (only reachable with shortcut
            # paths; DSR repairs and generated flows are shortcut-free).
            if self.config.admission and active:
                for _ in range(len(active)):
                    analysis = topo.analysis_of(
                        topo.ordered(active),
                        name=f"{self.scenario.name}-floors",
                    )
                    if basic_share_feasible(analysis):
                        break
                    victim = max(
                        active,
                        key=lambda f: (admitted.get(f, -1),
                                       self._base_index[f]),
                    )
                    active.discard(victim)
                    admitted.pop(victim, None)
                    suspended.append(victim)
                    self.admission.decide(
                        victim, epoch, REASON_FLOOR,
                        "topology change made the active floors "
                        "infeasible",
                    )
            suspend_span.tag(suspended=len(suspended),
                             rerouted=len(rerouted))

        # Phase 4 — ADMIT: FIFO retry of the waiting queue, then this
        # epoch's arrivals; publish queue-state gauges afterwards.
        with phase_timer("runtime.phase.admit"), \
                span("runtime.phase.admit") as admit_span:
            self._tick("admit")
            if self.admission.max_queue_age is not None:
                self.admission.evict_aged(epoch)
            if freeze_admission:
                # Overload freeze rung: no feasibility probes at all.
                # Arrivals pile into the bounded queue (overflow becomes
                # REASON_QUEUE_FULL rejects) and the waiting queue is
                # not retried — the next healthy epoch drains it.
                for fid in arrivals:
                    self.admission.decide(
                        fid, epoch, REASON_OVERLOAD,
                        "admission frozen under overload shedding",
                    )
                incr("runtime.epoch.frozen_arrivals", len(arrivals))
            else:
                for fid in list(self.admission.waiting):
                    self._tick("admit")
                    if fid in active:
                        self.admission.drop_waiting(fid)
                        continue
                    if fid in suspended:
                        continue  # just parked this epoch; retry next one
                    reason, _details = self._admission_reason(topo, active,
                                                              fid)
                    if reason == REASON_OK:
                        self.admission.readmit(fid, epoch)
                        active.add(fid)
                        admitted[fid] = epoch
                for fid in arrivals:
                    self._tick("admit")
                    reason, details = self._admission_reason(topo, active,
                                                             fid)
                    decision = self.admission.decide(fid, epoch, reason,
                                                     details)
                    if decision.action == ADMIT:
                        active.add(fid)
                        admitted[fid] = epoch
            self.admission.observe_queue(epoch)
            admit_span.tag(arrivals=len(arrivals),
                           queue_depth=len(self.admission.waiting))

        # Phases 5–7 — SOLVE / DAMPEN / VALIDATE live in _solve.
        shares, status, checks, convergence, damped, fallback = (
            self._solve(epoch, topo, active, clamp_basic=clamp_basic)
        )

        record = EpochRecord(
            epoch=epoch,
            events=applied,
            active=sorted(active),
            shares={fid: shares[fid] for fid in sorted(shares)},
            status=status,
            admissions=[d.to_dict() for d in self.admission.decisions
                        if d.epoch == epoch],
            queued=list(self.admission.waiting),
            rerouted=rerouted,
            suspended=suspended,
            skipped_events=skipped,
            damped=damped,
            fallback_basic=fallback,
            checks=checks,
            convergence=convergence,
        )
        return record, active, down_links, down_nodes, admitted

    # -- solving --------------------------------------------------------
    def _solve(
        self, epoch: int, topo: _TopologyState, active: Set[str],
        clamp_basic: bool = False,
    ):
        # Phase 5 — SOLVE: memo hit, centralized warm/cold LP, or full
        # 2PA-D, tagged with the path taken.
        with phase_timer("runtime.phase.solve"), \
                span("runtime.phase.solve") as solve_span:
            self._tick("solve")
            ids = topo.ordered(active)
            if not ids:
                solve_span.tag(path="empty", flows=0)
                return {}, "empty", [], {}, False, False

            analysis = topo.analysis_of(
                ids, name=f"{self.scenario.name}-active"
            )
            lossless = (self.config.loss == 0.0
                        and self.config.crash_prob == 0.0)
            memo_ok = self._memo is not None and (
                self.config.mode == "centralized" or lossless
            )
            memo_key = (topo.key_str, frozenset(ids))
            convergence: Dict[str, object] = {}

            if clamp_basic:
                # Overload clamp rung: skip the LP, hand every flow its
                # Sec. II-D basic share through the floor-aware capacity
                # governor — O(cliques) work, feasible by the admission
                # predicate, the ladder's terminal safe state.
                clamp_floors = global_basic_shares(analysis)
                with phase_timer("runtime.alloc.clamp"):
                    raw, _clamped = enforce_clique_capacity(
                        analysis, dict(clamp_floors), floors=clamp_floors
                    )
                status = "overload-clamp"
                incr("runtime.epoch.overload_clamps")
                solve_span.tag(path="overload-clamp")
            elif self._shard is not None and self.config.mode == "centralized":
                # Component-sharded path: the per-component memo keyed
                # by structural fingerprint subsumes the global memo
                # (an unchanged epoch is all reuse, no dirty solves).
                with phase_timer("runtime.alloc.solve"):
                    raw = self._shard.solve(analysis)
                status = "converged"
                stats = self._shard.last_stats
                if stats.get("components", 0) and not stats.get("dirty", 0):
                    # Fully memo-served epoch — the sharded analogue of
                    # a global memo hit.
                    incr("runtime.alloc.memo_hits")
                solve_span.tag(
                    path="sharded",
                    components=int(stats.get("components", 0)),
                    dirty=int(stats.get("dirty", 0)),
                    reused=int(stats.get("reused", 0)),
                )
            elif memo_ok and memo_key in self._memo:
                entry = self._memo[memo_key]
                raw = dict(entry["shares"])
                status = str(entry["status"])
                incr("runtime.alloc.memo_hits")
                solve_span.tag(path="memo")
            elif self.config.mode == "centralized":
                backend = (self._warm.solver if self._warm is not None
                           else "simplex")
                with phase_timer("runtime.alloc.solve"):
                    raw = dict(basic_fairness_lp_allocation(
                        analysis, backend=backend
                    ).shares)
                status = "converged"
                if memo_ok:
                    self._memo[memo_key] = {"shares": dict(raw),
                                            "status": status}
                solve_span.tag(
                    path="centralized",
                    warm=self._warm is not None,
                )
            else:
                # Distributed 2PA-D through the PR-4 resilience stack.  A
                # fresh registry per epoch keyed only by (seed, prefix,
                # epoch) keeps the draw pure: replay after restore
                # consumes identical streams regardless of what ran
                # before.
                registry = RngRegistry(self.config.seed)
                prefix = tuple(self.config.stream_prefix) + (epoch,)
                if lossless:
                    plan = FaultPlan()
                else:
                    plan = FaultPlan.draw(
                        registry.stream(prefix + ("plan",)),
                        nodes=topo.network.nodes,
                        loss=self.config.loss,
                        crash_prob=self.config.crash_prob,
                    )
                injector = FaultInjector(
                    plan, registry, prefix=prefix + ("channel",)
                )
                channel = UnreliableChannel(
                    injector,
                    max_retries=self.config.max_retries,
                    max_rounds=self.config.max_rounds,
                )
                backend = ResilientLPBackend(cache=self._warm)
                with phase_timer("runtime.alloc.solve"):
                    allocator = DistributedAllocator(
                        analysis.scenario, backend=backend,
                        analysis=analysis, channel=channel,
                    )
                    raw = dict(allocator.run().shares)
                status = str(
                    allocator.convergence.get("status", "unknown")
                )
                per_flow = allocator.convergence.get("per_flow", {})
                convergence = {
                    "status": status,
                    "max_rounds": allocator.convergence.get("max_rounds"),
                    "total_messages": allocator.convergence.get(
                        "total_messages"
                    ),
                    "unconfirmed": sum(
                        1 for info in per_flow.values()
                        if not info.get("confirmed")
                    ),
                }
                if memo_ok:
                    self._memo[memo_key] = {"shares": dict(raw),
                                            "status": status}
                solve_span.tag(path="distributed")
            solve_span.tag(flows=len(ids), status=status)

        # Phase 6 — DAMPEN: hysteresis-bounded movement, never below the
        # cleared floor, re-governed for clique capacity when it bites.
        with phase_timer("runtime.phase.dampen"), \
                span("runtime.phase.dampen") as dampen_span:
            self._tick("dampen")
            shares = dict(raw)
            floors = global_basic_shares(analysis)
            damped = False
            h = self.config.hysteresis
            if h is not None and self.shares:
                for fid in shares:
                    prev = self.shares.get(fid)
                    if prev is None:
                        continue  # new/readmitted flow: no rate to protect
                    bounded = min(max(shares[fid], prev * (1.0 - h)),
                                  prev * (1.0 + h))
                    # Damping must never hold a flow below the floor its
                    # solver share already cleared (Sec. II-D is an
                    # invariant, smoothness is not).
                    bounded = max(bounded, min(raw[fid],
                                               floors.get(fid, 0.0)))
                    if bounded != shares[fid]:
                        shares[fid] = bounded
                        damped = True
                if damped:
                    incr("runtime.epoch.damped")
                    shares, _clamped = enforce_clique_capacity(
                        analysis, shares, floors=floors
                    )
            dampen_span.tag(damped=damped)

        # Phase 7 — VALIDATE: Eq. (6) + basic floors, falling back to
        # the floor allocation when the solved shares fail.
        with phase_timer("runtime.phase.validate"), \
                span("runtime.phase.validate") as validate_span:
            self._tick("validate")
            checks: List[List] = []
            fallback = False
            if self.config.validate:
                cap = check_clique_capacity(analysis, shares,
                                            tol=_VALIDATE_TOL)
                floor = check_basic_fairness(analysis, shares)
                if not (cap.ok and floor.ok):
                    fallback = True
                    incr("runtime.epoch.fallback_basic")
                    shares = dict(floors)
                    status = "fallback-basic"
                    cap = check_clique_capacity(analysis, shares,
                                                tol=_VALIDATE_TOL)
                    floor = check_basic_fairness(analysis, shares)
                checks = [
                    ["epoch.clique_capacity", cap.ok, cap.details],
                    ["epoch.basic_floor", floor.ok, floor.details],
                ]
            validate_span.tag(fallback_basic=fallback,
                              checked=bool(checks))
        return shares, status, checks, convergence, damped, fallback

    # -- committing -----------------------------------------------------
    def _commit(
        self,
        record: EpochRecord,
        active: Set[str],
        down_links: Set[Tuple[str, str]],
        down_nodes: Set[str],
        admitted: Dict[str, int],
    ) -> None:
        self.active = active
        self.down_links = down_links
        self.down_nodes = down_nodes
        self.admitted_epoch = admitted
        self.shares = dict(record.shares)
        self.epoch = record.epoch
        self.journal.append(record)
        self.last_convergence = dict(record.convergence)
        incr("runtime.epoch.count")
        incr("runtime.epoch.committed")
        if record.rerouted:
            incr("runtime.epoch.reroutes", len(record.rerouted))
        if record.suspended:
            incr("runtime.epoch.suspended", len(record.suspended))
        emit_event(
            "epoch.commit",
            epoch=record.epoch,
            status=record.status,
            active=len(record.active),
            queued=len(record.queued),
            damped=record.damped,
            fallback_basic=record.fallback_basic,
        )
        if self.crash_hook is not None:
            self.crash_hook("pre-checkpoint", record.epoch)
        if self.config.checkpoint_path is not None:
            self.save(self.config.checkpoint_path)

    def commit_carryover(self, record: EpochRecord) -> None:
        """Commit an epoch that *reuses* the last validated allocation.

        The overload layer calls this after a deadline breach: the
        aborted epoch computed nothing trustworthy, so the committed
        active set, shares, and topology stay exactly as they were —
        only the epoch index moves and the journal gains the breach
        record.  Checkpointing and commit telemetry behave like a
        normal commit, so restore-and-replay sees the breach too.
        """
        if record.epoch != self.epoch + 1:
            raise ValueError(
                f"carryover epoch {record.epoch} is not the successor "
                f"of committed epoch {self.epoch}"
            )
        self.epoch = record.epoch
        self.journal.append(record)
        incr("runtime.epoch.count")
        incr("runtime.epoch.committed")
        emit_event(
            "epoch.commit",
            epoch=record.epoch,
            status=record.status,
            active=len(record.active),
            queued=len(record.queued),
            damped=False,
            fallback_basic=False,
        )
        if self.crash_hook is not None:
            self.crash_hook("pre-checkpoint", record.epoch)
        if self.config.checkpoint_path is not None:
            self.save(self.config.checkpoint_path)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_payload(self) -> Dict[str, object]:
        """The complete committed state as a JSON-ready dict.

        Two runtimes that executed the same epochs on the same seed
        produce *equal* payloads — including cache contents and LRU
        order — whether or not one of them crashed and restored along
        the way; the differential tests compare exactly this.
        """
        cliques = dict(self._clique_store)
        for topo in self._topo.values():
            if topo.contention is not None:
                cliques[topo.key_str] = (
                    topo.contention.export_component_cliques()
                )
        memo = None
        if self._memo is not None:
            memo = [
                {
                    "key": [tk, sorted(ids)],
                    "shares": dict(entry["shares"]),
                    "status": entry["status"],
                }
                for (tk, ids), entry in self._memo.items()
            ]
        return {
            "scenario": scenario_to_dict(self.scenario),
            "config": self.config.to_dict(),
            "epoch": self.epoch,
            "active": sorted(self.active),
            "down_links": sorted([a, b] for a, b in self.down_links),
            "down_nodes": sorted(self.down_nodes),
            "admitted_epoch": dict(sorted(self.admitted_epoch.items())),
            "shares": {fid: self.shares[fid]
                       for fid in sorted(self.shares)},
            "journal": [r.to_dict() for r in self.journal],
            "admission": self.admission.snapshot(),
            "last_convergence": dict(self.last_convergence),
            "caches": {
                "warm": (self._warm.dump_state()
                         if self._warm is not None else None),
                "memo": memo,
                "shard": (self._shard.dump_state()
                          if self._shard is not None else None),
                "cliques": cliques,
            },
            "contention_edges": self._current_edges(),
        }

    def _current_edges(self) -> Optional[List[List[str]]]:
        """Contention edges of the current topology's routable flows —
        a cheap structural fingerprint verified on restore."""
        topo = self._topology(self.down_links, self.down_nodes)
        if topo.contention is None:
            return None
        return sorted(
            sorted([str(u), str(v)])
            for u, v in topo.contention.full_graph.edges()
        )

    def save(self, path: Optional[str] = None) -> str:
        """Atomically checkpoint to ``path`` (default: the configured one)."""
        target = path if path is not None else self.config.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured or given")
        return save_checkpoint(self.state_payload(), target)

    @classmethod
    def restore(
        cls,
        path: str,
        scenario: Optional[Scenario] = None,
    ) -> "AllocatorRuntime":
        """Rebuild a runtime from a checkpoint, verified end to end.

        ``scenario`` may be passed to assert the checkpoint belongs to
        it (mismatch raises :class:`CheckpointCorruptError`); omitted,
        the scenario is rebuilt from the checkpoint itself.
        """
        payload = load_checkpoint(path)
        if scenario is None:
            scenario = scenario_from_dict(payload["scenario"])
        elif scenario_to_dict(scenario) != payload["scenario"]:
            raise CheckpointCorruptError(
                f"{path}: checkpoint belongs to a different scenario "
                f"than {scenario.name!r}"
            )
        config = RuntimeConfig.from_dict(
            payload.get("config", {}), checkpoint_path=str(path)
        )
        rt = cls(scenario, config)
        rt.epoch = int(payload["epoch"])
        rt.active = {str(f) for f in payload.get("active", [])}
        rt.down_links = {
            _link_key(str(l[0]), str(l[1]))
            for l in payload.get("down_links", [])
        }
        rt.down_nodes = {str(n) for n in payload.get("down_nodes", [])}
        rt.admitted_epoch = {
            str(k): int(v)
            for k, v in payload.get("admitted_epoch", {}).items()
        }
        rt.shares = {str(k): float(v)
                     for k, v in payload.get("shares", {}).items()}
        rt.journal = [EpochRecord.from_dict(r)
                      for r in payload.get("journal", [])]
        rt.admission.restore(payload.get("admission", {}))
        rt.last_convergence = dict(payload.get("last_convergence", {}))
        caches = payload.get("caches", {})
        if rt._warm is not None and caches.get("warm"):
            rt._warm.load_state(caches["warm"])
        if rt._shard is not None and caches.get("shard"):
            rt._shard.load_state(caches["shard"])
        rt._clique_store = {
            str(k): list(v)
            for k, v in (caches.get("cliques") or {}).items()
        }
        if rt._memo is not None:
            for entry in caches.get("memo") or []:
                tk, ids = entry["key"]
                rt._memo[(str(tk), frozenset(str(f) for f in ids))] = {
                    "shares": {str(k): float(v)
                               for k, v in entry["shares"].items()},
                    "status": str(entry["status"]),
                }
        expected = payload.get("contention_edges")
        if expected is not None:
            actual = rt._current_edges()
            if actual != expected:
                raise CheckpointCorruptError(
                    f"{path}: contention structure rebuilt from the "
                    f"scenario does not match the checkpointed one"
                )
        return rt
