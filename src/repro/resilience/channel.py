"""Unreliable message channel for 2PA-D constraint propagation.

The default :meth:`~repro.core.distributed.DistributedAllocator.propagate_constraints`
floods cliques over a lossless, instantaneous, synchronous exchange.
:class:`UnreliableChannel` replaces that exchange with a faulted one —
every clique transfer becomes an acknowledged message subject to a
:class:`~repro.resilience.faults.FaultInjector`'s drop/duplicate/delay
decisions, node crashes, and link flaps — while keeping the round-based
structure of the original simulation:

* **Acks and retransmits.**  A sender retransmits an unacknowledged
  transfer with exponential backoff (``ack_timeout + base · 2^(a-1) +
  jitter`` rounds after attempt ``a``) up to ``max_retries`` retries,
  after which the transfer is declared *undeliverable* (the receiver may
  still learn the clique from its other path neighbor).  Acks themselves
  can be lost, in which case the receiver's duplicate suppression absorbs
  the retransmit.
* **Reordering** arises naturally from random per-message delays: a
  message sent later can arrive earlier.
* **Convergence detection.**  Per flow, the channel distinguishes
  ``"converged"`` (every path node holds every constraint involving the
  flow), ``"converged-partial"`` (the exchange quiesced — every transfer
  acked, dead, or waiting on a never-returning node — with constraints
  missing somewhere), and ``"timed-out"`` (the round budget expired with
  messages still pending).  The run-level status is the worst per-flow
  status; a flow whose *source* is down at the end is additionally
  demoted to unconfirmed, because it cannot run its local LP.

Everything is deterministic given the injector's registry: message
processing orders are canonical (path order, then the clique sort key
used everywhere else in the 2PA-D stack), so fault draws are consumed in
a reproducible sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.model import NodeId, SubflowId
from ..obs.events import emit_event
from ..obs.registry import incr, observe, set_gauge
from ..obs.trace import span
from .faults import FaultInjector

__all__ = [
    "CONVERGED",
    "CONVERGED_PARTIAL",
    "TIMED_OUT",
    "STATUS_ORDER",
    "worst_status",
    "ChannelStats",
    "UnreliableChannel",
]

Clique = FrozenSet[SubflowId]

CONVERGED = "converged"
CONVERGED_PARTIAL = "converged-partial"
TIMED_OUT = "timed-out"

#: Severity order for combining per-flow statuses into a run status.
STATUS_ORDER = (CONVERGED, CONVERGED_PARTIAL, TIMED_OUT)


def worst_status(statuses) -> str:
    """The most degraded status in ``statuses`` (``converged`` if empty)."""
    worst = CONVERGED
    for status in statuses:
        if STATUS_ORDER.index(status) > STATUS_ORDER.index(worst):
            worst = status
    return worst


def _clique_key(clique: Clique):
    return (-len(clique), sorted(map(str, clique)))


@dataclass
class ChannelStats:
    """Message-level accounting for one propagation run."""

    sent: int = 0
    delivered: int = 0
    duplicates: int = 0        # redundant deliveries absorbed by the receiver
    dropped: int = 0           # data lost to drop rate, flaps, or dead nodes
    delayed: int = 0
    acks_dropped: int = 0
    retransmits: int = 0
    expired: int = 0           # transfers that exhausted their retries

    def to_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
            "delayed": self.delayed,
            "acks_dropped": self.acks_dropped,
            "retransmits": self.retransmits,
            "expired": self.expired,
        }


@dataclass
class _Transfer:
    """Reliable-delivery state for one (sender, receiver, clique) triple."""

    attempts: int = 0
    next_send: int = 0
    acked: bool = False
    dead: bool = False

    @property
    def pending(self) -> bool:
        return not self.acked and not self.dead


@dataclass
class _Flight:
    """A data message in transit."""

    deliver_at: int
    src: NodeId
    dst: NodeId
    clique: Clique
    duplicate: bool = False    # a channel-made copy (stats only)


class UnreliableChannel:
    """Ack/retransmit constraint propagation over a faulted medium.

    Plugs into :class:`~repro.core.distributed.DistributedAllocator` via
    its ``channel=`` seam: :meth:`propagate` runs the whole exchange
    against the allocator's local views and returns the convergence
    record the allocator stores.  With a lossless
    :class:`~repro.resilience.faults.FaultPlan` the fixpoint (and hence
    the allocation) is identical to the default lossless path — only the
    message accounting differs.
    """

    def __init__(
        self,
        injector: FaultInjector,
        max_retries: int = 4,
        ack_timeout: int = 1,
        backoff_base: int = 1,
        max_rounds: int = 256,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.injector = injector
        self.max_retries = int(max_retries)
        self.ack_timeout = int(ack_timeout)
        self.backoff_base = int(backoff_base)
        self.max_rounds = int(max_rounds)
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    def propagate(self, allocator) -> Dict[str, object]:
        """Run the faulted exchange for every flow of ``allocator``.

        Mutates the allocator's views (``received_cliques``) to reflect
        what actually got through, and returns the convergence record
        (same core keys as the lossless path, plus per-flow statuses and
        channel accounting).
        """
        rounds_per_flow: Dict[str, int] = {}
        per_flow: Dict[str, Dict[str, object]] = {}
        convergence: Dict[str, object] = {
            "rounds_per_flow": rounds_per_flow,
            "max_rounds": 0,
            "total_messages": 0,
            "status": "in-progress",
            "per_flow": per_flow,
        }
        total_messages = 0
        for flow in allocator.scenario.flows:
            with span("2pad.flow", flow=flow.flow_id,
                      lossy=True) as flow_span:
                result = self._propagate_flow(allocator.views, flow)
                flow_span.tag(
                    status=result["status"],
                    rounds=result["rounds"],
                    messages=result["messages"],
                    undeliverable=result["undeliverable"],
                )
            if (result["status"] != CONVERGED
                    or result["undeliverable"]):
                emit_event(
                    "channel.flow",
                    flow=flow.flow_id,
                    status=result["status"],
                    rounds=result["rounds"],
                    undeliverable=result["undeliverable"],
                )
            rounds_per_flow[flow.flow_id] = result["rounds"]
            per_flow[flow.flow_id] = result
            total_messages += result["messages"]
            convergence["total_messages"] = total_messages
            convergence["max_rounds"] = max(
                rounds_per_flow.values(), default=0
            )
            observe("2pad.rounds_to_convergence", result["rounds"])
        statuses = [info["status"] for info in per_flow.values()]
        status = worst_status(statuses)
        if status == CONVERGED and not all(
            info["confirmed"] for info in per_flow.values()
        ):
            # Complete constraint views but an unusable source node:
            # the allocation layer must still degrade.
            status = CONVERGED_PARTIAL
        convergence["status"] = status
        convergence["channel"] = self.stats.to_dict()
        incr("2pad.messages", total_messages)
        incr(f"resilience.channel.{status}")
        for name, value in self.stats.to_dict().items():
            if value:
                incr(f"resilience.channel.{name}", value)
        set_gauge("2pad.max_rounds", float(convergence["max_rounds"]))
        return convergence

    # ------------------------------------------------------------------
    def _propagate_flow(self, views, flow) -> Dict[str, object]:
        inj = self.injector
        stats = self.stats
        path: List[NodeId] = list(flow.path)
        fid = flow.flow_id
        order = {node: i for i, node in enumerate(path)}

        local: Dict[NodeId, Set[Clique]] = {
            node: {
                clique
                for clique in views[node].local_cliques
                if any(sid.flow == fid for sid in clique)
            }
            for node in path
        }
        target: Set[Clique] = set()
        for cliques in local.values():
            target |= cliques
        holding: Dict[NodeId, Set[Clique]] = {
            node: set(local[node]) for node in path
        }
        neighbors: Dict[NodeId, List[NodeId]] = {
            node: [path[j] for j in (i - 1, i + 1) if 0 <= j < len(path)]
            for i, node in enumerate(path)
        }

        transfers: Dict[Tuple[NodeId, NodeId, Clique], _Transfer] = {}
        inflight: List[_Flight] = []
        alive_prev = {node: inj.alive(node, 0) for node in path}
        messages = 0
        rnd = 0
        timed_out = False

        def flight_key(f: _Flight):
            return (order[f.src], order[f.dst], _clique_key(f.clique),
                    f.duplicate)

        def transfer_key(item):
            (src, dst, clique), _state = item
            return (order[src], order[dst], _clique_key(clique))

        while True:
            # Crash transitions: a node going down loses its received
            # constraint state; on restart it re-derives only its local
            # cliques by re-overhearing its neighborhood.
            for node in path:
                up = inj.alive(node, rnd)
                if alive_prev[node] and not up:
                    holding[node] = set(local[node])
                alive_prev[node] = up

            # Deliveries scheduled for this round.
            due = sorted(
                (f for f in inflight if f.deliver_at <= rnd),
                key=flight_key,
            )
            inflight = [f for f in inflight if f.deliver_at > rnd]
            for flight in due:
                src, dst = flight.src, flight.dst
                if not inj.alive(dst, rnd) or not inj.link_up(src, dst, rnd):
                    stats.dropped += 1
                    continue
                if flight.clique in holding[dst]:
                    stats.duplicates += 1
                else:
                    holding[dst].add(flight.clique)
                stats.delivered += 1
                state = transfers.get((src, dst, flight.clique))
                if inj.ack_dropped(src, dst):
                    stats.acks_dropped += 1
                elif state is not None:
                    state.acked = True

            # Open transfers for every (held clique, path neighbor) pair.
            for node in path:
                if not inj.alive(node, rnd):
                    continue
                for clique in sorted(holding[node], key=_clique_key):
                    for nbr in neighbors[node]:
                        key = (node, nbr, clique)
                        if key not in transfers:
                            transfers[key] = _Transfer(next_send=rnd)

            # Sends (first attempts and retransmits) due this round.
            for (src, dst, clique), state in sorted(
                transfers.items(), key=transfer_key
            ):
                if (not state.pending or state.next_send > rnd
                        or not inj.alive(src, rnd)):
                    continue
                if state.attempts > self.max_retries:
                    state.dead = True
                    stats.expired += 1
                    incr("resilience.channel.undeliverable")
                    continue
                state.attempts += 1
                if state.attempts > 1:
                    stats.retransmits += 1
                stats.sent += 1
                messages += 1
                dropped, delay, duplicated = inj.data_fate(src, dst)
                if dropped or not inj.link_up(src, dst, rnd):
                    stats.dropped += 1
                else:
                    if delay:
                        stats.delayed += 1
                    inflight.append(_Flight(
                        deliver_at=rnd + 1 + delay, src=src, dst=dst,
                        clique=clique,
                    ))
                    if duplicated:
                        inflight.append(_Flight(
                            deliver_at=rnd + 2 + delay, src=src, dst=dst,
                            clique=clique, duplicate=True,
                        ))
                backoff = self.backoff_base * (2 ** (state.attempts - 1))
                state.next_send = (
                    rnd + self.ack_timeout + backoff
                    + inj.jitter(src, dst, state.attempts)
                )

            pending = bool(inflight) or any(
                state.pending and inj.alive_eventually(src, rnd + 1)
                for (src, _dst, _clique), state in transfers.items()
            )
            if not pending:
                break
            rnd += 1
            if rnd >= self.max_rounds:
                timed_out = True
                break

        missing = {
            str(node): len(target - holding[node]) for node in path
            if target - holding[node]
        }
        if not missing:
            status = CONVERGED
        elif timed_out:
            status = TIMED_OUT
        else:
            status = CONVERGED_PARTIAL
        source_up = inj.alive(flow.source, rnd)
        confirmed = status == CONVERGED and source_up

        # Fold what actually arrived into the shared views, in the same
        # canonical order as the lossless path.
        for node in path:
            view = views[node]
            own = set(view.local_cliques)
            for clique in sorted(holding[node], key=_clique_key):
                if clique not in own and clique not in view.received_cliques:
                    view.received_cliques.append(clique)

        undeliverable = sum(
            1 for state in transfers.values() if state.dead
        )
        return {
            "status": status,
            "confirmed": confirmed,
            "rounds": rnd,
            "messages": messages,
            "missing": missing,
            "undeliverable": undeliverable,
            "source_up": source_up,
        }
