"""Graceful degradation: never over-allocate, fall back to basic shares.

Two safety mechanisms for a 2PA-D run whose constraint exchange did not
fully converge (see :mod:`repro.resilience.channel`):

**Allocation ladder** (:func:`degraded_allocation`):

1. A flow whose source holds *every* constraint involving it (per-flow
   status ``"converged"``, source alive) solves its local LP exactly as
   in the fault-free protocol.
2. A flow with an incomplete or stale constraint view — or whose source
   is down — is clamped to its global basic share
   ``r̂_i = w_i B / Σ_j w_j v_j`` (Sec. II-D), the allocation the paper
   guarantees to be jointly feasible within a contending flow group.
3. A final *capacity governor* rescales shares so no maximal clique ever
   exceeds ``B`` (Eq. 6), whatever mixture steps 1–2 produced: for every
   overloaded clique ``k`` each member flow's scale factor is capped at
   ``B / load_k``, so after one pass every clique's load is ``<= B``
   (shares only shrink, and each member of clique ``k`` carries a factor
   ``<= B / load_k``).

**LP fallback chain** (:class:`ResilientLPBackend`): a drop-in LP backend
that tries the warm-started float simplex
(:class:`~repro.perf.warm.WarmLPCache`), then a cold float simplex
solve, then the exact-``Fraction`` reference solver from
:mod:`repro.verify.exact_lp`.  A stage *fails* when it raises or returns
a malformed solution (unknown status, or an "optimal" with non-finite
values); a clean ``optimal``/``infeasible``/``unbounded`` verdict is an
answer, not a failure.  Every demotion increments the
``resilience.lp.fallback`` counter (plus a per-stage counter), so chaos
run artifacts show exactly how often the float path had to be rescued.
"""

from __future__ import annotations

import logging
import math
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.allocation import AllocationResult
from ..core.contention import ContentionAnalysis
from ..core.fairness_defs import basic_shares
from ..lp.problem import LinearProgram, LPSolution
from ..lp.revised import solve_revised
from ..lp.simplex import solve_simplex
from ..obs.registry import incr
from ..obs.trace import span
from ..perf.warm import WarmLPCache

__all__ = [
    "ResilientLPBackend",
    "degraded_allocation",
    "enforce_clique_capacity",
    "global_basic_shares",
]

_LOG = logging.getLogger(__name__)

#: Strict-feasibility margin applied by the capacity governor so float
#: rounding in the rescaled loads cannot creep past B.
_GOVERNOR_MARGIN = 1.0 - 1e-12

#: Overload below this tolerance is float noise, not a violation — the
#: same tolerance :func:`repro.verify.invariants.check_clique_capacity`
#: uses, so the governor never rescales an allocation the checker would
#: already accept (keeping lossless channel runs bitwise identical to
#: the channel-free protocol).
_GOVERNOR_TOL = 1e-9


def global_basic_shares(analysis: ContentionAnalysis) -> Dict[str, float]:
    """Basic share of every flow, computed per contending flow group."""
    shares: Dict[str, float] = {}
    for group in analysis.groups:
        shares.update(basic_shares(group, analysis.scenario.capacity))
    return shares


def enforce_clique_capacity(
    analysis: ContentionAnalysis,
    shares: Mapping[str, float],
    capacity: Optional[float] = None,
    floors: Optional[Mapping[str, float]] = None,
) -> Tuple[Dict[str, float], bool]:
    """Scale ``shares`` down until every clique satisfies Eq. (6).

    Returns ``(safe_shares, clamped)``.  Without ``floors`` one pass
    suffices: every flow's factor is the minimum of ``B / load_k`` over
    its overloaded cliques, so each clique's rescaled load is at most
    ``B`` (factors never exceed 1 and shrinking a share can only reduce
    other cliques' loads).

    ``floors`` (flow-id -> Sec. II-D basic share) marks allocations the
    governor must not erode: a flow already at or below its floor is
    *exempt* from rescaling, and the remaining flows of an overloaded
    clique absorb the whole reduction.  A flow that would be pushed
    below its floor by that reduction is clamped *to* the floor, becomes
    exempt, and the pass repeats — each iteration either resolves every
    overload or exempts at least one more flow, so the loop terminates
    in at most ``len(shares) + 1`` iterations.  Only when the floors
    alone overfill a clique (impossible for shortcut-free flows,
    Sec. III-B, but reachable on arbitrary re-routed topologies) does
    the governor sacrifice floors for safety, scaling every member the
    old way and counting ``resilience.degrade.floor_sacrificed``.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    if floors is None:
        factor: Dict[str, float] = {fid: 1.0 for fid in shares}
        for clique in analysis.cliques:
            coeffs = analysis.clique_coefficients(clique)
            load = sum(n * shares.get(fid, 0.0)
                       for fid, n in coeffs.items())
            if load > b + _GOVERNOR_TOL:
                cap = b / load * _GOVERNOR_MARGIN
                for fid in coeffs:
                    if fid in factor:
                        factor[fid] = min(factor[fid], cap)
        if all(f == 1.0 for f in factor.values()):
            return dict(shares), False
        return {fid: shares[fid] * factor[fid] for fid in shares}, True

    current: Dict[str, float] = dict(shares)
    exempt = {
        fid for fid, s in current.items()
        if s <= floors.get(fid, 0.0) + _GOVERNOR_TOL
    }
    sacrificed: set = set()
    clamped = False
    for _ in range(len(current) + 1):
        factor = {fid: 1.0 for fid in current}
        overloaded = False
        for clique in analysis.cliques:
            coeffs = analysis.clique_coefficients(clique)
            load = sum(n * current.get(fid, 0.0)
                       for fid, n in coeffs.items())
            if load <= b + _GOVERNOR_TOL:
                continue
            overloaded = True
            exempt_load = sum(
                n * current.get(fid, 0.0)
                for fid, n in coeffs.items() if fid in exempt
            )
            headroom = b - exempt_load
            scalable = load - exempt_load
            if scalable <= 0.0 or headroom <= 0.0:
                # The floors themselves overfill this clique: safety
                # (Eq. 6) trumps the floor guarantee, old-style scaling.
                incr("resilience.degrade.floor_sacrificed")
                _LOG.debug(
                    "basic-share floors overfill a clique; scaling all "
                    "members including floor-clamped flows"
                )
                cap = b / load * _GOVERNOR_MARGIN
                for fid in coeffs:
                    if fid in factor:
                        factor[fid] = min(factor[fid], cap)
                        exempt.discard(fid)
                        sacrificed.add(fid)
                continue
            cap = headroom / scalable * _GOVERNOR_MARGIN
            for fid in coeffs:
                if fid in factor and fid not in exempt:
                    factor[fid] = min(factor[fid], cap)
        if not overloaded:
            break
        clamped = True
        newly_exempt = False
        for fid, f in factor.items():
            if f == 1.0:
                continue
            scaled = current[fid] * f
            floor = floors.get(fid, 0.0)
            if (fid not in exempt and fid not in sacrificed
                    and scaled < floor):
                # Never push a flow below Sec. II-D: clamp to the floor
                # and let the remaining flows absorb the next pass.
                current[fid] = floor
                exempt.add(fid)
                newly_exempt = True
            else:
                current[fid] = scaled
        if not newly_exempt:
            # Every overloaded clique was fully rescaled (or floor-
            # sacrificed): loads are now <= B, one more loop confirms.
            continue
    return current, clamped


def degraded_allocation(allocator) -> AllocationResult:
    """Conservative allocation for a partially converged 2PA-D run.

    ``allocator`` is a :class:`~repro.core.distributed.DistributedAllocator`
    whose views/convergence reflect a finished (possibly faulted)
    propagation.  Confirmed flows keep the protocol's local-LP share;
    unconfirmed flows are clamped to their global basic share; the
    capacity governor then guarantees Eq. (6) for the mixture.
    """
    analysis = allocator.analysis
    scenario = allocator.scenario
    per_flow = allocator.convergence.get("per_flow", {})
    basic = global_basic_shares(analysis)

    shares: Dict[str, float] = {}
    degraded: List[str] = []
    for flow in scenario.flows:
        fid = flow.flow_id
        info = per_flow.get(fid, {})
        if info.get("confirmed"):
            try:
                problem = allocator.problems.get(flow.source)
                if problem is None:
                    problem = allocator.solve_local(flow.source)
                shares[fid] = problem.solution[f"r_{fid}"]
                continue
            except Exception as exc:
                incr("resilience.degrade.lp_error")
                _LOG.debug(
                    "local LP at %r failed under degradation (%s); "
                    "clamping flow %s to its basic share",
                    flow.source, exc, fid,
                )
        shares[fid] = basic[fid]
        degraded.append(fid)
        incr("resilience.degrade.basic_clamp")

    safe, clamped = enforce_clique_capacity(analysis, shares, floors=basic)
    if clamped:
        incr("resilience.degrade.capacity_clamp")
        _LOG.debug("capacity governor rescaled a degraded allocation")
    if degraded:
        _LOG.debug("flows clamped to basic shares: %s", degraded)
    return AllocationResult(
        "distributed-degraded", safe, scenario.capacity
    )


class ResilientLPBackend:
    """LP backend with a warm → cold-float → exact-Fraction fallback chain.

    Usable anywhere a ``backend`` is accepted (it is a callable
    ``LinearProgram -> LPSolution``)::

        backend = ResilientLPBackend()
        DistributedAllocator(scenario, backend=backend).run()

    ``fallbacks`` counts demotions; the same number lands on the
    ``resilience.lp.fallback`` counter of the active metrics registry.

    ``backend`` names the float solver the warm and cold stages run
    (``"simplex"`` or ``"revised"``, or any warm-startable callable):
    the warm stage's :class:`WarmLPCache` is built over it (unless an
    explicit pre-configured ``cache`` is supplied) and the cold stage
    calls it basis-free.  The exact-``Fraction`` stage is backend-
    independent ground truth either way.
    """

    def __init__(self, cache: Optional[WarmLPCache] = None,
                 backend: str = "simplex") -> None:
        if backend not in ("simplex", "revised"):
            raise ValueError(
                f"ResilientLPBackend backend must be 'simplex' or "
                f"'revised', got {backend!r}"
            )
        self.backend = backend
        if cache is not None:
            self.cache = cache
        elif backend == "revised":
            # Late global lookup (not a bound reference) so tests can
            # monkeypatch ``degrade.solve_revised`` to force demotions,
            # mirroring the dense path's ``degrade.solve_simplex`` seam.
            self.cache = WarmLPCache(
                solve_fn=lambda lp, start_basis=None:
                    solve_revised(lp, start_basis=start_basis)
            )
        else:
            self.cache = WarmLPCache()
        self.fallbacks = 0
        #: Stage name -> times that stage produced the accepted solution.
        self.served: Dict[str, int] = {"warm": 0, "cold": 0, "exact": 0}

    # Stages are resolved late so tests can monkeypatch the underlying
    # solvers to force demotions down the chain.
    def _stages(self) -> List[Tuple[str, Callable[[LinearProgram],
                                                  LPSolution]]]:
        if self.backend == "revised":
            cold: Callable[[LinearProgram], LPSolution] = (
                lambda lp: solve_revised(lp)
            )
        else:
            cold = lambda lp: solve_simplex(lp)  # noqa: E731
        return [
            ("warm", self.cache.solver),
            ("cold", cold),
            ("exact", self._solve_exact),
        ]

    @staticmethod
    def _solve_exact(lp: LinearProgram) -> LPSolution:
        from ..verify.exact_lp import solve_exact
        from ..verify.oracles import _relaxed

        solution = solve_exact(lp)
        if solution.status == "infeasible":
            # Float LP *data* can be exactly infeasible by one ulp (e.g. a
            # pinned objective value rounded up past the rational optimum)
            # even though the real-number LP is feasible; the float stages
            # absorb that in their epsilons.  Re-solve with every bound
            # slackened by 1e-9 — the same borderline handling the
            # float-vs-exact oracle applies — so the exact stage behaves
            # as a drop-in for a float backend.
            relaxed = solve_exact(_relaxed(lp, 1e-9))
            if relaxed.is_optimal:
                incr("resilience.lp.exact_relaxed")
                solution = relaxed
        return solution.to_lp_solution()

    @staticmethod
    def _well_formed(solution: LPSolution) -> bool:
        if solution.status not in ("optimal", "infeasible", "unbounded"):
            return False
        if solution.status == "optimal":
            if not all(math.isfinite(v) for v in solution.values.values()):
                return False
            if not math.isfinite(solution.objective):
                return False
        return True

    def __call__(self, lp: LinearProgram) -> LPSolution:
        last_error: Optional[BaseException] = None
        with span("lp.resilient") as chain_span:
            for name, fn in self._stages():
                with span(f"lp.resilient.{name}") as stage_span:
                    try:
                        solution = fn(lp)
                    except Exception as exc:
                        last_error = exc
                        solution = None
                    ok = (solution is not None
                          and self._well_formed(solution))
                    stage_span.tag(served=ok)
                if ok:
                    self.served[name] += 1
                    chain_span.tag(served_by=name)
                    return solution
                self.fallbacks += 1
                incr("resilience.lp.fallback")
                incr(f"resilience.lp.fallback.{name}")
                _LOG.debug(
                    "LP backend stage %r failed (%s); falling back",
                    name,
                    last_error if last_error is not None
                    else "malformed solution",
                )
            chain_span.tag(served_by="none")
        raise RuntimeError(
            f"every LP backend stage failed; last error: {last_error!r}"
        )
