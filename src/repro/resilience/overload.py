"""Overload protection: deadline-bounded epochs and graduated shedding.

A production allocator must stay *live* and *Eq. (6)-safe* when offered
load exceeds what it can solve in time.  This layer wraps an
:class:`~repro.resilience.runtime.AllocatorRuntime` with two mechanisms:

**Deadline-bounded epochs.**  :class:`EpochDeadline` is a monotonic-clock
watchdog armed at the start of every epoch and consulted through the
runtime's ``watchdog`` seam (every phase boundary plus every per-flow
admission probe).  On budget breach it raises
:class:`EpochDeadlineExceeded`; nothing has been committed at that point
(the ``advance`` contract), so the wrapper rolls back the admission log,
commits the **last validated allocation** unchanged via
``commit_carryover`` (status ``deadline-breach``), defers the epoch's
events to the next epoch, marks every active flow stale, and records the
breach — ``runtime.epoch.deadline_breach`` plus a
``runtime.epoch.staleness_age`` observation per stale flow, with a
paired entry in :attr:`OverloadRuntime.staleness_records`.  Every breach
has its record; the fuzzer asserts exactly that invariant.

**Graduated shedding ladder.**  Consecutive breaches escalate through
rungs, each trading work for liveness while Sec. II-D floors stay
guaranteed for whatever remains admitted:

========  ==============  ==================================================
rung      name            behaviour
========  ==============  ==================================================
0         ``normal``      full pipeline
1         ``queue-shed``  aggressive age eviction of the bounded admission
                          queue (``shed_queue_age`` overrides the config
                          bound)
2         ``freeze``      admission frozen: no feasibility probes, arrivals
                          queue unprobed (``REASON_OVERLOAD``); re-solves
                          still run, clean components served from the memo
3         ``clamp``       LP skipped entirely: active flows clamped to
                          their Sec. II-D basic shares through the
                          ``degrade.py`` governor (status
                          ``overload-clamp``)
========  ==============  ==================================================

``recover_after`` consecutive clean epochs step the ladder down one rung
at a time.  With no deadline configured and no breach, the wrapper is a
pass-through: runtime results are byte-identical to an unwrapped run
(the ladder sits at ``normal`` and every flag defaults off).

The wrapper's own state (rung, streaks, stale ages, deferred events) is
campaign-level and deliberately not checkpointed — a restored runtime
starts at rung ``normal`` and re-earns its ladder position.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.events import emit_event
from ..obs.registry import incr, observe, set_gauge
from ..traffic.openloop import ArrivalTrace
from .epochs import ChurnEvent
from .faults import ArrivalBurst
from .runtime import AllocatorRuntime, EpochRecord

__all__ = [
    "RUNG_NAMES",
    "EpochDeadline",
    "EpochDeadlineExceeded",
    "OverloadConfig",
    "OverloadRuntime",
]

#: Shedding-ladder rungs, mild to drastic.
RUNG_NORMAL, RUNG_QUEUE, RUNG_FREEZE, RUNG_CLAMP = 0, 1, 2, 3
RUNG_NAMES = ("normal", "queue-shed", "freeze", "clamp")


class EpochDeadlineExceeded(Exception):
    """An epoch exceeded its solve budget at watchdog point ``point``."""

    def __init__(self, point: str, budget_ms: float,
                 elapsed_ms: float) -> None:
        super().__init__(
            f"epoch deadline exceeded at {point!r}: "
            f"{elapsed_ms:.3f} ms > {budget_ms:.3f} ms budget"
        )
        self.point = point
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms


class EpochDeadline:
    """Monotonic-clock watchdog for one epoch's solve budget.

    ``clock`` is injectable (default ``time.monotonic``) so tests drive
    breaches deterministically with a fake clock.  ``check`` is the
    callable wired into ``AllocatorRuntime.watchdog``; it raises
    :class:`EpochDeadlineExceeded` once elapsed time exceeds the budget.
    A ``budget_ms`` of ``None`` never fires.
    """

    def __init__(self, budget_ms: Optional[float],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.budget_ms = budget_ms
        self.clock = clock if clock is not None else time.monotonic
        self._t0: Optional[float] = None

    def arm(self) -> None:
        self._t0 = self.clock()

    def elapsed_ms(self) -> float:
        if self._t0 is None:
            return 0.0
        return (self.clock() - self._t0) * 1e3

    def check(self, point: str) -> None:
        if self.budget_ms is None or self._t0 is None:
            return
        elapsed = self.elapsed_ms()
        if elapsed > self.budget_ms:
            raise EpochDeadlineExceeded(point, self.budget_ms, elapsed)


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the overload-protection wrapper.

    ``deadline_ms=None`` disables the watchdog (the ladder can then only
    move via injected stalls).  ``freeze_after``/``clamp_after`` are
    consecutive-breach thresholds for rungs 2 and 3 (one breach always
    reaches rung 1); ``recover_after`` consecutive clean epochs step
    back down one rung.  ``shed_queue_age`` is the tightened queue-age
    bound rungs >= 1 apply.  ``default_duration`` is the service time
    assumed for admitted flows whose arrival carried none.
    """

    deadline_ms: Optional[float] = None
    shed_queue_age: int = 2
    freeze_after: int = 2
    clamp_after: int = 3
    recover_after: int = 2
    default_duration: int = 3

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        if not 1 <= self.freeze_after <= self.clamp_after:
            raise ValueError(
                "need 1 <= freeze_after <= clamp_after for a monotone ladder"
            )
        if self.recover_after < 1:
            raise ValueError("recover_after must be positive")


class OverloadRuntime:
    """Deadline-watchdogged, load-shedding wrapper around one runtime.

    Drive it with :meth:`advance` (one epoch of churn events) or
    :meth:`run_trace` (a whole open-loop :class:`ArrivalTrace`).  The
    wrapper owns the watchdog, the shedding ladder, per-flow staleness
    ages, and an ``overload_journal`` of per-epoch ladder state; the
    wrapped runtime's :class:`EpochRecord` schema is untouched, which is
    what keeps unstressed runs bitwise identical.

    ``force_breach_epochs`` lists epoch indices that run with an
    already-expired watchdog — the ``--inject-fault`` proof that the
    breach machinery bites: the very first watchdog tick of such an
    epoch raises, and the breach must surface in the records.
    """

    def __init__(
        self,
        runtime: AllocatorRuntime,
        config: Optional[OverloadConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.runtime = runtime
        self.config = config if config is not None else OverloadConfig()
        self.clock = clock
        self.deadline = EpochDeadline(self.config.deadline_ms, clock=clock)
        self.rung = RUNG_NORMAL
        self.breach_streak = 0
        self.clean_streak = 0
        self.stale_age: Dict[str, int] = {}
        self.deferred: List[ChurnEvent] = []
        self.staleness_records: List[Dict[str, object]] = []
        self.overload_journal: List[Dict[str, object]] = []
        self.epoch_latency_ms: List[float] = []
        self.max_queue_depth = 0
        self.force_breach_epochs: Set[int] = set()
        self._service_until: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def advance(self, events: Sequence[ChurnEvent] = ()) -> EpochRecord:
        """One watchdogged epoch; always commits (breach or not)."""
        events = list(self.deferred) + list(events)
        self.deferred = []
        epoch = self.runtime.epoch + 1
        rung = self.rung
        snapshot = self.runtime.admission.snapshot()
        if rung >= RUNG_QUEUE:
            self.runtime.admission.evict_aged(
                epoch, max_age=self.config.shed_queue_age
            )
        if epoch in self.force_breach_epochs:
            # Injected stall: arm an already-expired watchdog so the
            # breach fires organically at the epoch's first tick.
            stall = EpochDeadline(-1.0, clock=self.clock)
            stall.arm()
            self.runtime.watchdog = stall.check
        else:
            self.runtime.watchdog = self.deadline.check
        self.deadline.arm()
        t0 = time.perf_counter()
        breached = False
        breach_point = ""
        try:
            record = self.runtime.advance(
                events,
                freeze_admission=rung >= RUNG_FREEZE,
                clamp_basic=rung >= RUNG_CLAMP,
            )
        except EpochDeadlineExceeded as exc:
            breached = True
            breach_point = exc.point
            # Nothing was committed; drop the aborted epoch's admission
            # decisions so the log matches the committed history.
            self.runtime.admission.restore(snapshot)
            record = self._commit_breach(epoch, events, exc)
        finally:
            self.runtime.watchdog = None
        self.epoch_latency_ms.append((time.perf_counter() - t0) * 1e3)
        self._after_epoch(record, breached, rung, breach_point)
        return record

    def _commit_breach(self, epoch: int, events: List[ChurnEvent],
                       exc: EpochDeadlineExceeded) -> EpochRecord:
        rt = self.runtime
        # The epoch's events were never applied — they retry next epoch,
        # so churn is delayed, never lost.
        self.deferred = list(events)
        ages: List[int] = []
        for fid in sorted(rt.active):
            self.stale_age[fid] = self.stale_age.get(fid, 0) + 1
            ages.append(self.stale_age[fid])
            observe("runtime.epoch.staleness_age", self.stale_age[fid])
        incr("runtime.epoch.deadline_breach")
        staleness = {
            "epoch": epoch,
            "point": exc.point,
            "budget_ms": exc.budget_ms,
            "stale_flows": sorted(rt.active),
            "age_max": max(ages) if ages else 0,
            "age_mean": (sum(ages) / len(ages)) if ages else 0.0,
            "deferred_events": len(self.deferred),
        }
        self.staleness_records.append(staleness)
        emit_event(
            "epoch.deadline_breach",
            epoch=epoch,
            point=exc.point,
            stale_flows=len(ages),
            age_max=staleness["age_max"],
            deferred_events=len(self.deferred),
        )
        record = EpochRecord(
            epoch=epoch,
            events=[],
            active=sorted(rt.active),
            shares={fid: rt.shares[fid] for fid in sorted(rt.shares)},
            status="deadline-breach",
            queued=list(rt.admission.waiting),
        )
        rt.commit_carryover(record)
        return record

    def _after_epoch(self, record: EpochRecord, breached: bool,
                     rung_used: int, breach_point: str) -> None:
        if breached:
            self.breach_streak += 1
            self.clean_streak = 0
            target = RUNG_QUEUE
            if self.breach_streak >= self.config.freeze_after:
                target = RUNG_FREEZE
            if self.breach_streak >= self.config.clamp_after:
                target = RUNG_CLAMP
            if target > self.rung:
                self.rung = target
                incr("runtime.overload.escalations")
                emit_event("overload.rung", epoch=record.epoch,
                           rung=RUNG_NAMES[self.rung], direction="up")
        else:
            # Any committed non-breach epoch re-validated the allocation
            # (clamp included), so active flows are fresh again.
            for fid in record.active:
                self.stale_age[fid] = 0
            for fid in [f for f in self.stale_age
                        if f not in self.runtime.active]:
                del self.stale_age[fid]
            self.breach_streak = 0
            self.clean_streak += 1
            if (self.rung > RUNG_NORMAL
                    and self.clean_streak >= self.config.recover_after):
                self.rung -= 1
                self.clean_streak = 0
                incr("runtime.overload.deescalations")
                emit_event("overload.rung", epoch=record.epoch,
                           rung=RUNG_NAMES[self.rung], direction="down")
        depth = len(self.runtime.admission.waiting)
        self.max_queue_depth = max(self.max_queue_depth, depth)
        set_gauge("runtime.overload.rung", self.rung)
        self.overload_journal.append({
            "epoch": record.epoch,
            "rung": RUNG_NAMES[rung_used],
            "breached": breached,
            "breach_point": breach_point,
            "status": record.status,
            "queue_depth": depth,
            "stale_flows": sum(1 for a in self.stale_age.values() if a > 0),
        })

    # ------------------------------------------------------------------
    # Open-loop trace driver
    # ------------------------------------------------------------------
    def run_trace(
        self,
        trace: ArrivalTrace,
        bursts: Sequence[ArrivalBurst] = (),
    ) -> List[EpochRecord]:
        """Replay an open-loop trace (plus optional adversarial bursts).

        Per epoch: arrivals become ``flow-up`` events, flows whose
        heavy-tailed service time has elapsed become ``flow-down``
        events, and any :class:`ArrivalBurst` scheduled here offers the
        first ``count`` flows of the sorted universe as extras.  Service
        clocks start at *admission* (a queued flow serves its full time
        once it finally gets in); re-offers of already-active flows are
        deduplicated by the runtime's APPLY phase.
        """
        universe = sorted(f.flow_id for f in self.runtime.scenario.flows)
        pending_duration: Dict[str, int] = {}
        burst_by_epoch: Dict[int, List[ArrivalBurst]] = {}
        for burst in bursts:
            burst_by_epoch.setdefault(burst.epoch, []).append(burst)
        records: List[EpochRecord] = []
        for epoch in range(self.runtime.epoch + 1, trace.epochs):
            events: List[ChurnEvent] = []
            for arrival in trace.arrivals_at(epoch):
                pending_duration[arrival.flow] = arrival.duration
                events.append(ChurnEvent(epoch, "flow-up",
                                         flow=arrival.flow))
            for burst in burst_by_epoch.get(epoch, ()):
                for fid in universe[: burst.count]:
                    pending_duration.setdefault(fid, burst.duration)
                    events.append(ChurnEvent(epoch, "flow-up", flow=fid))
            for fid in sorted(self._service_until):
                if (self._service_until[fid] <= epoch
                        and fid in self.runtime.active):
                    events.append(ChurnEvent(epoch, "flow-down", flow=fid))
            record = self.advance(events)
            rt = self.runtime
            for fid in [f for f in self._service_until
                        if f not in rt.active]:
                del self._service_until[fid]
            for fid in rt.active:
                if fid not in self._service_until:
                    start = rt.admitted_epoch.get(fid, record.epoch)
                    duration = pending_duration.pop(
                        fid, self.config.default_duration
                    )
                    self._service_until[fid] = start + max(1, duration)
            records.append(record)
        return records

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Summary of the run so far (campaign/bench reporting)."""
        from ..obs.registry import weighted_percentile

        ordered = sorted(self.epoch_latency_ms)
        breaches = sum(1 for row in self.overload_journal if row["breached"])
        return {
            "epochs": len(self.overload_journal),
            "breaches": breaches,
            "rung_max": (
                max((RUNG_NAMES.index(str(row["rung"]))
                     for row in self.overload_journal), default=0)
            ),
            "max_queue_depth": self.max_queue_depth,
            "stale_age_max": max(
                (int(r["age_max"]) for r in self.staleness_records),
                default=0,
            ),
            "latency_p50_ms": (
                weighted_percentile(ordered, 50.0) if ordered else 0.0
            ),
            "latency_p99_ms": (
                weighted_percentile(ordered, 99.0) if ordered else 0.0
            ),
        }
