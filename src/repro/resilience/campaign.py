"""Chaos campaigns: sweep fault plans, check the safety invariants.

One *chaos case* runs the full resilience stack on one scenario under
one :class:`~repro.resilience.faults.FaultPlan`:

1. lossy 2PA-D (:class:`~repro.resilience.channel.UnreliableChannel`
   over a seeded injector) with the degradation ladder and the
   :class:`~repro.resilience.degrade.ResilientLPBackend` fallback chain;
2. the **safety invariants**, via the existing checkers from
   :mod:`repro.verify.invariants`:

   * the (possibly degraded) allocation never exceeds any clique
     capacity — Eq. (6), under *every* fault plan;
   * the run reports a valid convergence status instead of raising;
   * after fault healing (a fresh lossless run), every flow is restored
     to at least its basic share (Sec. II-D) and Eq. (6) still holds.

:func:`run_chaos` sweeps ``cases`` random scenarios (the verification
fuzzer's generator, so case ``i`` of seed ``s`` is the same topology the
``verify`` harness would draw) across a grid of loss rates, tallies
statuses and check outcomes, and records any violation together with the
serialized scenario *and* fault plan so it can be replayed.  The
``repro-experiments chaos`` subcommand drives exactly this code path and
emits the result as a :mod:`repro.obs` run artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.contention import ContentionAnalysis
from ..core.distributed import DistributedAllocator
from ..core.model import Scenario
from ..obs.registry import incr, phase_timer
from ..perf.parallel import ParallelSweep
from ..scenarios.io import scenario_to_dict
from ..sim.rng import RngRegistry
from ..verify.invariants import (
    check_basic_fairness,
    check_clique_capacity,
)
from .channel import CONVERGED, STATUS_ORDER, UnreliableChannel
from .degrade import (
    ResilientLPBackend,
    enforce_clique_capacity,
    global_basic_shares,
)
from ..traffic.openloop import (
    ArrivalTrace,
    OpenLoopConfig,
    draw_arrival_trace,
)
from .admission import ADMIT, REASON_OK
from .epochs import ChurnTimeline
from .faults import (
    FaultInjector,
    FaultPlan,
    WorkerCrash,
    WorkerFaultInjector,
)
from .overload import OverloadConfig, OverloadRuntime
from .runtime import AllocatorRuntime, RuntimeConfig

__all__ = [
    "CaseChecks",
    "ChaosViolation",
    "ChaosReport",
    "ChurnCase",
    "ChurnViolation",
    "ChurnReport",
    "OverloadCase",
    "OverloadViolation",
    "OverloadReport",
    "run_chaos_case",
    "run_chaos",
    "run_churn_case",
    "run_churn",
    "measure_sustainable_rate",
    "run_overload_case",
    "run_overload",
]

DEFAULT_LOSS_RATES = (0.0, 0.1, 0.3)
DEFAULT_CHURN_LOSS_RATES = (0.0, 0.2)


@dataclass
class CaseChecks:
    """Everything one chaos case produced, checks included."""

    status: str
    checks: List[Tuple[str, bool, str]]
    shares: Dict[str, float] = field(default_factory=dict)
    healed_shares: Dict[str, float] = field(default_factory=dict)
    degraded_flows: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return all(ok for _name, ok, _details in self.checks)

    def failed_checks(self) -> List[Tuple[str, str]]:
        return [(name, details) for name, ok, details in self.checks
                if not ok]


def run_chaos_case(
    scenario: Scenario,
    plan: FaultPlan,
    registry: RngRegistry,
    prefix: Tuple = ("chaos", "channel"),
    analysis: Optional[ContentionAnalysis] = None,
    healed_shares: Optional[Dict[str, float]] = None,
    max_retries: int = 4,
    max_rounds: int = 256,
    fault: Optional[Callable[[Dict[str, float], float],
                             Dict[str, float]]] = None,
) -> CaseChecks:
    """One scenario under one fault plan, safety-checked end to end.

    ``fault`` optionally post-processes the degraded allocation before
    the capacity check — the hook that proves the harness catches a bad
    allocation (mirrors the verification fuzzer's ``--inject-fault``).
    ``healed_shares`` may carry a precomputed lossless run (the healing
    baseline is plan-independent); when omitted it is computed here.
    """
    if analysis is None:
        analysis = ContentionAnalysis(scenario)
    checks: List[Tuple[str, bool, str]] = []

    injector = FaultInjector(plan, registry, prefix=prefix)
    channel = UnreliableChannel(
        injector, max_retries=max_retries, max_rounds=max_rounds
    )
    backend = ResilientLPBackend()
    try:
        with phase_timer("resilience.case"):
            allocator = DistributedAllocator(
                scenario, backend=backend, analysis=analysis,
                channel=channel,
            )
            result = allocator.run()
    except Exception as exc:
        incr("resilience.case_raised")
        return CaseChecks(
            status="raised",
            checks=[("chaos.no_raise", False,
                     f"{type(exc).__name__}: {exc}")],
            error=f"{type(exc).__name__}: {exc}",
        )
    checks.append(("chaos.no_raise", True, ""))

    status = str(allocator.convergence.get("status", ""))
    checks.append((
        "chaos.status_valid",
        status in STATUS_ORDER,
        "" if status in STATUS_ORDER
        else f"unexpected status {status!r}",
    ))

    shares = dict(result.shares)
    if fault is not None:
        shares = fault(shares, scenario.capacity)
    res = check_clique_capacity(analysis, shares)
    checks.append(("chaos.clique_capacity", res.ok, res.details))

    if healed_shares is None:
        healed_shares, _clamped = enforce_clique_capacity(
            analysis,
            DistributedAllocator(scenario, analysis=analysis).run().shares,
            floors=global_basic_shares(analysis),
        )
    res = check_basic_fairness(analysis, healed_shares)
    checks.append(("chaos.healed_basic_fairness", res.ok, res.details))
    res = check_clique_capacity(analysis, healed_shares)
    checks.append(("chaos.healed_clique_capacity", res.ok, res.details))

    per_flow = allocator.convergence.get("per_flow", {})
    degraded = sum(
        1 for info in per_flow.values() if not info.get("confirmed")
    )
    return CaseChecks(
        status=status,
        checks=checks,
        shares=shares,
        healed_shares=dict(healed_shares),
        degraded_flows=degraded,
    )


@dataclass
class ChaosViolation:
    """One safety-invariant violation, with everything needed to replay."""

    case: int
    loss: float
    check: str
    details: str
    scenario: Dict[str, object]
    fault_plan: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "loss": self.loss,
            "check": self.check,
            "details": self.details,
            "scenario": self.scenario,
            "fault_plan": self.fault_plan,
        }


@dataclass
class ChaosReport:
    """Aggregate of one chaos campaign, renderable and artifact-ready."""

    cases: int
    seed: int
    loss_rates: Tuple[float, ...]
    statuses: Dict[str, int] = field(default_factory=dict)
    checks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    degraded_flows: int = 0
    violations: List[ChaosViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def tally(self, case: CaseChecks) -> None:
        self.statuses[case.status] = self.statuses.get(case.status, 0) + 1
        self.degraded_flows += case.degraded_flows
        for name, ok, _details in case.checks:
            row = self.checks.setdefault(name, {"pass": 0, "fail": 0})
            row["pass" if ok else "fail"] += 1
            incr(f"resilience.{name}.{'pass' if ok else 'fail'}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "loss_rates": list(self.loss_rates),
            "ok": self.ok,
            "statuses": dict(sorted(self.statuses.items())),
            "checks": {k: dict(v) for k, v in sorted(self.checks.items())},
            "degraded_flows": self.degraded_flows,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"repro chaos: {self.cases} case(s) x "
            f"{len(self.loss_rates)} loss rate(s) "
            f"{tuple(self.loss_rates)}, seed {self.seed}",
            "",
            f"  {'convergence status':<28} {'runs':>6}",
        ]
        for status in sorted(self.statuses):
            lines.append(f"  {status:<28} {self.statuses[status]:>6}")
        lines.append(
            f"  {'flows degraded to basic':<28} {self.degraded_flows:>6}"
        )
        lines.append("")
        lines.append(f"  {'safety check':<28} {'pass':>6} {'fail':>6}")
        for name in sorted(self.checks):
            row = self.checks[name]
            lines.append(
                f"  {name:<28} {row['pass']:>6} {row['fail']:>6}"
            )
        lines.append("")
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            for v in self.violations:
                lines.append(
                    f"  case {v.case} @ loss {v.loss:g}: {v.check}"
                )
                if v.details:
                    lines.append(f"    {v.details}")
        else:
            lines.append("all safety invariants held")
        return "\n".join(lines)


def _chaos_case_task(
    payload: Tuple[int, int, Tuple[float, ...], float, int, int, bool]
) -> List[Tuple[float, CaseChecks, Dict[str, object], Dict[str, object]]]:
    """One chaos case index across every loss rate (pool-friendly).

    A pure function of its payload: the registry is rebuilt from the
    seed, so the per-message fault draws are identical whether the case
    runs in the parent or in a pool worker.
    """
    seed, index, rates, crash_prob, max_retries, max_rounds, \
        inject_fault = payload
    from ..verify.fuzzer import generate_scenario, inject_share_fault

    fault = inject_share_fault if inject_fault else None
    registry = RngRegistry(seed)
    scenario = generate_scenario(registry, index)
    analysis = ContentionAnalysis(scenario)
    # The healing baseline is a fresh fault-free run *through the
    # resilience stack*: plain 2PA-D local-LP shares plus the
    # capacity governor — exactly what a lossless channel produces.
    healed, _clamped = enforce_clique_capacity(
        analysis,
        DistributedAllocator(scenario, analysis=analysis).run().shares,
        floors=global_basic_shares(analysis),
    )
    out: List[Tuple[float, CaseChecks, Dict[str, object],
                    Dict[str, object]]] = []
    for loss in rates:
        plan = FaultPlan.draw(
            registry.stream(("chaos", index, repr(loss))),
            nodes=scenario.network.nodes,
            loss=loss,
            crash_prob=crash_prob,
        )
        case = run_chaos_case(
            scenario, plan, registry,
            prefix=("chaos", index, repr(loss), "channel"),
            analysis=analysis,
            healed_shares=healed,
            max_retries=max_retries,
            max_rounds=max_rounds,
            fault=fault,
        )
        out.append((loss, case, scenario_to_dict(scenario),
                    plan.to_dict()))
    return out


def run_chaos(
    cases: int = 25,
    seed: int = 0,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    crash_prob: float = 0.2,
    max_retries: int = 4,
    max_rounds: int = 256,
    max_violations: int = 5,
    inject_fault: bool = False,
    jobs: Optional[int] = 1,
) -> ChaosReport:
    """Sweep ``cases`` scenarios x ``loss_rates`` fault plans.

    Scenario ``i`` comes from the verification fuzzer's generator (same
    stream layout, so chaos case ``i`` and verify case ``i`` share a
    topology); the fault plan for ``(i, loss)`` is drawn from stream
    ``("chaos", i, loss)``.  ``inject_fault`` perturbs every degraded
    allocation so a healthy harness must *fail* — used to prove the
    checkers bite (the report's ``ok`` stays False-on-violation
    semantics; callers invert it, as the verify CLI does).

    ``jobs > 1`` fans the independent cases across a process pool
    (:class:`~repro.perf.parallel.ParallelSweep`); results merge in
    case order, so the report is identical at any job count — results
    past the ``max_violations`` cut-off are discarded during
    aggregation exactly as the serial sweep would never have computed
    them.
    """
    rates = tuple(float(r) for r in loss_rates)
    report = ChaosReport(cases=cases, seed=seed, loss_rates=rates)
    tasks = [
        (seed, index, rates, crash_prob, max_retries, max_rounds,
         inject_fault)
        for index in range(cases)
    ]
    results = ParallelSweep(jobs).map(_chaos_case_task, tasks)
    for index, case_results in enumerate(results):
        for loss, case, scenario_doc, plan_doc in case_results:
            incr("resilience.cases")
            report.tally(case)
            for name, details in case.failed_checks():
                report.violations.append(ChaosViolation(
                    case=index,
                    loss=loss,
                    check=name,
                    details=details,
                    scenario=scenario_doc,
                    fault_plan=plan_doc,
                ))
            if len(report.violations) >= max_violations:
                return report
    return report


# ----------------------------------------------------------------------
# Churn campaigns: the long-lived runtime under seeded timelines
# ----------------------------------------------------------------------

#: Per-epoch solver statuses from most to least healthy; a case reports
#: the worst status any of its committed epochs produced.
_EPOCH_SEVERITY = (
    "empty", "converged", "converged-partial", "deadline-breach",
    "overload-clamp", "timed-out", "fallback-basic",
)


def _worst_epoch_status(statuses: Sequence[str]) -> str:
    worst = "empty"
    for status in statuses:
        rank = (_EPOCH_SEVERITY.index(status)
                if status in _EPOCH_SEVERITY else len(_EPOCH_SEVERITY))
        if rank > _EPOCH_SEVERITY.index(worst):
            worst = status if status in _EPOCH_SEVERITY else status
            if status not in _EPOCH_SEVERITY:
                return status
    return worst


class _SimulatedCrash(BaseException):
    """Raised by the crash hook; BaseException so no handler eats it."""


@dataclass
class ChurnCase(CaseChecks):
    """One churn case: :class:`CaseChecks` plus journal aggregates."""

    epochs_run: int = 0
    epoch_statuses: Dict[str, int] = field(default_factory=dict)
    admissions: Dict[str, int] = field(default_factory=dict)


def _canonical_state(runtime: AllocatorRuntime) -> str:
    return json.dumps(runtime.state_payload(), sort_keys=True,
                      separators=(",", ":"))


def run_churn_case(
    scenario: Scenario,
    timeline: ChurnTimeline,
    seed: int = 0,
    loss: float = 0.0,
    crash_prob: float = 0.0,
    hysteresis: Optional[float] = None,
    stream_prefix: Tuple = ("churn",),
    fault: Optional[Callable[[Dict[str, float], float],
                             Dict[str, float]]] = None,
    crash_restore: bool = True,
    mode: Optional[str] = None,
    sharded: bool = True,
    jobs: Optional[int] = 1,
) -> ChurnCase:
    """One scenario through one churn timeline, checked end to end.

    The runtime runs the whole timeline (``mode`` defaults to
    distributed 2PA-D when the channel is lossy, centralized otherwise),
    then five properties are checked:

    * ``churn.no_raise`` — the runtime survives the timeline;
    * ``churn.epoch_checks`` — every committed epoch's recorded Eq. (6)
      and basic-floor checks passed;
    * ``churn.admission_reasoned`` — every non-admit decision carries a
      machine-readable reason;
    * ``churn.final_clique_capacity`` / ``churn.final_basic_floor`` —
      the final allocation re-checked from scratch (the ``fault`` hook
      perturbs it first when the harness itself is under test);
    * ``churn.crash_restore_identical`` — a second runtime is crashed
      mid-timeline (after epoch ``epochs // 2`` is staged but before it
      commits), restored from its last checkpoint, and resumed; its
      final state payload must be *bitwise identical* to the
      uninterrupted run's.

    ``sharded`` / ``jobs`` configure the runtime's component-sharded
    centralized solver (``jobs`` sizes its process pool; results are
    bitwise identical at any job count).
    """
    if mode is None:
        mode = "distributed" if (loss > 0.0 or crash_prob > 0.0) \
            else "centralized"

    def config(checkpoint_path: Optional[str] = None) -> RuntimeConfig:
        return RuntimeConfig(
            seed=seed, mode=mode, hysteresis=hysteresis, loss=loss,
            crash_prob=crash_prob, stream_prefix=stream_prefix,
            sharded=sharded, jobs=jobs,
            checkpoint_path=checkpoint_path,
        )

    checks: List[Tuple[str, bool, str]] = []
    runtime = AllocatorRuntime(scenario, config())
    try:
        with phase_timer("runtime.case"):
            runtime.run_timeline(timeline)
    except Exception as exc:
        incr("runtime.case_raised")
        return ChurnCase(
            status="raised",
            checks=[("churn.no_raise", False,
                     f"{type(exc).__name__}: {exc}")],
            error=f"{type(exc).__name__}: {exc}",
        )
    checks.append(("churn.no_raise", True, ""))

    epoch_fails = [
        f"epoch {r.epoch}: {name} ({details})"
        for r in runtime.journal
        for name, ok, details in r.checks if not ok
    ]
    checks.append(("churn.epoch_checks", not epoch_fails,
                   "; ".join(epoch_fails[:3])))

    unreasoned = sorted({
        d.flow_id for d in runtime.admission.decisions
        if d.action != ADMIT and (not d.reason or d.reason == REASON_OK)
    })
    checks.append((
        "churn.admission_reasoned", not unreasoned,
        "" if not unreasoned
        else f"non-admit decisions without a reason: {unreasoned}",
    ))

    analysis = runtime.current_analysis()
    shares = dict(runtime.shares)
    if fault is not None and shares:
        shares = fault(shares, scenario.capacity)
    res = check_clique_capacity(analysis, shares)
    checks.append(("churn.final_clique_capacity", res.ok, res.details))
    res = check_basic_fairness(analysis, shares)
    checks.append(("churn.final_basic_floor", res.ok, res.details))

    if crash_restore and timeline.epochs >= 2:
        crash_epoch = max(1, timeline.epochs // 2)
        with tempfile.TemporaryDirectory() as tmp:
            ck = os.path.join(tmp, "checkpoint.json")
            crashed = AllocatorRuntime(scenario, config(ck))

            def hook(point: str, epoch: int) -> None:
                if point == "staged" and epoch == crash_epoch:
                    raise _SimulatedCrash()

            crashed.crash_hook = hook
            try:
                crashed.run_timeline(timeline)
                checks.append(("churn.crash_restore_identical", False,
                               "crash hook never fired"))
            except _SimulatedCrash:
                restored = AllocatorRuntime.restore(ck, scenario=scenario)
                restored.run_timeline(timeline)
                identical = (_canonical_state(restored)
                             == _canonical_state(runtime))
                checks.append((
                    "churn.crash_restore_identical", identical,
                    "" if identical else
                    f"state diverged after crash at epoch {crash_epoch} "
                    f"+ restore + replay",
                ))

    statuses: Dict[str, int] = {}
    for record in runtime.journal:
        statuses[record.status] = statuses.get(record.status, 0) + 1
    admissions: Dict[str, int] = {}
    for decision in runtime.admission.decisions:
        admissions[decision.action] = admissions.get(decision.action,
                                                     0) + 1
    return ChurnCase(
        status=_worst_epoch_status([r.status for r in runtime.journal]),
        checks=checks,
        shares=dict(runtime.shares),
        degraded_flows=sum(
            int(r.convergence.get("unconfirmed") or 0)
            for r in runtime.journal
        ),
        epochs_run=len(runtime.journal),
        epoch_statuses=statuses,
        admissions=admissions,
    )


@dataclass
class ChurnViolation:
    """One churn-safety violation, with everything needed to replay."""

    case: int
    loss: float
    check: str
    details: str
    scenario: Dict[str, object]
    churn_timeline: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "loss": self.loss,
            "check": self.check,
            "details": self.details,
            "scenario": self.scenario,
            "churn_timeline": self.churn_timeline,
        }


@dataclass
class ChurnReport:
    """Aggregate of one churn campaign, renderable and artifact-ready."""

    cases: int
    seed: int
    loss_rates: Tuple[float, ...]
    epochs: int
    hysteresis: Optional[float] = None
    statuses: Dict[str, int] = field(default_factory=dict)
    checks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    admissions: Dict[str, int] = field(default_factory=dict)
    epochs_run: int = 0
    degraded_flows: int = 0
    violations: List[ChurnViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def tally(self, case: ChurnCase) -> None:
        for status, count in case.epoch_statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + count
        for action, count in case.admissions.items():
            self.admissions[action] = (
                self.admissions.get(action, 0) + count
            )
        self.epochs_run += case.epochs_run
        self.degraded_flows += case.degraded_flows
        for name, ok, _details in case.checks:
            row = self.checks.setdefault(name, {"pass": 0, "fail": 0})
            row["pass" if ok else "fail"] += 1
            incr(f"resilience.{name}.{'pass' if ok else 'fail'}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "loss_rates": list(self.loss_rates),
            "epochs": self.epochs,
            "hysteresis": self.hysteresis,
            "ok": self.ok,
            "statuses": dict(sorted(self.statuses.items())),
            "checks": {k: dict(v) for k, v in sorted(self.checks.items())},
            "admissions": dict(sorted(self.admissions.items())),
            "epochs_run": self.epochs_run,
            "degraded_flows": self.degraded_flows,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"repro churn: {self.cases} timeline(s) x "
            f"{len(self.loss_rates)} loss rate(s) "
            f"{tuple(self.loss_rates)}, {self.epochs} epoch(s), "
            f"seed {self.seed}"
            + (f", hysteresis {self.hysteresis:g}"
               if self.hysteresis is not None else ""),
            "",
            f"  {'epoch status':<28} {'epochs':>6}",
        ]
        for status in sorted(self.statuses):
            lines.append(f"  {status:<28} {self.statuses[status]:>6}")
        lines.append(f"  {'total epochs committed':<28} "
                     f"{self.epochs_run:>6}")
        lines.append("")
        lines.append(f"  {'admission action':<28} {'flows':>6}")
        for action in sorted(self.admissions):
            lines.append(
                f"  {action:<28} {self.admissions[action]:>6}"
            )
        lines.append("")
        lines.append(f"  {'safety check':<28} {'pass':>6} {'fail':>6}")
        for name in sorted(self.checks):
            row = self.checks[name]
            lines.append(
                f"  {name:<28} {row['pass']:>6} {row['fail']:>6}"
            )
        lines.append("")
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            for v in self.violations:
                lines.append(
                    f"  case {v.case} @ loss {v.loss:g}: {v.check}"
                )
                if v.details:
                    lines.append(f"    {v.details}")
        else:
            lines.append("all churn safety invariants held")
        return "\n".join(lines)


def run_churn(
    cases: int = 25,
    seed: int = 0,
    loss_rates: Sequence[float] = DEFAULT_CHURN_LOSS_RATES,
    epochs: int = 10,
    crash_prob: float = 0.0,
    hysteresis: Optional[float] = 0.3,
    max_violations: int = 5,
    inject_fault: bool = False,
    crash_restore: bool = True,
    jobs: Optional[int] = 1,
) -> ChurnReport:
    """Sweep ``cases`` seeded churn timelines x ``loss_rates``.

    Scenario ``i`` comes from the verification fuzzer's generator (the
    same topology verify case ``i`` would draw); its churn timeline is
    drawn from stream ``("churn", i)``, so a failing ``(seed, case)``
    pair reproduces from the command line alone.  ``inject_fault``
    perturbs every final allocation so a healthy harness must fail —
    the self-test that proves the checkers bite.  ``jobs`` sizes each
    runtime's shard process pool (the per-case solve fan-out); shares
    and reports are bitwise identical at any job count.
    """
    from ..verify.fuzzer import generate_scenario, inject_share_fault

    fault = inject_share_fault if inject_fault else None
    rates = tuple(float(r) for r in loss_rates)
    report = ChurnReport(cases=cases, seed=seed, loss_rates=rates,
                         epochs=epochs, hysteresis=hysteresis)
    for index in range(cases):
        registry = RngRegistry(seed)
        scenario = generate_scenario(registry, index)
        timeline = ChurnTimeline.draw(
            registry.stream(("churn", index)),
            scenario.flow_ids,
            scenario.network.nodes,
            scenario.network.links(),
            epochs=epochs,
        )
        for loss in rates:
            case = run_churn_case(
                scenario, timeline,
                seed=seed, loss=loss, crash_prob=crash_prob,
                hysteresis=hysteresis,
                stream_prefix=("churn", index, repr(loss)),
                fault=fault,
                crash_restore=crash_restore,
                jobs=jobs,
            )
            incr("runtime.cases")
            report.tally(case)
            for name, details in case.failed_checks():
                report.violations.append(ChurnViolation(
                    case=index,
                    loss=loss,
                    check=name,
                    details=details,
                    scenario=scenario_to_dict(scenario),
                    churn_timeline=timeline.to_dict(),
                ))
            if len(report.violations) >= max_violations:
                return report
    return report


# ----------------------------------------------------------------------
# Overload campaigns: open-loop heavy traffic against the protected runtime
# ----------------------------------------------------------------------

#: Geometric arrival-rate ladder probed by
#: :func:`measure_sustainable_rate` (flows per epoch).
SUSTAINABLE_RATE_LADDER = (0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass
class OverloadCase(CaseChecks):
    """One overload case: :class:`CaseChecks` plus pressure aggregates."""

    epochs_run: int = 0
    epoch_statuses: Dict[str, int] = field(default_factory=dict)
    admissions: Dict[str, int] = field(default_factory=dict)
    breaches: int = 0
    sheds: int = 0
    rung_max: int = 0
    max_queue_depth: int = 0
    stale_age_max: int = 0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0


def run_overload_case(
    scenario: Scenario,
    trace: "ArrivalTrace",
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    plan: Optional[FaultPlan] = None,
    hysteresis: Optional[float] = None,
    jobs: Optional[int] = 1,
    max_queue: int = 32,
    max_queue_age: Optional[int] = 8,
    stall_epochs: int = 0,
    fault: Optional[Callable[[Dict[str, float], float],
                             Dict[str, float]]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> OverloadCase:
    """One scenario under one open-loop arrival trace, overload-protected.

    The runtime (centralized, sharded) is wrapped in an
    :class:`~repro.resilience.overload.OverloadRuntime` with the given
    epoch ``deadline_ms`` and driven through ``trace``.  ``plan``
    contributes adversarial :class:`~repro.resilience.faults.ArrivalBurst`
    extras and — with ``jobs > 1`` — worker crash/hang faults injected
    into the sharded solve (per-task timeout, bounded retries, serial
    fallback).  ``stall_epochs > 0`` forces that many initial epochs to
    run with an already-expired watchdog, the deterministic proof that
    the breach machinery bites.

    Seven properties are checked:

    * ``overload.no_raise`` — the protected runtime survives the trace
      (breaches are handled, never propagated);
    * ``overload.epoch_checks`` — every *validated* epoch's recorded
      Eq. (6) and basic-floor checks passed (breach epochs re-commit the
      last validated allocation and record no new checks);
    * ``overload.admission_reasoned`` — every non-admit decision
      (rejects, queue-full, age evictions, overload sheds) carries a
      machine-readable reason;
    * ``overload.final_clique_capacity`` / ``overload.final_basic_floor``
      — the final committed allocation re-checked from scratch (the
      ``fault`` hook perturbs it first when the harness is under test);
    * ``overload.queue_bounded`` — the admission queue never exceeded
      its configured depth bound;
    * ``overload.breach_recorded`` — the breach epochs in the runtime
      journal and the staleness records pair up exactly (no breach
      without a record, no record without a breach).
    """
    config = RuntimeConfig(
        seed=seed, mode="centralized", hysteresis=hysteresis,
        max_queue=max_queue, max_queue_age=max_queue_age,
        jobs=jobs, stream_prefix=("overload",),
    )
    runtime = AllocatorRuntime(scenario, config)
    if (plan is not None and plan.has_worker_faults
            and runtime._shard is not None
            and jobs is not None and jobs > 1):
        # Arm the sharded solver's fault-tolerant path: the injected
        # crashes/hangs are worker-environment faults, so the guarded
        # sweep retries and ultimately falls back in-process — shares
        # stay bitwise identical to the monolithic solve.
        runtime._shard.fault_injector = WorkerFaultInjector.from_plan(plan)
        runtime._shard.task_timeout = 1.0
        runtime._shard.task_retries = 2
    harness = OverloadRuntime(
        runtime, OverloadConfig(deadline_ms=deadline_ms), clock=clock
    )
    if stall_epochs > 0:
        harness.force_breach_epochs = set(range(1, stall_epochs + 1))

    checks: List[Tuple[str, bool, str]] = []
    try:
        with phase_timer("runtime.overload.case"):
            harness.run_trace(
                trace, bursts=plan.bursts if plan is not None else ()
            )
    except Exception as exc:
        incr("runtime.case_raised")
        return OverloadCase(
            status="raised",
            checks=[("overload.no_raise", False,
                     f"{type(exc).__name__}: {exc}")],
            error=f"{type(exc).__name__}: {exc}",
        )
    checks.append(("overload.no_raise", True, ""))

    epoch_fails = [
        f"epoch {r.epoch}: {name} ({details})"
        for r in runtime.journal
        for name, ok, details in r.checks if not ok
    ]
    checks.append(("overload.epoch_checks", not epoch_fails,
                   "; ".join(epoch_fails[:3])))

    unreasoned = sorted({
        d.flow_id for d in runtime.admission.decisions
        if d.action != ADMIT and (not d.reason or d.reason == REASON_OK)
    })
    checks.append((
        "overload.admission_reasoned", not unreasoned,
        "" if not unreasoned
        else f"non-admit decisions without a reason: {unreasoned}",
    ))

    analysis = runtime.current_analysis()
    shares = dict(runtime.shares)
    if not shares:
        # Finite flows may all have been served by the end of the
        # trace; re-check the last non-empty committed allocation so
        # the final invariants (and the ``fault`` self-test hook)
        # always have something to bite on.  Overload traces carry no
        # topology churn, so the current topology state is the one
        # every epoch committed under.
        for record in reversed(runtime.journal):
            if record.shares:
                topo = runtime._topology(runtime.down_links,
                                         runtime.down_nodes)
                analysis = topo.analysis_of(
                    topo.ordered(set(record.active)),
                    name=f"{scenario.name}-overload-final",
                )
                shares = dict(record.shares)
                break
    if fault is not None and shares:
        shares = fault(shares, scenario.capacity)
    res = check_clique_capacity(analysis, shares)
    checks.append(("overload.final_clique_capacity", res.ok, res.details))
    res = check_basic_fairness(analysis, shares)
    checks.append(("overload.final_basic_floor", res.ok, res.details))

    checks.append((
        "overload.queue_bounded",
        harness.max_queue_depth <= max_queue,
        "" if harness.max_queue_depth <= max_queue
        else f"queue depth {harness.max_queue_depth} exceeded bound "
             f"{max_queue}",
    ))

    breach_epochs = {r.epoch for r in runtime.journal
                     if r.status == "deadline-breach"}
    record_epochs = {int(rec["epoch"]) for rec in harness.staleness_records}
    checks.append((
        "overload.breach_recorded",
        breach_epochs == record_epochs,
        "" if breach_epochs == record_epochs
        else f"breach epochs {sorted(breach_epochs)} != staleness "
             f"records {sorted(record_epochs)}",
    ))

    statuses: Dict[str, int] = {}
    for record in runtime.journal:
        statuses[record.status] = statuses.get(record.status, 0) + 1
    admissions: Dict[str, int] = {}
    sheds = 0
    for decision in runtime.admission.decisions:
        admissions[decision.action] = (
            admissions.get(decision.action, 0) + 1
        )
        if decision.reason in ("queue-full", "queue-aged",
                               "overload-shed"):
            sheds += 1
    stats = harness.stats()
    return OverloadCase(
        status=_worst_epoch_status([r.status for r in runtime.journal]),
        checks=checks,
        shares=dict(runtime.shares),
        epochs_run=len(runtime.journal),
        epoch_statuses=statuses,
        admissions=admissions,
        breaches=int(stats["breaches"]),
        sheds=sheds,
        rung_max=int(stats["rung_max"]),
        max_queue_depth=int(stats["max_queue_depth"]),
        stale_age_max=int(stats["stale_age_max"]),
        latency_p50_ms=float(stats["latency_p50_ms"]),
        latency_p99_ms=float(stats["latency_p99_ms"]),
    )


def measure_sustainable_rate(
    scenario: Scenario,
    registry: RngRegistry,
    index: int,
    epochs: int = 8,
    rates: Sequence[float] = SUSTAINABLE_RATE_LADDER,
    deadline_ms: Optional[float] = None,
    max_queue: int = 32,
    max_queue_age: Optional[int] = 8,
    seed: int = 0,
) -> float:
    """Largest probed arrival rate the scenario sustains cleanly.

    Walks the geometric ``rates`` ladder with short probe traces (each
    drawn from its own ``("overload", index, "probe", rate)`` stream, so
    the measurement is deterministic); a rate is *sustainable* when the
    probe completes with zero rejects, zero sheds, an empty waiting
    queue at the end, and zero deadline breaches.  Returns the largest
    sustainable rate, or the bottom of the ladder when even that
    overloads the scenario — the campaign then offers ``multiplier``
    times this, which is over capacity by construction.
    """
    flow_ids = list(scenario.flow_ids)
    best = float(rates[0])
    for rate in rates:
        trace = draw_arrival_trace(
            registry.stream(("overload", index, "probe", repr(rate))),
            flow_ids, epochs, OpenLoopConfig(rate=float(rate)),
        )
        probe = run_overload_case(
            scenario, trace, seed=seed, deadline_ms=deadline_ms,
            max_queue=max_queue, max_queue_age=max_queue_age,
        )
        rejects = probe.admissions.get("reject", 0)
        queued = probe.admissions.get("queue", 0)
        clean = (probe.ok and probe.breaches == 0 and rejects == 0
                 and probe.sheds == 0 and queued == 0)
        if clean:
            best = float(rate)
        else:
            break
    return best


@dataclass
class OverloadViolation:
    """One overload-safety violation, with everything needed to replay."""

    case: int
    rate: float
    check: str
    details: str
    scenario: Dict[str, object]
    arrival_trace: Dict[str, object]
    fault_plan: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "rate": self.rate,
            "check": self.check,
            "details": self.details,
            "scenario": self.scenario,
            "arrival_trace": self.arrival_trace,
            "fault_plan": self.fault_plan,
        }


@dataclass
class OverloadReport:
    """Aggregate of one overload campaign, renderable and artifact-ready."""

    cases: int
    seed: int
    epochs: int
    multiplier: float
    deadline_ms: Optional[float] = None
    statuses: Dict[str, int] = field(default_factory=dict)
    checks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    admissions: Dict[str, int] = field(default_factory=dict)
    #: Per-case rows: sustainable rate, offered rate, breaches, p50/p99.
    rates: List[Dict[str, float]] = field(default_factory=list)
    epochs_run: int = 0
    breaches: int = 0
    sheds: int = 0
    violations: List[OverloadViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def tally(self, case: OverloadCase) -> None:
        for status, count in case.epoch_statuses.items():
            self.statuses[status] = self.statuses.get(status, 0) + count
        for action, count in case.admissions.items():
            self.admissions[action] = (
                self.admissions.get(action, 0) + count
            )
        self.epochs_run += case.epochs_run
        self.breaches += case.breaches
        self.sheds += case.sheds
        for name, ok, _details in case.checks:
            row = self.checks.setdefault(name, {"pass": 0, "fail": 0})
            row["pass" if ok else "fail"] += 1
            incr(f"resilience.{name}.{'pass' if ok else 'fail'}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "epochs": self.epochs,
            "multiplier": self.multiplier,
            "deadline_ms": self.deadline_ms,
            "ok": self.ok,
            "statuses": dict(sorted(self.statuses.items())),
            "checks": {k: dict(v) for k, v in sorted(self.checks.items())},
            "admissions": dict(sorted(self.admissions.items())),
            "rates": [dict(r) for r in self.rates],
            "epochs_run": self.epochs_run,
            "breaches": self.breaches,
            "sheds": self.sheds,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"repro overload: {self.cases} case(s), {self.epochs} "
            f"epoch(s), offered {self.multiplier:g}x sustainable, "
            f"seed {self.seed}"
            + (f", epoch deadline {self.deadline_ms:g} ms"
               if self.deadline_ms is not None else ""),
            "",
            f"  {'case':>4} {'sustainable':>12} {'offered':>9} "
            f"{'breaches':>9} {'p50 ms':>9} {'p99 ms':>9}",
        ]
        for i, row in enumerate(self.rates):
            lines.append(
                f"  {i:>4} {row['sustainable']:>12g} "
                f"{row['offered']:>9g} {int(row['breaches']):>9} "
                f"{row['latency_p50_ms']:>9.2f} "
                f"{row['latency_p99_ms']:>9.2f}"
            )
        lines.append("")
        lines.append(f"  {'epoch status':<28} {'epochs':>6}")
        for status in sorted(self.statuses):
            lines.append(f"  {status:<28} {self.statuses[status]:>6}")
        lines.append(f"  {'total epochs committed':<28} "
                     f"{self.epochs_run:>6}")
        lines.append("")
        lines.append(f"  {'admission action':<28} {'flows':>6}")
        for action in sorted(self.admissions):
            lines.append(
                f"  {action:<28} {self.admissions[action]:>6}"
            )
        lines.append(f"  {'flows shed / evicted':<28} {self.sheds:>6}")
        lines.append("")
        lines.append(f"  {'safety check':<28} {'pass':>6} {'fail':>6}")
        for name in sorted(self.checks):
            row = self.checks[name]
            lines.append(
                f"  {name:<28} {row['pass']:>6} {row['fail']:>6}"
            )
        lines.append("")
        if self.violations:
            lines.append(f"{len(self.violations)} violation(s):")
            for v in self.violations:
                lines.append(
                    f"  case {v.case} @ rate {v.rate:g}: {v.check}"
                )
                if v.details:
                    lines.append(f"    {v.details}")
        else:
            lines.append("all overload safety invariants held")
        return "\n".join(lines)


def run_overload(
    cases: int = 5,
    seed: int = 0,
    epochs: int = 12,
    multiplier: float = 2.0,
    deadline_ms: Optional[float] = None,
    hysteresis: Optional[float] = 0.3,
    max_queue: int = 32,
    max_queue_age: Optional[int] = 8,
    stall_epochs: int = 0,
    worker_crash: bool = False,
    jobs: Optional[int] = 1,
    inject_fault: bool = False,
    max_violations: int = 5,
) -> OverloadReport:
    """Sweep ``cases`` scenarios under ``multiplier`` x sustainable load.

    Scenario ``i`` comes from the verification fuzzer's generator; its
    sustainable arrival rate is measured with probe traces, then an
    open-loop trace at ``multiplier`` times that rate (stream
    ``("overload", i, "trace")``) drives the protected runtime.
    ``stall_epochs`` forces that many initial deadline breaches per case
    (exercising the shedding ladder deterministically); ``worker_crash``
    arms one sharded-solve worker crash per case (meaningful with
    ``jobs > 1``).  ``inject_fault`` both perturbs the final allocation
    (the checkers must fail) and forces stalls, so a healthy harness
    must report breaches — the ``--inject-fault`` CLI run passes only
    when the watchdog demonstrably bit.
    """
    from ..verify.fuzzer import generate_scenario, inject_share_fault

    fault = inject_share_fault if inject_fault else None
    if inject_fault:
        stall_epochs = max(stall_epochs, 3)
    report = OverloadReport(
        cases=cases, seed=seed, epochs=epochs,
        multiplier=float(multiplier), deadline_ms=deadline_ms,
    )
    for index in range(cases):
        registry = RngRegistry(seed)
        scenario = generate_scenario(registry, index)
        sustainable = measure_sustainable_rate(
            scenario, registry, index,
            deadline_ms=deadline_ms,
            max_queue=max_queue, max_queue_age=max_queue_age,
            seed=seed,
        )
        offered = float(multiplier) * sustainable
        trace = draw_arrival_trace(
            registry.stream(("overload", index, "trace")),
            list(scenario.flow_ids), epochs,
            OpenLoopConfig(rate=offered),
        )
        plan = (
            FaultPlan(worker_crashes=(WorkerCrash(component=0,
                                                  attempts=1),))
            if worker_crash else None
        )
        case = run_overload_case(
            scenario, trace, seed=seed, deadline_ms=deadline_ms,
            plan=plan, hysteresis=hysteresis, jobs=jobs,
            max_queue=max_queue, max_queue_age=max_queue_age,
            stall_epochs=stall_epochs, fault=fault,
        )
        incr("runtime.overload.cases")
        report.tally(case)
        report.rates.append({
            "sustainable": sustainable,
            "offered": offered,
            "breaches": float(case.breaches),
            "latency_p50_ms": case.latency_p50_ms,
            "latency_p99_ms": case.latency_p99_ms,
        })
        for name, details in case.failed_checks():
            report.violations.append(OverloadViolation(
                case=index,
                rate=offered,
                check=name,
                details=details,
                scenario=scenario_to_dict(scenario),
                arrival_trace=trace.to_dict(),
                fault_plan=plan.to_dict() if plan is not None else None,
            ))
        if len(report.violations) >= max_violations:
            return report
    return report
