"""Crash-consistent runtime checkpoints: atomic, versioned, checksummed.

A checkpoint is a single JSON document wrapping the complete committed
state of an :class:`~repro.resilience.runtime.AllocatorRuntime` — the
epoch journal, active flow set, topology outage sets, admission queue,
committed shares, and the performance caches (warm LP bases, per-topology
component-clique caches) that make restart cheap.  Three properties make
it crash-consistent:

* **atomic replace** — the document is written to a temp file in the
  target directory, fsync'd, and ``os.replace``'d over the destination,
  so a crash mid-save leaves either the old checkpoint or the new one,
  never a torn file;
* **checksummed payload** — the envelope stores the SHA-256 of the
  canonically serialized payload; a truncated, bit-flipped, or
  hand-edited file fails verification on load with
  :class:`CheckpointCorruptError` *before* any state is deserialized —
  the loader never half-applies a bad snapshot;
* **schema versioning** — the envelope carries a schema number; a
  snapshot from an incompatible writer raises
  :class:`CheckpointSchemaError` instead of being misinterpreted.

All failures are typed (:class:`CheckpointError` subclasses), so callers
can distinguish "no checkpoint yet" from "checkpoint damaged" and react
accordingly (start fresh vs. refuse to run).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Union

from ..obs.events import emit_event
from ..obs.registry import incr, phase_timer
from ..obs.trace import span

__all__ = [
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointSchemaError",
    "SCHEMA_VERSION",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_KIND = "repro.runtime/checkpoint"
SCHEMA_VERSION = 1


class CheckpointError(Exception):
    """Base class for every checkpoint load/save failure."""


class CheckpointCorruptError(CheckpointError):
    """The file is not a structurally valid, checksum-clean checkpoint."""


class CheckpointSchemaError(CheckpointError):
    """The checkpoint was written by an incompatible schema version."""


def _canonical(payload: Dict) -> str:
    """The byte-stable serialization the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(canonical: str) -> str:
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_checkpoint(payload: Dict, path: Union[str, Path]) -> str:
    """Atomically persist ``payload``; returns the stored digest.

    The payload must be JSON-serializable (the runtime builds it from
    plain dicts/lists/strings/numbers only).  Write order: temp file in
    the destination directory → flush + fsync → ``os.replace`` — the
    POSIX recipe for an all-or-nothing file swap.
    """
    path = Path(path)
    with phase_timer("checkpoint.save"), \
            span("checkpoint.save") as save_span:
        canonical = _canonical(payload)
        digest = _digest(canonical)
        envelope = {
            "kind": CHECKPOINT_KIND,
            "schema": SCHEMA_VERSION,
            "sha256": digest,
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, str(path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        save_span.tag(bytes=len(canonical))
    incr("checkpoint.save")
    emit_event("checkpoint.save", bytes=len(canonical),
               sha256=digest[:12])
    return digest


def load_checkpoint(path: Union[str, Path]) -> Dict:
    """Load and verify a checkpoint; returns the payload dict.

    Raises :class:`CheckpointCorruptError` on unreadable/truncated/
    tampered files and :class:`CheckpointSchemaError` on a version
    mismatch.  A missing file raises ``FileNotFoundError`` (it is a
    normal first-boot condition, not corruption).
    """
    path = Path(path)
    with phase_timer("checkpoint.restore"), \
            span("checkpoint.restore") as restore_span:
        text = path.read_text()
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                f"{path}: not valid JSON ({exc})"
            ) from exc
        if not isinstance(envelope, dict):
            raise CheckpointCorruptError(
                f"{path}: envelope is not an object"
            )
        if envelope.get("kind") != CHECKPOINT_KIND:
            raise CheckpointCorruptError(
                f"{path}: kind {envelope.get('kind')!r} != "
                f"{CHECKPOINT_KIND!r}"
            )
        schema = envelope.get("schema")
        if schema != SCHEMA_VERSION:
            raise CheckpointSchemaError(
                f"{path}: schema {schema!r}, this build reads "
                f"{SCHEMA_VERSION}"
            )
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointCorruptError(
                f"{path}: payload is not an object"
            )
        expected = envelope.get("sha256")
        canonical = _canonical(payload)
        actual = _digest(canonical)
        if actual != expected:
            raise CheckpointCorruptError(
                f"{path}: payload checksum mismatch "
                f"(stored {str(expected)[:12]}…, computed {actual[:12]}…)"
            )
        restore_span.tag(bytes=len(canonical))
    incr("checkpoint.restore")
    emit_event("checkpoint.restore", bytes=len(canonical),
               sha256=actual[:12])
    return payload
