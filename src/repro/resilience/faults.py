"""Seeded fault injection for the 2PA-D constraint exchange.

A :class:`FaultPlan` is a *declarative, serializable* description of
everything that can go wrong while the distributed phase-1 protocol
floods clique constraints along flow paths:

* per-link message faults — drop, duplicate, delay (random per-message
  delays also reorder deliveries), plus independent ack loss;
* node crash/restart schedules (a crashed node neither sends nor
  receives, and loses its received constraint state — it re-derives only
  its *local* cliques by re-overhearing after restart);
* link flaps — a link that is administratively down for a round interval
  drops every message crossing it, in either direction.

A :class:`FaultInjector` turns a plan into concrete per-message decisions
by drawing from :class:`~repro.sim.rng.RngRegistry` streams, one stream
per directed link, so every chaos run is reproducible bit-for-bit from
``(master seed, stream prefix)`` alone and shrinking a scenario never
perturbs the fault draws of the surviving links.  Plans round-trip
through plain dicts (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`) so the fuzzer can serialize them into
reproducers next to the scenario that tripped a checker.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..sim.rng import RngRegistry

__all__ = [
    "LinkFaults",
    "NodeCrash",
    "LinkFlap",
    "WorkerCrash",
    "WorkerHang",
    "ArrivalBurst",
    "FaultPlan",
    "FaultInjector",
    "WorkerFaultSpec",
    "WorkerFaultInjector",
]


@dataclass(frozen=True)
class LinkFaults:
    """Per-link message-fault rates (all probabilities in ``[0, 1]``)."""

    drop: float = 0.0        #: P(data message lost in transit)
    ack_drop: float = 0.0    #: P(ack lost on the way back)
    duplicate: float = 0.0   #: P(data message delivered twice)
    delay: float = 0.0       #: P(data message delayed extra rounds)
    max_delay: int = 3       #: delayed messages take 1..max_delay extra rounds

    def __post_init__(self) -> None:
        for name in ("drop", "ack_drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")

    @property
    def lossless(self) -> bool:
        return (self.drop == 0.0 and self.ack_drop == 0.0
                and self.duplicate == 0.0 and self.delay == 0.0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "drop": self.drop,
            "ack_drop": self.ack_drop,
            "duplicate": self.duplicate,
            "delay": self.delay,
            "max_delay": self.max_delay,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "LinkFaults":
        return cls(
            drop=float(doc.get("drop", 0.0)),
            ack_drop=float(doc.get("ack_drop", 0.0)),
            duplicate=float(doc.get("duplicate", 0.0)),
            delay=float(doc.get("delay", 0.0)),
            max_delay=int(doc.get("max_delay", 3)),
        )


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` is down during rounds ``[down_from, up_at)``.

    ``up_at=None`` means the node never restarts within the run.
    """

    node: str
    down_from: int
    up_at: Optional[int] = None

    def down(self, rnd: int) -> bool:
        if rnd < self.down_from:
            return False
        return self.up_at is None or rnd < self.up_at

    def to_dict(self) -> Dict[str, object]:
        return {"node": self.node, "down_from": self.down_from,
                "up_at": self.up_at}

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "NodeCrash":
        up_at = doc.get("up_at")
        return cls(str(doc["node"]), int(doc["down_from"]),
                   None if up_at is None else int(up_at))


@dataclass(frozen=True)
class LinkFlap:
    """Link ``{a, b}`` is down (both directions) during ``[down_from, up_at)``."""

    a: str
    b: str
    down_from: int
    up_at: int

    def down(self, x: str, y: str, rnd: int) -> bool:
        if {x, y} != {self.a, self.b}:
            return False
        return self.down_from <= rnd < self.up_at

    def to_dict(self) -> Dict[str, object]:
        return {"a": self.a, "b": self.b, "down_from": self.down_from,
                "up_at": self.up_at}

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "LinkFlap":
        return cls(str(doc["a"]), str(doc["b"]), int(doc["down_from"]),
                   int(doc["up_at"]))


@dataclass(frozen=True)
class WorkerCrash:
    """A pool worker dies (``os._exit``) while solving a shard task.

    ``component`` selects the victim by position among the dirty
    components of a solve (applied modulo the dirty count, so small
    plans hit something on any topology); the crash fires on the task's
    first ``attempts`` pool attempts, then the worker behaves — the
    bounded-retry ladder must survive exactly that many losses.
    """

    component: int
    attempts: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {"component": self.component, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "WorkerCrash":
        return cls(int(doc["component"]), int(doc.get("attempts", 1)))


@dataclass(frozen=True)
class WorkerHang:
    """A pool worker stalls for ``seconds`` before solving its shard.

    Like :class:`WorkerCrash`, ``component`` picks the victim modulo the
    dirty count and the stall fires on the first ``attempts`` attempts.
    Keep ``seconds`` comfortably above the sweep's per-task timeout and
    small in absolute terms — abandoned workers are joined at interpreter
    exit.
    """

    component: int
    seconds: float = 0.5
    attempts: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {"component": self.component, "seconds": self.seconds,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "WorkerHang":
        return cls(int(doc["component"]), float(doc.get("seconds", 0.5)),
                   int(doc.get("attempts", 1)))


@dataclass(frozen=True)
class ArrivalBurst:
    """An adversarial arrival spike at ``epoch``.

    Deterministic by construction: the first ``count`` flow ids of the
    sorted scenario universe are offered as extra arrivals with service
    time ``duration`` — no randomness, so shrinking a co-drawn trace
    never perturbs the burst.
    """

    epoch: int
    count: int
    duration: int = 3

    def to_dict(self) -> Dict[str, object]:
        return {"epoch": self.epoch, "count": self.count,
                "duration": self.duration}

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ArrivalBurst":
        return cls(int(doc["epoch"]), int(doc["count"]),
                   int(doc.get("duration", 3)))


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable chaos schedule for one protocol run."""

    default_link: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[Tuple[str, str], LinkFaults] = field(default_factory=dict)
    crashes: Tuple[NodeCrash, ...] = ()
    flaps: Tuple[LinkFlap, ...] = ()
    worker_crashes: Tuple[WorkerCrash, ...] = ()
    worker_hangs: Tuple[WorkerHang, ...] = ()
    bursts: Tuple[ArrivalBurst, ...] = ()

    def link_faults(self, a: str, b: str) -> LinkFaults:
        """Fault rates for the (undirected) link ``{a, b}``."""
        return self.links.get(_link_key(a, b), self.default_link)

    @property
    def lossless(self) -> bool:
        """No *channel* faults (worker faults and bursts don't count —
        they stress the solver pool and admission, not the protocol)."""
        return (self.default_link.lossless and not self.crashes
                and not self.flaps
                and all(lf.lossless for lf in self.links.values()))

    @property
    def has_worker_faults(self) -> bool:
        return bool(self.worker_crashes or self.worker_hangs)

    # ------------------------------------------------------------------
    # Static schedule queries (no randomness involved)
    # ------------------------------------------------------------------
    def node_up(self, node: str, rnd: int) -> bool:
        return not any(c.node == node and c.down(rnd) for c in self.crashes)

    def node_up_eventually(self, node: str, rnd: int) -> bool:
        """Will ``node`` be up at some round ``>= rnd``?

        False only for a node inside a crash window that never ends —
        the signal the channel uses to stop waiting on a dead sender.
        """
        if self.node_up(node, rnd):
            return True
        return all(
            c.up_at is not None
            for c in self.crashes
            if c.node == node and c.down(rnd)
        )

    def link_up(self, a: str, b: str, rnd: int) -> bool:
        return not any(f.down(a, b, rnd) for f in self.flaps)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "default_link": self.default_link.to_dict(),
            "links": [
                {"link": list(key), **faults.to_dict()}
                for key, faults in sorted(self.links.items())
            ],
            "crashes": [c.to_dict() for c in self.crashes],
            "flaps": [f.to_dict() for f in self.flaps],
            "worker_crashes": [w.to_dict() for w in self.worker_crashes],
            "worker_hangs": [w.to_dict() for w in self.worker_hangs],
            "bursts": [b.to_dict() for b in self.bursts],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "FaultPlan":
        links: Dict[Tuple[str, str], LinkFaults] = {}
        for entry in doc.get("links", []):
            a, b = entry["link"]
            links[_link_key(str(a), str(b))] = LinkFaults.from_dict(entry)
        return cls(
            default_link=LinkFaults.from_dict(doc.get("default_link", {})),
            links=links,
            crashes=tuple(
                NodeCrash.from_dict(c) for c in doc.get("crashes", [])
            ),
            flaps=tuple(
                LinkFlap.from_dict(f) for f in doc.get("flaps", [])
            ),
            worker_crashes=tuple(
                WorkerCrash.from_dict(w)
                for w in doc.get("worker_crashes", [])
            ),
            worker_hangs=tuple(
                WorkerHang.from_dict(w) for w in doc.get("worker_hangs", [])
            ),
            bursts=tuple(
                ArrivalBurst.from_dict(b) for b in doc.get("bursts", [])
            ),
        )

    # ------------------------------------------------------------------
    # Random plan generation (fuzzer / campaign entry point)
    # ------------------------------------------------------------------
    @classmethod
    def draw(
        cls,
        rng,
        nodes: Sequence[str],
        loss: Optional[float] = None,
        crash_prob: float = 0.2,
        flap_prob: float = 0.15,
        horizon: int = 24,
        overload: bool = False,
    ) -> "FaultPlan":
        """Draw a random plan from a ``numpy.random.Generator``.

        ``loss`` fixes the default drop rate (campaign sweeps pass the
        grid value); ``None`` draws it uniformly from ``[0, 0.4]``.  The
        draw order is fixed, so a plan is a pure function of the stream
        state — the fuzzer regenerates it from ``(seed, case)`` alone.

        ``overload=True`` additionally draws worker crash/hang faults
        and an arrival burst.  Those draws come strictly *after* every
        existing draw (and are consumed unconditionally), so plans drawn
        without the flag are byte-identical to pre-overload plans from
        the same stream.
        """
        drop = float(rng.uniform(0.0, 0.4)) if loss is None else float(loss)
        default = LinkFaults(
            drop=drop,
            ack_drop=drop / 2.0,
            duplicate=float(rng.uniform(0.0, 0.1)),
            delay=float(rng.uniform(0.0, 0.3)),
            max_delay=int(rng.integers(1, 4)),
        )
        crashes: List[NodeCrash] = []
        for node in sorted(map(str, nodes)):
            if float(rng.random()) < crash_prob:
                down_from = int(rng.integers(0, horizon // 2))
                if float(rng.random()) < 0.25:
                    up_at: Optional[int] = None  # never restarts
                else:
                    up_at = down_from + int(rng.integers(2, horizon // 2))
                crashes.append(NodeCrash(node, down_from, up_at))
        flaps: List[LinkFlap] = []
        ordered = sorted(map(str, nodes))
        if len(ordered) >= 2 and float(rng.random()) < flap_prob:
            i = int(rng.integers(0, len(ordered)))
            j = int(rng.integers(0, len(ordered) - 1))
            if j >= i:
                j += 1
            down_from = int(rng.integers(0, horizon // 2))
            up_at = down_from + int(rng.integers(1, horizon // 2))
            a, b = _link_key(ordered[i], ordered[j])
            flaps.append(LinkFlap(a, b, down_from, up_at))
        worker_crashes: List[WorkerCrash] = []
        worker_hangs: List[WorkerHang] = []
        bursts: List[ArrivalBurst] = []
        if overload:
            # Every draw is consumed whether or not the event fires, so
            # the stream position after draw() is outcome-independent.
            u_crash = float(rng.random())
            crash_component = int(rng.integers(0, 4))
            crash_attempts = int(rng.integers(1, 3))
            u_hang = float(rng.random())
            hang_component = int(rng.integers(0, 4))
            hang_seconds = float(rng.uniform(0.05, 0.3))
            u_burst = float(rng.random())
            burst_epoch = int(rng.integers(0, max(1, horizon // 2)))
            burst_count = int(rng.integers(1, 5))
            burst_duration = int(rng.integers(1, 5))
            if u_crash < 0.5:
                worker_crashes.append(
                    WorkerCrash(crash_component, crash_attempts)
                )
            if u_hang < 0.3:
                worker_hangs.append(
                    WorkerHang(hang_component, round(hang_seconds, 3))
                )
            if u_burst < 0.5:
                bursts.append(
                    ArrivalBurst(burst_epoch, burst_count, burst_duration)
                )
        return cls(default_link=default, crashes=tuple(crashes),
                   flaps=tuple(flaps), worker_crashes=tuple(worker_crashes),
                   worker_hangs=tuple(worker_hangs), bursts=tuple(bursts))

    # ------------------------------------------------------------------
    # Shrinking support
    # ------------------------------------------------------------------
    def shrink_candidates(self) -> List["FaultPlan"]:
        """One-step-simpler plans, for greedy failure shrinking.

        Ordered from most to least aggressive simplification: drop all
        worker faults and bursts, drop all crashes, drop all flaps, drop
        individual events, then zero individual default-link rates.
        """
        out: List[FaultPlan] = []
        if self.worker_crashes or self.worker_hangs:
            out.append(replace(self, worker_crashes=(), worker_hangs=()))
        if self.bursts:
            out.append(replace(self, bursts=()))
        if self.crashes:
            out.append(replace(self, crashes=()))
        if self.flaps:
            out.append(replace(self, flaps=()))
        for i in range(len(self.crashes)):
            out.append(replace(
                self, crashes=self.crashes[:i] + self.crashes[i + 1:]
            ))
        for i in range(len(self.flaps)):
            out.append(replace(
                self, flaps=self.flaps[:i] + self.flaps[i + 1:]
            ))
        for i in range(len(self.worker_crashes)):
            out.append(replace(
                self,
                worker_crashes=(self.worker_crashes[:i]
                                + self.worker_crashes[i + 1:]),
            ))
        for i in range(len(self.worker_hangs)):
            out.append(replace(
                self,
                worker_hangs=(self.worker_hangs[:i]
                              + self.worker_hangs[i + 1:]),
            ))
        for i in range(len(self.bursts)):
            out.append(replace(
                self, bursts=self.bursts[:i] + self.bursts[i + 1:]
            ))
        for attr in ("duplicate", "delay", "ack_drop", "drop"):
            if getattr(self.default_link, attr) != 0.0:
                out.append(replace(
                    self,
                    default_link=replace(self.default_link, **{attr: 0.0}),
                ))
        return out


class FaultInjector:
    """Turns a :class:`FaultPlan` into concrete per-message decisions.

    All randomness flows through per-directed-link streams of a
    :class:`~repro.sim.rng.RngRegistry` (``(*prefix, src, dst)``), so two
    runs with the same plan, registry seed and prefix make byte-identical
    decisions, and decisions on one link are independent of every other
    link's traffic.
    """

    def __init__(
        self,
        plan: FaultPlan,
        registry: Optional[RngRegistry] = None,
        prefix: Hashable = ("resilience", "channel"),
    ) -> None:
        self.plan = plan
        self.registry = registry if registry is not None else RngRegistry(0)
        self.prefix = tuple(prefix) if isinstance(prefix, (list, tuple)) \
            else (prefix,)

    def _stream(self, src: str, dst: str):
        return self.registry.stream(self.prefix + ("link", src, dst))

    # -- static schedule ------------------------------------------------
    def alive(self, node: str, rnd: int) -> bool:
        return self.plan.node_up(node, rnd)

    def alive_eventually(self, node: str, rnd: int) -> bool:
        return self.plan.node_up_eventually(node, rnd)

    def link_up(self, a: str, b: str, rnd: int) -> bool:
        return self.plan.link_up(a, b, rnd)

    # -- per-message draws ----------------------------------------------
    def data_fate(self, src: str, dst: str) -> Tuple[bool, int, bool]:
        """Fate of one data message: ``(dropped, extra_delay, duplicated)``.

        Exactly three draws are consumed per call regardless of outcome,
        so decisions on later messages never depend on how earlier fates
        branched — the property that keeps shrunk runs aligned.
        """
        faults = self.plan.link_faults(src, dst)
        stream = self._stream(src, dst)
        u_drop = float(stream.random())
        u_delay = float(stream.random())
        u_dup = float(stream.random())
        if u_drop < faults.drop:
            return True, 0, False
        delay = 0
        if u_delay < faults.delay:
            delay = 1 + int(u_delay / faults.delay * faults.max_delay) \
                if faults.delay > 0 else 0
            delay = min(delay, faults.max_delay)
        return False, delay, u_dup < faults.duplicate

    def ack_dropped(self, src: str, dst: str) -> bool:
        """Whether the ack for a delivered message is lost on the way back."""
        faults = self.plan.link_faults(src, dst)
        return float(self._stream(dst, src).random()) < faults.ack_drop

    def jitter(self, src: str, dst: str, attempt: int) -> int:
        """Deterministic backoff jitter: uniform in ``[0, 2^(attempt-1))``."""
        window = max(1, 2 ** (attempt - 1))
        return int(self._stream(src, dst).integers(0, window))


@dataclass
class WorkerFaultSpec:
    """Picklable per-task fault directive executed *inside* a pool worker.

    Attempt accounting must survive worker restarts and fresh pools, so
    it lives in a token file rather than process memory: each call to
    :meth:`apply` counts the lines already in ``token_path``, appends
    one, and misbehaves only while the crash/hang budget is unspent.
    Exactly one instance of a task runs at a time, so the file needs no
    locking.
    """

    token_path: str
    crash_attempts: int = 0
    hang_attempts: int = 0
    hang_seconds: float = 0.0

    def apply(self) -> None:
        try:
            with open(self.token_path, "a+", encoding="utf-8") as fh:
                fh.seek(0)
                prior = sum(1 for _ in fh)
                fh.write("x\n")
                fh.flush()
        except OSError:
            return  # token dir gone: behave, never wedge the solve
        if prior < self.crash_attempts:
            os._exit(17)  # simulate a hard worker death, no cleanup
        if prior < self.crash_attempts + self.hang_attempts:
            time.sleep(self.hang_seconds)


class WorkerFaultInjector:
    """Maps a plan's worker faults onto the dirty tasks of one solve.

    A fault's ``component`` field selects its victim by position modulo
    the number of dirty tasks, so a plan drawn blind to the topology
    always lands on something.  Attempt budgets persist across epochs
    (and across retry pools) through per-position token files in a
    private temp directory; :meth:`reset` re-arms them.
    """

    def __init__(
        self,
        crashes: Sequence[WorkerCrash] = (),
        hangs: Sequence[WorkerHang] = (),
        workdir: Optional[str] = None,
    ) -> None:
        self.crashes = tuple(crashes)
        self.hangs = tuple(hangs)
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="worker-faults-")
            self.workdir = self._tmp.name
        else:
            self._tmp = None
            self.workdir = workdir

    @classmethod
    def from_plan(cls, plan: FaultPlan,
                  workdir: Optional[str] = None) -> "WorkerFaultInjector":
        return cls(plan.worker_crashes, plan.worker_hangs, workdir=workdir)

    def spec_for(self, position: int, total: int) -> Optional[WorkerFaultSpec]:
        """The fault directive for dirty task ``position`` of ``total``."""
        if total <= 0:
            return None
        crash = sum(c.attempts for c in self.crashes
                    if c.component % total == position)
        hang_attempts = sum(h.attempts for h in self.hangs
                            if h.component % total == position)
        hang_seconds = max(
            (h.seconds for h in self.hangs
             if h.component % total == position),
            default=0.0,
        )
        if not crash and not hang_attempts:
            return None
        return WorkerFaultSpec(
            token_path=os.path.join(self.workdir, f"task-{position}"),
            crash_attempts=crash,
            hang_attempts=hang_attempts,
            hang_seconds=hang_seconds,
        )

    def reset(self) -> None:
        """Forget spent attempts (token files) so faults fire again."""
        try:
            for name in os.listdir(self.workdir):
                if name.startswith("task-"):
                    os.unlink(os.path.join(self.workdir, name))
        except OSError:
            pass
