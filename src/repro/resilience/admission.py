"""Admission control: gate flow arrivals on the basic-share floor.

The paper guarantees (Sec. II-D) that the **basic shares**
``r̂_i = w_i B / Σ_j w_j v_j`` of a contending flow group are jointly
feasible — every maximal clique satisfies Eq. (6) when each member flow
transmits exactly its basic share.  That guarantee is what admission
control protects: a new flow is **admitted** only if, with the candidate
included, the global basic shares of *all* active flows (existing and
new) still satisfy every clique-capacity constraint.  Then every
existing flow provably keeps at least its floor whatever the allocator
later optimizes, because the floor allocation itself remains feasible.

A flow failing the predicate is **rejected**, or **queued** for retry at
later epochs when the controller keeps a waiting list (departures and
healed links free capacity).  Every decision carries a machine-readable
``reason``; the full decision log lands in the run artifact so a
rejected flow is never silently dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from ..core.contention import ContentionAnalysis
from ..obs.registry import incr, set_gauge
from .degrade import global_basic_shares

__all__ = [
    "ADMIT",
    "REJECT",
    "QUEUE",
    "AdmissionDecision",
    "AdmissionController",
    "basic_share_feasible",
]

ADMIT, REJECT, QUEUE = "admit", "reject", "queue"

#: Machine-readable reason codes (the ``reason`` field of a decision).
REASON_OK = "ok"
REASON_FLOOR = "basic-floor-infeasible"
REASON_UNROUTABLE = "unroutable"
REASON_ENDPOINT_DOWN = "endpoint-down"
REASON_QUEUE_FULL = "queue-full"
REASON_QUEUE_AGED = "queue-aged"
REASON_OVERLOAD = "overload-shed"

#: Same tolerance the Eq. (6) checker applies, so admission never
#: rejects a candidate whose floor allocation the checker would accept.
_FLOOR_TOL = 1e-9


def basic_share_feasible(
    analysis: ContentionAnalysis,
    capacity: Optional[float] = None,
    tol: float = _FLOOR_TOL,
) -> bool:
    """Eq. (6) over the global basic shares of ``analysis``'s flows.

    True iff every maximal clique can carry all member flows at their
    Sec. II-D basic share simultaneously — the admission predicate, with
    the candidate flow already part of the analysis.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    floors = global_basic_shares(analysis)
    for clique in analysis.cliques:
        coeffs = analysis.clique_coefficients(clique)
        load = sum(n * floors.get(fid, 0.0) for fid, n in coeffs.items())
        if load > b + tol:
            return False
    return True


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict, machine-readable and artifact-ready."""

    flow_id: str
    epoch: int
    action: str  # admit | reject | queue
    reason: str
    details: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "flow": self.flow_id,
            "epoch": self.epoch,
            "action": self.action,
            "reason": self.reason,
            "details": self.details,
        }


@dataclass
class AdmissionController:
    """Owns the waiting queue and the decision log of one runtime.

    The controller is deliberately ignorant of topology: the runtime
    hands it a verdict ``reason`` (computed by probing routing and the
    admission predicate on the current epoch's topology) and the
    controller turns it into an admit/reject/queue decision, maintains
    FIFO retry order, and counts ``admission.{admit,reject,queue}``.

    ``queue_rejected=False`` turns every non-admit into a hard reject —
    the mode for callers that have no later epoch to retry in.

    The queue is doubly bounded: ``max_queue`` caps its depth (overflow
    becomes a ``REASON_QUEUE_FULL`` reject) and ``max_queue_age``, when
    set, caps how many epochs a flow may wait before :meth:`evict_aged`
    turns it into a ``REASON_QUEUE_AGED`` reject — the overload ladder's
    first shedding rung.  Both bounds survive checkpoints: the queue and
    its timestamps are in :meth:`snapshot`, the limits in the runtime
    config.
    """

    enabled: bool = True
    queue_rejected: bool = True
    max_queue: int = 32
    max_queue_age: Optional[int] = None
    waiting: Deque[str] = field(default_factory=deque)
    decisions: List[AdmissionDecision] = field(default_factory=list)
    #: Epoch each waiting flow was queued at — the basis of the
    #: queue-age gauges and checkpointed alongside the queue itself.
    queued_epoch: Dict[str, int] = field(default_factory=dict)

    def decide(self, flow_id: str, epoch: int, reason: str,
               details: str = "") -> AdmissionDecision:
        """Record the verdict for one candidate and return the decision."""
        if not self.enabled or reason == REASON_OK:
            decision = AdmissionDecision(flow_id, epoch, ADMIT,
                                         REASON_OK, details)
        elif self.queue_rejected and flow_id not in self.waiting:
            if len(self.waiting) < self.max_queue:
                self.waiting.append(flow_id)
                self.queued_epoch[flow_id] = epoch
                decision = AdmissionDecision(flow_id, epoch, QUEUE,
                                             reason, details)
            else:
                decision = AdmissionDecision(
                    flow_id, epoch, REJECT, REASON_QUEUE_FULL,
                    f"queue full ({self.max_queue}); original reason: "
                    f"{reason}",
                )
        else:
            decision = AdmissionDecision(flow_id, epoch, REJECT,
                                         reason, details)
        self.decisions.append(decision)
        incr(f"admission.{decision.action}")
        return decision

    def readmit(self, flow_id: str, epoch: int,
                details: str = "readmitted from queue") -> AdmissionDecision:
        """Admit a previously queued flow whose predicate now passes."""
        self.drop_waiting(flow_id)
        decision = AdmissionDecision(flow_id, epoch, ADMIT, REASON_OK,
                                     details)
        self.decisions.append(decision)
        incr(f"admission.{ADMIT}")
        return decision

    def evict_aged(self, epoch: int,
                   max_age: Optional[int] = None) -> List[AdmissionDecision]:
        """Reject every waiting flow older than the age bound.

        ``max_age`` overrides :attr:`max_queue_age` (the overload ladder
        tightens the bound under pressure); with neither set this is a
        no-op, which keeps default runs byte-identical.  A flow queued
        at epoch ``e`` has age ``epoch - e``; eviction fires strictly
        above the bound, so ``max_age=0`` allows exactly one retry
        epoch.  Evictions are logged as ``REASON_QUEUE_AGED`` rejects
        and counted under ``admission.evicted``.
        """
        limit = max_age if max_age is not None else self.max_queue_age
        if limit is None:
            return []
        evicted: List[AdmissionDecision] = []
        for fid in list(self.waiting):
            age = max(0, epoch - self.queued_epoch.get(fid, epoch))
            if age > limit:
                self.waiting.remove(fid)
                self.queued_epoch.pop(fid, None)
                decision = AdmissionDecision(
                    fid, epoch, REJECT, REASON_QUEUE_AGED,
                    f"waited {age} epochs (limit {limit})",
                )
                self.decisions.append(decision)
                incr(f"admission.{REJECT}")
                incr("admission.evicted")
                evicted.append(decision)
        return evicted

    def drop_waiting(self, flow_id: str) -> None:
        """Forget a queued flow (it departed before ever being admitted)."""
        try:
            self.waiting.remove(flow_id)
        except ValueError:
            pass
        self.queued_epoch.pop(flow_id, None)

    def observe_queue(self, epoch: int) -> None:
        """Publish queue-state gauges as of ``epoch``.

        ``admission.queue.depth`` is the waiting count;
        ``admission.queue.age_max`` / ``age_mean`` are epochs spent
        waiting (0 for a flow queued this epoch).  Flows restored from a
        pre-gauge checkpoint that lack a queue timestamp count as age 0
        rather than inventing one.
        """
        set_gauge("admission.queue.depth", len(self.waiting))
        ages = [
            max(0, epoch - self.queued_epoch.get(fid, epoch))
            for fid in self.waiting
        ]
        set_gauge("admission.queue.age_max", max(ages) if ages else 0)
        set_gauge(
            "admission.queue.age_mean",
            (sum(ages) / len(ages)) if ages else 0.0,
        )

    def snapshot(self) -> Dict[str, object]:
        """Serializable controller state for checkpoints."""
        return {
            "waiting": list(self.waiting),
            "queued_epoch": {
                fid: self.queued_epoch[fid]
                for fid in sorted(self.queued_epoch)
            },
            "decisions": [d.to_dict() for d in self.decisions],
        }

    def restore(self, doc: Mapping[str, object]) -> None:
        self.waiting = deque(str(f) for f in doc.get("waiting", []))
        self.queued_epoch = {
            str(f): int(e)
            for f, e in doc.get("queued_epoch", {}).items()
        }
        self.decisions = [
            AdmissionDecision(
                flow_id=str(d["flow"]),
                epoch=int(d["epoch"]),
                action=str(d["action"]),
                reason=str(d["reason"]),
                details=str(d.get("details", "")),
            )
            for d in doc.get("decisions", [])
        ]
