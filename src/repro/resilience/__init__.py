"""``repro.resilience``: fault injection, lossy 2PA-D, graceful degradation.

The distributed phase-1 protocol (Sec. IV-B) is specified over an
idealized exchange; this package makes the reproduction breakable on
purpose — and trustworthy anyway:

* :mod:`~repro.resilience.faults` — seeded, serializable, shrinkable
  fault plans (message drop/duplicate/delay, ack loss, node
  crash/restart, link flaps) and the injector that turns them into
  reproducible per-message decisions;
* :mod:`~repro.resilience.channel` — an unreliable constraint-propagation
  channel with per-message acks, bounded retransmits, exponential
  backoff with deterministic jitter, and a convergence detector
  (``converged`` / ``converged-partial`` / ``timed-out``);
* :mod:`~repro.resilience.degrade` — the graceful-degradation ladder
  (local LP for confirmed flows, basic-share clamp for unconfirmed ones,
  a clique-capacity governor for the mixture) and the LP fallback chain
  warm float simplex → cold float simplex → exact-Fraction solver;
* :mod:`~repro.resilience.campaign` — chaos campaigns sweeping loss
  rates x crash schedules with the paper's safety invariants checked on
  every run.

CLI: ``repro-experiments chaos --cases 50 --seed 0 --loss 0,0.1,0.3``.
"""

from .channel import (
    CONVERGED,
    CONVERGED_PARTIAL,
    TIMED_OUT,
    ChannelStats,
    UnreliableChannel,
    worst_status,
)
from .degrade import (
    ResilientLPBackend,
    degraded_allocation,
    enforce_clique_capacity,
    global_basic_shares,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    LinkFaults,
    LinkFlap,
    NodeCrash,
)
from .campaign import (
    CaseChecks,
    ChaosReport,
    ChaosViolation,
    run_chaos,
    run_chaos_case,
)

__all__ = [
    "CONVERGED",
    "CONVERGED_PARTIAL",
    "TIMED_OUT",
    "ChannelStats",
    "UnreliableChannel",
    "worst_status",
    "ResilientLPBackend",
    "degraded_allocation",
    "enforce_clique_capacity",
    "global_basic_shares",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "LinkFlap",
    "NodeCrash",
    "CaseChecks",
    "ChaosReport",
    "ChaosViolation",
    "run_chaos",
    "run_chaos_case",
]
