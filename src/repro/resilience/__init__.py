"""``repro.resilience``: faults, lossy 2PA-D, degradation, long-lived runtime.

The distributed phase-1 protocol (Sec. IV-B) is specified over an
idealized exchange; this package makes the reproduction breakable on
purpose — and trustworthy anyway:

* :mod:`~repro.resilience.faults` — seeded, serializable, shrinkable
  fault plans (message drop/duplicate/delay, ack loss, node
  crash/restart, link flaps) and the injector that turns them into
  reproducible per-message decisions;
* :mod:`~repro.resilience.channel` — an unreliable constraint-propagation
  channel with per-message acks, bounded retransmits, exponential
  backoff with deterministic jitter, and a convergence detector
  (``converged`` / ``converged-partial`` / ``timed-out``);
* :mod:`~repro.resilience.degrade` — the graceful-degradation ladder
  (local LP for confirmed flows, basic-share clamp for unconfirmed ones,
  a floor-aware clique-capacity governor for the mixture) and the LP
  fallback chain warm float simplex → cold float simplex →
  exact-Fraction solver;
* :mod:`~repro.resilience.epochs` — seeded, serializable, shrinkable
  churn timelines (link up/down, node crash/rejoin, flow
  arrival/departure) partitioned into epochs;
* :mod:`~repro.resilience.runtime` — the long-lived
  :class:`AllocatorRuntime` that consumes a timeline epoch by epoch:
  topology diffing, DSR route repair, admission control, hysteresis
  damping, per-epoch invariant validation, crash-consistent
  checkpoints;
* :mod:`~repro.resilience.admission` — the Sec. II-D admission
  predicate (admit only if every active flow keeps its basic floor
  under Eq. (6)) and the queue/reject controller;
* :mod:`~repro.resilience.checkpoint` — atomic, checksummed,
  schema-versioned snapshots with typed load failures;
* :mod:`~repro.resilience.campaign` — chaos campaigns (fault plans) and
  churn campaigns (timelines, with a mid-timeline crash + restore
  differential) with the paper's safety invariants checked on every run.

CLI: ``repro-experiments chaos --cases 50 --seed 0 --loss 0,0.1,0.3``
and ``repro-experiments churn --cases 30 --epochs 10 --loss 0,0.2``.
"""

from .admission import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionController,
    AdmissionDecision,
    basic_share_feasible,
)
from .channel import (
    CONVERGED,
    CONVERGED_PARTIAL,
    TIMED_OUT,
    ChannelStats,
    UnreliableChannel,
    worst_status,
)
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointSchemaError,
    SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from .degrade import (
    ResilientLPBackend,
    degraded_allocation,
    enforce_clique_capacity,
    global_basic_shares,
)
from .epochs import ChurnEvent, ChurnTimeline
from .faults import (
    ArrivalBurst,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    LinkFlap,
    NodeCrash,
    WorkerCrash,
    WorkerFaultInjector,
    WorkerFaultSpec,
    WorkerHang,
)
from .runtime import AllocatorRuntime, EpochRecord, RuntimeConfig
from .overload import (
    EpochDeadline,
    EpochDeadlineExceeded,
    OverloadConfig,
    OverloadRuntime,
    RUNG_NAMES,
)
from .campaign import (
    CaseChecks,
    ChaosReport,
    ChaosViolation,
    ChurnCase,
    ChurnReport,
    ChurnViolation,
    OverloadCase,
    OverloadReport,
    OverloadViolation,
    measure_sustainable_rate,
    run_chaos,
    run_chaos_case,
    run_churn,
    run_churn_case,
    run_overload,
    run_overload_case,
)

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "AdmissionController",
    "AdmissionDecision",
    "basic_share_feasible",
    "CONVERGED",
    "CONVERGED_PARTIAL",
    "TIMED_OUT",
    "ChannelStats",
    "UnreliableChannel",
    "worst_status",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointSchemaError",
    "SCHEMA_VERSION",
    "load_checkpoint",
    "save_checkpoint",
    "ResilientLPBackend",
    "degraded_allocation",
    "enforce_clique_capacity",
    "global_basic_shares",
    "ChurnEvent",
    "ChurnTimeline",
    "ArrivalBurst",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "LinkFlap",
    "NodeCrash",
    "WorkerCrash",
    "WorkerFaultInjector",
    "WorkerFaultSpec",
    "WorkerHang",
    "AllocatorRuntime",
    "EpochRecord",
    "RuntimeConfig",
    "EpochDeadline",
    "EpochDeadlineExceeded",
    "OverloadConfig",
    "OverloadRuntime",
    "RUNG_NAMES",
    "CaseChecks",
    "ChaosReport",
    "ChaosViolation",
    "ChurnCase",
    "ChurnReport",
    "ChurnViolation",
    "run_chaos",
    "run_chaos_case",
    "run_churn",
    "run_churn_case",
    "OverloadCase",
    "OverloadReport",
    "OverloadViolation",
    "measure_sustainable_rate",
    "run_overload",
    "run_overload_case",
]
