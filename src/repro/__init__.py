"""repro: end-to-end fair bandwidth allocation in multi-hop ad hoc networks.

A complete reproduction of Baochun Li, "End-to-End Fair Bandwidth
Allocation in Multi-hop Wireless Ad Hoc Networks" (IEEE ICDCS 2005):
the contention/fairness theory (Secs. II-III), the two-phase algorithm in
centralized and distributed forms (Sec. IV), the IEEE 802.11 and two-tier
baselines, and a from-scratch discrete-event wireless simulator that
regenerates the paper's evaluation tables (Sec. V).

Quickstart::

    from repro import Flow, Network, Scenario, ContentionAnalysis
    from repro import basic_fairness_lp_allocation

    net = Network.from_positions({"A": (0, 0), "B": (200, 0),
                                  "C": (400, 0)})
    scenario = Scenario(net, [Flow("1", ["A", "B", "C"])])
    shares = basic_fairness_lp_allocation(ContentionAnalysis(scenario))
    print(shares.shares)
"""

from .core import (
    AllocationResult,
    CentralizedCoordinator,
    ContentionAnalysis,
    DistributedAllocator,
    FairnessBound,
    FeasibilityReport,
    Flow,
    Network,
    Scenario,
    Subflow,
    SubflowId,
    basic_allocation,
    basic_fairness_lp_allocation,
    basic_shares,
    check_allocation_schedulability,
    check_schedulability,
    fairness_constrained_allocation,
    feasible_fairness_allocation,
    max_feasible_scaling,
    fairness_upper_bound,
    jain_index,
    naive_allocation,
    run_centralized,
    run_distributed,
    satisfies_basic_fairness,
    satisfies_fairness_constraint,
    single_hop_optimal_allocation,
    subflow_contention_graph,
    total_effective_throughput,
    virtual_length,
)
from .sched import (
    SimulationRun,
    SystemBuild,
    TrafficConfig,
    build_2pa,
    build_80211,
    build_two_tier,
)
from .metrics import MetricsCollector

__version__ = "1.0.0"

__all__ = [
    "Flow",
    "Network",
    "Scenario",
    "Subflow",
    "SubflowId",
    "virtual_length",
    "ContentionAnalysis",
    "subflow_contention_graph",
    "basic_shares",
    "satisfies_fairness_constraint",
    "satisfies_basic_fairness",
    "total_effective_throughput",
    "jain_index",
    "FairnessBound",
    "fairness_upper_bound",
    "AllocationResult",
    "naive_allocation",
    "basic_allocation",
    "fairness_constrained_allocation",
    "feasible_fairness_allocation",
    "feasible_fairness_allocation",
    "basic_fairness_lp_allocation",
    "single_hop_optimal_allocation",
    "CentralizedCoordinator",
    "run_centralized",
    "DistributedAllocator",
    "run_distributed",
    "FeasibilityReport",
    "check_schedulability",
    "check_allocation_schedulability",
    "max_feasible_scaling",
    "SimulationRun",
    "TrafficConfig",
    "SystemBuild",
    "build_80211",
    "build_two_tier",
    "build_2pa",
    "MetricsCollector",
    "__version__",
]
