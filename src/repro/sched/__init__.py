"""Phase-2 scheduling systems and the simulation runner."""

from .runner import SimulationRun, TrafficConfig, subflow_shares_by_node
from .tdma import TdmaSimulation, TdmaWindow, build_tdma
from .fluid import (
    FluidPrediction,
    fluid_prediction,
    fluid_vs_measured,
    mac_efficiency,
    predict_for_scenario,
)
from .systems import (
    DEFAULT_ALPHA,
    build_maxmin,
    SYSTEM_BUILDERS,
    SystemBuild,
    build_2pa,
    build_80211,
    build_two_tier,
)

__all__ = [
    "SimulationRun",
    "TrafficConfig",
    "subflow_shares_by_node",
    "SystemBuild",
    "build_80211",
    "build_two_tier",
    "build_2pa",
    "build_maxmin",
    "SYSTEM_BUILDERS",
    "DEFAULT_ALPHA",
    "FluidPrediction",
    "fluid_prediction",
    "fluid_vs_measured",
    "mac_efficiency",
    "predict_for_scenario",
    "TdmaSimulation",
    "TdmaWindow",
    "build_tdma",
]
