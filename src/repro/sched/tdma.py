"""An ideal TDMA system: executing the fractional schedule directly.

Sec. III's estimation algorithm yields both an allocation and (via the
schedulability LP) a *fractional schedule* — a time-sharing of
independent sets of the subflow contention graph.  This module runs that
schedule as a perfectly coordinated, collision-free TDMA MAC:

* time is divided into frames; within a frame each independent set is
  active for its LP time fraction;
* while a set is active, each member subflow transmits queued packets
  back to back at the full channel rate (sets are independent, so the
  transmissions cannot interfere under the contention model);
* relaying, buffers, CBR sources, and the metrics pipeline are shared
  with the CSMA systems, so results are directly comparable.

This is the "ideal case" reference the paper evaluates against: the gap
between TDMA and 2PA quantifies the price of distributed random access,
while the gap between TDMA and the fluid bound quantifies pure MAC
overhead (headers and the configured guard time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core.allocation import AllocationResult
from ..core.contention import ContentionAnalysis
from ..core.feasibility import check_schedulability
from ..core.model import NodeId, Scenario, SubflowId
from ..mac.timings import MacTimings
from ..metrics.collector import MetricsCollector
from ..net.packet import DataPacket
from ..net.queues import DEFAULT_CAPACITY, DropTailQueue
from ..sim import Simulator
from ..traffic.cbr import (
    DEFAULT_PACKET_BYTES,
    DEFAULT_PACKETS_PER_SECOND,
    CbrSource,
    US,
)

#: Default TDMA frame length (us).  Short enough for smooth service,
#: long enough that per-window rounding losses stay small.
DEFAULT_FRAME_US = 50_000.0


@dataclass(frozen=True)
class TdmaWindow:
    """One slice of the frame: which subflows transmit, for how long."""

    members: FrozenSet[SubflowId]
    fraction: float


class TdmaSimulation:
    """Collision-free execution of a fractional schedule."""

    def __init__(
        self,
        scenario: Scenario,
        allocation: AllocationResult,
        analysis: Optional[ContentionAnalysis] = None,
        frame_us: float = DEFAULT_FRAME_US,
        timings: Optional[MacTimings] = None,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        packets_per_second: float = DEFAULT_PACKETS_PER_SECOND,
        queue_capacity: int = DEFAULT_CAPACITY,
        guard_us: float = 0.0,
    ) -> None:
        self.scenario = scenario
        self.allocation = allocation
        self.analysis = analysis or ContentionAnalysis(scenario)
        self.timings = timings or MacTimings()
        self.frame_us = float(frame_us)
        self.packet_bytes = packet_bytes
        self.guard_us = float(guard_us)
        #: Airtime per packet: pure DATA frame (ideal coordination needs
        #: no RTS/CTS or backoff) plus an optional guard time.
        self.packet_airtime = (
            self.timings.data_duration(packet_bytes) + self.guard_us
        )

        self.sim = Simulator()
        self.metrics = MetricsCollector(scenario)
        self.queues: Dict[SubflowId, DropTailQueue] = {
            s.sid: DropTailQueue(queue_capacity)
            for f in scenario.flows
            for s in f.subflows
        }
        self.windows = self._build_windows()
        self.sources = [
            CbrSource(
                sim=self.sim,
                flow=flow,
                sink=self._source_sink,
                packets_per_second=packets_per_second,
                packet_bytes=packet_bytes,
                on_offered=self.metrics.record_offered,
                on_source_drop=self.metrics.record_source_drop,
            )
            for flow in scenario.flows
        ]

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def _build_windows(self) -> List[TdmaWindow]:
        """Independent-set windows from the schedulability LP.

        Infeasible allocations (pentagon-style) are normalized to a
        schedule of length 1 — shares are implicitly scaled down, which
        is exactly the paper's "weight factors" interpretation.
        """
        rates = {
            sub.sid: self.allocation.share(flow.flow_id)
            for flow in self.scenario.flows
            for sub in flow.subflows
        }
        report = check_schedulability(
            self.analysis.graph, rates, self.scenario.capacity
        )
        total = report.schedule_length
        if total <= 0:
            return []
        scale = 1.0 / max(total, 1.0)
        windows = [
            TdmaWindow(frozenset(s), t * scale)
            for s, t in sorted(
                report.schedule.items(),
                key=lambda kv: sorted(map(str, kv[0])),
            )
        ]
        return windows

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _source_sink(self, packet: DataPacket) -> bool:
        return self.queues[packet.subflow].offer(packet)

    def _deliver(self, packet: DataPacket) -> None:
        self.metrics.record_hop_delivery(packet, now=self.sim.now)
        if packet.at_last_hop:
            return
        forwarded = packet.next_hop_copy()
        if not self.queues[forwarded.subflow].offer(forwarded):
            self.metrics.record_relay_drop(forwarded)

    # ------------------------------------------------------------------
    # Frame machinery
    # ------------------------------------------------------------------
    def _run_frame(self, horizon: float) -> None:
        start = self.sim.now
        offset = 0.0
        for window in self.windows:
            length = window.fraction * self.frame_us
            self._schedule_window(start + offset, length, window)
            offset += length
        next_frame = start + self.frame_us
        if next_frame < horizon:
            self.sim.schedule_at(next_frame,
                                 lambda: self._run_frame(horizon))

    def _schedule_window(self, begin: float, length: float,
                         window: TdmaWindow) -> None:
        """Queue per-subflow transmissions inside one window."""
        slots = int(length / self.packet_airtime)
        for k in range(slots):
            t = begin + (k + 1) * self.packet_airtime
            self.sim.schedule_at(
                t, lambda members=window.members: self._serve(members)
            )

    def _serve(self, members: FrozenSet[SubflowId]) -> None:
        """All member subflows complete one packet (if backlogged).

        Backpressure: a relay hop defers when its next-hop queue is full
        (a perfectly coordinated scheduler never transmits a packet that
        would be dropped on arrival), so window-rounding imbalances
        between a flow's hops cost throughput, never losses.
        """
        for sid in members:
            queue = self.queues.get(sid)
            if not queue:
                continue
            head = queue.head()
            if head is None:
                continue
            if not head.at_last_hop:
                next_queue = self.queues[
                    SubflowId(head.flow_id, head.hop + 1)
                ]
                if next_queue.is_full:
                    continue
            self._deliver(queue.pop())

    # ------------------------------------------------------------------
    def run(self, seconds: float) -> MetricsCollector:
        if seconds <= 0:
            raise ValueError("duration must be positive")
        for idx, source in enumerate(self.sources):
            source.start(offset=idx * 7.0)
        horizon = seconds * US
        self._run_frame(horizon)
        self.sim.run_until(horizon)
        for source in self.sources:
            source.stop()
        self.metrics.duration = horizon
        return self.metrics


def build_tdma(
    scenario: Scenario,
    allocation: Optional[AllocationResult] = None,
    **kwargs,
) -> TdmaSimulation:
    """Ideal-TDMA system for ``scenario`` (defaults to the 2PA-C
    allocation)."""
    from ..core.allocation import basic_fairness_lp_allocation

    analysis = ContentionAnalysis(scenario)
    if allocation is None:
        allocation = basic_fairness_lp_allocation(analysis)
    return TdmaSimulation(scenario, allocation, analysis=analysis,
                          **kwargs)
