"""The three compared systems, assembled end to end.

Each builder turns a :class:`~repro.core.model.Scenario` into a ready
:class:`~repro.sched.runner.SimulationRun`:

* :func:`build_80211` — plain IEEE 802.11 DCF (no allocation layer);
* :func:`build_two_tier` — Luo et al.'s two-tier fair scheduling,
  reproduced as: per-subflow shares from the single-hop throughput
  optimization (Sec. III's comparison), realized by the tag-based fair
  backoff scheduler;
* :func:`build_2pa` — the paper's two-phase algorithm; phase 1 runs either
  centralized (``2PA-C``) or distributed (``2PA-D``), and phase 2 uses the
  same fair backoff scheduler with the resulting equal-per-hop shares.

Every builder also returns the allocation it computed (``None`` for
802.11), so experiments can report both the analytic shares and the
simulated throughput side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.allocation import (
    AllocationResult,
    basic_fairness_lp_allocation,
    single_hop_optimal_allocation,
)
from ..core.contention import ContentionAnalysis
from ..core.distributed import run_distributed
from ..core.model import NodeId, Scenario, SubflowId
from ..mac import MacTimings
from ..mac.policies import DcfPolicy, FairBackoffPolicy
from ..sim import Tracer, NULL_TRACER
from .runner import SimulationRun, TrafficConfig, subflow_shares_by_node

#: Default strictness knob for the tag-based backoff (see DESIGN.md on
#: units; the paper's 0.0001 is in ns-2 tag units).
DEFAULT_ALPHA = 0.001


@dataclass
class SystemBuild:
    """A runnable simulation plus the allocation that parameterizes it."""

    name: str
    run: SimulationRun
    allocation: Optional[AllocationResult]
    subflow_shares: Optional[Dict[SubflowId, float]]


def build_80211(
    scenario: Scenario,
    seed: int = 1,
    timings: Optional[MacTimings] = None,
    traffic: Optional[TrafficConfig] = None,
    tracer: Tracer = NULL_TRACER,
) -> SystemBuild:
    """Standard 802.11: one interface queue per node, BEB backoff."""

    def factory(node: NodeId, t: MacTimings) -> DcfPolicy:
        return DcfPolicy(node, t)

    run = SimulationRun(scenario, factory, seed=seed, timings=timings,
                        traffic=traffic, tracer=tracer)
    return SystemBuild("802.11", run, None, None)


def _fair_backoff_build(
    name: str,
    scenario: Scenario,
    subflow_shares: Dict[SubflowId, float],
    allocation: Optional[AllocationResult],
    seed: int,
    alpha: float,
    timings: Optional[MacTimings],
    traffic: Optional[TrafficConfig],
    tracer: Tracer,
) -> SystemBuild:
    per_node = subflow_shares_by_node(scenario, subflow_shares)

    def factory(node: NodeId, t: MacTimings) -> FairBackoffPolicy:
        return FairBackoffPolicy(node, t, per_node.get(node, {}),
                                 alpha=alpha)

    run = SimulationRun(scenario, factory, seed=seed, timings=timings,
                        traffic=traffic, tracer=tracer)
    return SystemBuild(name, run, allocation, subflow_shares)


def build_two_tier(
    scenario: Scenario,
    seed: int = 1,
    alpha: float = DEFAULT_ALPHA,
    timings: Optional[MacTimings] = None,
    traffic: Optional[TrafficConfig] = None,
    tracer: Tracer = NULL_TRACER,
    analysis: Optional[ContentionAnalysis] = None,
) -> SystemBuild:
    """Two-tier baseline: single-hop-optimal subflow shares + tag backoff."""
    analysis = analysis or ContentionAnalysis(scenario)
    allocation = single_hop_optimal_allocation(analysis)
    shares = dict(allocation.subflow_shares)
    return _fair_backoff_build(
        "two-tier", scenario, shares, allocation, seed, alpha, timings,
        traffic, tracer,
    )


def build_2pa(
    scenario: Scenario,
    mode: str = "centralized",
    seed: int = 1,
    alpha: float = DEFAULT_ALPHA,
    timings: Optional[MacTimings] = None,
    traffic: Optional[TrafficConfig] = None,
    tracer: Tracer = NULL_TRACER,
    analysis: Optional[ContentionAnalysis] = None,
) -> SystemBuild:
    """The paper's 2PA: phase-1 allocation + phase-2 fair backoff.

    ``mode`` selects the phase-1 algorithm: ``"centralized"`` (2PA-C,
    the Prop. 2 LP) or ``"distributed"`` (2PA-D, local LPs).
    """
    if mode == "centralized":
        analysis = analysis or ContentionAnalysis(scenario)
        allocation = basic_fairness_lp_allocation(analysis)
        name = "2PA-C"
    elif mode == "distributed":
        allocation = run_distributed(scenario)
        name = "2PA-D"
    else:
        raise ValueError(f"unknown 2PA mode {mode!r}")
    # Phase 2's weights: equal-per-hop subflow shares (the allocated
    # shares become the new subflow weights, Sec. IV-C).
    shares: Dict[SubflowId, float] = {}
    for flow in scenario.flows:
        for sub in flow.subflows:
            shares[sub.sid] = allocation.share(flow.flow_id)
    return _fair_backoff_build(
        name, scenario, shares, allocation, seed, alpha, timings, traffic,
        tracer,
    )


def build_maxmin(
    scenario: Scenario,
    seed: int = 1,
    alpha: float = DEFAULT_ALPHA,
    timings: Optional[MacTimings] = None,
    traffic: Optional[TrafficConfig] = None,
    tracer: Tracer = NULL_TRACER,
    analysis: Optional[ContentionAnalysis] = None,
) -> SystemBuild:
    """Max-min baseline (Huang & Bensaou, the paper's ref. [5]).

    Per-subflow max-min fair rates from progressive filling — no
    pre-assigned weights, no end-to-end coordination — realized with the
    same tag-based scheduler as the other allocation-driven systems.
    Like two-tier, it can over-serve upstream hops relative to
    downstream bottlenecks (Fig. 1: F1.1 at 2B/3 vs F1.2 at B/3).
    """
    from ..core.maxmin_rates import maxmin_subflow_rates

    analysis = analysis or ContentionAnalysis(scenario)
    rates = maxmin_subflow_rates(analysis)
    allocation = AllocationResult(
        "maxmin-subflow",
        {
            f.flow_id: min(rates[s.sid] for s in f.subflows)
            for f in scenario.flows
        },
        scenario.capacity,
        subflow_shares=dict(rates),
    )
    return _fair_backoff_build(
        "maxmin", scenario, dict(rates), allocation, seed, alpha,
        timings, traffic, tracer,
    )


SYSTEM_BUILDERS = {
    "802.11": build_80211,
    "two-tier": build_two_tier,
    "maxmin": build_maxmin,
    "2pa-c": lambda scenario, **kw: build_2pa(scenario, "centralized", **kw),
    "2pa-d": lambda scenario, **kw: build_2pa(scenario, "distributed", **kw),
}
