"""End-to-end simulation assembly and execution.

``SimulationRun`` wires together everything below the allocation layer:
the event engine, the wireless channel, one MAC entity per node (with a
per-system scheduling policy), CBR sources, source-route forwarding at
relays, and the metrics collector.  The three compared systems differ only
in the policy factory they pass in — see :mod:`repro.sched.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..core.model import NodeId, Scenario, SubflowId
from ..mac import MacEntity, MacTimings, WirelessChannel
from ..mac.policies import SchedulingPolicy
from ..metrics.collector import MetricsCollector
from ..obs.registry import incr, phase_timer, set_gauge
from ..net.packet import DataPacket
from ..sim import RngRegistry, Simulator, Tracer, NULL_TRACER
from ..traffic.cbr import (
    DEFAULT_PACKET_BYTES,
    DEFAULT_PACKETS_PER_SECOND,
    CbrSource,
    US,
)

#: A policy factory: (node, timings) -> SchedulingPolicy.
PolicyFactory = Callable[[NodeId, MacTimings], SchedulingPolicy]


@dataclass
class TrafficConfig:
    """Workload knobs (defaults follow the paper's evaluation)."""

    packets_per_second: float = DEFAULT_PACKETS_PER_SECOND
    packet_bytes: int = DEFAULT_PACKET_BYTES
    jitter_fraction: float = 0.0
    stagger: float = 997.0  # us between flow start times (desynchronizes)


class SimulationRun:
    """One simulation of one system on one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        policy_factory: PolicyFactory,
        seed: int = 1,
        timings: Optional[MacTimings] = None,
        traffic: Optional[TrafficConfig] = None,
        tracer: Tracer = NULL_TRACER,
        series_window_seconds: Optional[float] = None,
    ) -> None:
        self.scenario = scenario
        self.timings = timings or MacTimings()
        self.traffic = traffic or TrafficConfig()
        self.tracer = tracer
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.metrics = MetricsCollector(
            scenario, series_window_seconds=series_window_seconds
        )
        self.channel = WirelessChannel(self.sim, scenario.network, tracer)
        self.macs: Dict[NodeId, MacEntity] = {}
        for node in scenario.network.nodes:
            policy = policy_factory(node, self.timings)
            self.macs[node] = MacEntity(
                node=node,
                sim=self.sim,
                channel=self.channel,
                policy=policy,
                rng=self.rng,
                timings=self.timings,
                tracer=tracer,
                on_delivery=self._on_delivery,
                on_drop=self._on_mac_drop,
            )
        self.sources = [
            CbrSource(
                sim=self.sim,
                flow=flow,
                sink=self.macs[flow.source].enqueue,
                packets_per_second=self.traffic.packets_per_second,
                packet_bytes=self.traffic.packet_bytes,
                rng=self.rng,
                jitter_fraction=self.traffic.jitter_fraction,
                on_offered=self.metrics.record_offered,
                on_source_drop=self.metrics.record_source_drop,
            )
            for flow in scenario.flows
        ]

    # ------------------------------------------------------------------
    # Forwarding plane
    # ------------------------------------------------------------------
    def _on_delivery(self, receiver: NodeId, packet: DataPacket) -> None:
        """A DATA frame was decoded at its next hop."""
        self.metrics.record_hop_delivery(packet, now=self.sim.now)
        self.tracer.log(self.sim.now, "app", "hop-delivered",
                        node=receiver, sid=str(packet.subflow))
        if packet.at_last_hop:
            return
        forwarded = packet.next_hop_copy()
        if not self.macs[receiver].enqueue(forwarded):
            self.metrics.record_relay_drop(forwarded)

    def _on_mac_drop(self, node: NodeId, packet: DataPacket,
                     reason: str) -> None:
        self.metrics.record_mac_drop(packet)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, seconds: float) -> MetricsCollector:
        """Simulate ``seconds`` of traffic and return the metrics."""
        if seconds <= 0:
            raise ValueError("duration must be positive")
        with phase_timer("sim.run"):
            for idx, source in enumerate(self.sources):
                source.start(offset=idx * self.traffic.stagger)
            horizon = seconds * US
            self.sim.run_until(horizon)
            for source in self.sources:
                source.stop()
        self.metrics.duration = horizon
        incr("sim.runs")
        set_gauge("sim.simulated_seconds", seconds)
        return self.metrics


def subflow_shares_by_node(
    scenario: Scenario, subflow_shares: Mapping[SubflowId, float]
) -> Dict[NodeId, Dict[SubflowId, float]]:
    """Group per-subflow shares by the node that transmits them."""
    per_node: Dict[NodeId, Dict[SubflowId, float]] = {
        n: {} for n in scenario.network.nodes
    }
    for flow in scenario.flows:
        for sub in flow.subflows:
            share = subflow_shares.get(sub.sid)
            if share is None:
                raise KeyError(f"no share for subflow {sub.sid}")
            per_node[sub.sender][sub.sid] = share
    return per_node
