"""An idealized fluid scheduler: the MAC-less reference point.

Sec. III's "estimation algorithm" computes optimal allocation strategies
"for the purpose of evaluating the effectiveness of any proposed
algorithms against solutions in the ideal case".  This module turns those
allocations into the corresponding *ideal* packet counts — what a
perfectly coordinated, overhead-free TDMA realization of the fractional
schedule would deliver — so simulation results can be reported as a
fraction of the achievable ideal.

The fluid model charges each subflow only its payload airtime
(``L / (share * C)``), i.e. no MAC headers, handshakes, or backoff.  An
``efficiency`` factor (default: the DATA-payload fraction of a full
RTS/CTS/DATA/ACK exchange) converts it into a MAC-comparable bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.allocation import AllocationResult
from ..core.contention import ContentionAnalysis
from ..core.feasibility import check_allocation_schedulability
from ..core.model import Scenario
from ..mac.timings import MacTimings
from ..traffic.cbr import DEFAULT_PACKET_BYTES, US


@dataclass(frozen=True)
class FluidPrediction:
    """Ideal per-flow packet deliveries for one allocation strategy."""

    flow_packets: Dict[str, float]
    total_packets: float
    schedulable: bool
    schedule_length: float
    efficiency: float

    def packets(self, flow_id: str) -> float:
        return self.flow_packets[flow_id]


def mac_efficiency(
    timings: Optional[MacTimings] = None,
    packet_bytes: int = DEFAULT_PACKET_BYTES,
    mean_backoff_slots: float = None,
) -> float:
    """Payload airtime as a fraction of a full MAC exchange.

    Accounts for DIFS, RTS/CTS/ACK, SIFS gaps, PLCP overhead and the mean
    backoff (CW_min / 2 slots unless overridden) — the factor by which a
    real CSMA/CA MAC undershoots the fluid bound even without contention.
    """
    t = timings or MacTimings()
    if mean_backoff_slots is None:
        mean_backoff_slots = t.cw_min / 2.0
    payload_airtime = packet_bytes * 8.0 / t.data_rate
    exchange = (
        t.difs + mean_backoff_slots * t.slot
        + t.transaction_duration(packet_bytes)
    )
    return payload_airtime / exchange


def fluid_prediction(
    analysis: ContentionAnalysis,
    allocation: AllocationResult,
    seconds: float,
    capacity_mbps: float = 2.0,
    packet_bytes: int = DEFAULT_PACKET_BYTES,
    efficiency: float = 1.0,
    rescale_infeasible: bool = True,
) -> FluidPrediction:
    """Ideal packet deliveries for ``allocation`` over ``seconds``.

    When the allocation is not schedulable (the pentagon case) and
    ``rescale_infeasible`` is set, shares are scaled down uniformly by the
    fractional schedule length so the prediction reflects what a perfect
    scheduler could actually serve at the allocation's *ratios*.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    report = check_allocation_schedulability(
        analysis, allocation.shares, capacity=1.0
    )
    scale = 1.0
    if not report.feasible and rescale_infeasible:
        scale = 1.0 / report.schedule_length
    packet_time_us = packet_bytes * 8.0 / capacity_mbps  # at full rate
    horizon = seconds * US
    flow_packets = {
        fid: efficiency * scale * share * horizon / packet_time_us
        for fid, share in allocation.shares.items()
    }
    return FluidPrediction(
        flow_packets=flow_packets,
        total_packets=sum(flow_packets.values()),
        schedulable=report.feasible,
        schedule_length=report.schedule_length,
        efficiency=efficiency,
    )


def fluid_vs_measured(
    prediction: FluidPrediction,
    measured: Mapping[str, int],
) -> Dict[str, float]:
    """Measured / ideal ratio per flow (the MAC's realization quality)."""
    out: Dict[str, float] = {}
    for fid, ideal in prediction.flow_packets.items():
        out[fid] = measured.get(fid, 0) / ideal if ideal > 0 else 0.0
    return out


def predict_for_scenario(
    scenario: Scenario,
    allocation: AllocationResult,
    seconds: float,
    timings: Optional[MacTimings] = None,
) -> FluidPrediction:
    """Convenience: MAC-comparable prediction (efficiency from timings)."""
    analysis = ContentionAnalysis(scenario)
    return fluid_prediction(
        analysis,
        allocation,
        seconds,
        capacity_mbps=(timings or MacTimings()).data_rate,
        efficiency=mac_efficiency(timings),
    )
