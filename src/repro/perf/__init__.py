"""Performance layer: fast kernels, incremental re-analysis, warm LP
re-solves, caching, and a deterministic parallel sweep runner.

Every entry point here is a drop-in accelerator for an existing code
path and is validated to produce **bit-identical** results against the
plain implementation it replaces:

* :func:`~repro.perf.cliques.maximal_cliques_bitset` — bitset
  Bron–Kerbosch, dispatched automatically by
  :func:`repro.graphs.maximal_cliques`.
* :class:`~repro.perf.incremental.IncrementalContention` — flow
  arrival/departure updates to a contention analysis without a full
  rebuild (per-component clique caching).
* :class:`~repro.perf.warm.WarmLPCache` — basis reuse across the
  structurally-identical LP re-solves of the dynamic experiment.
* :class:`~repro.perf.cache.AnalysisCache` — content-hash-keyed,
  size-bounded memoization of :class:`ContentionAnalysis` and the
  phase-1 LP allocation.
* :class:`~repro.perf.parallel.ParallelSweep` — process-pool fan-out
  with one seeded RNG stream per task and ordered result merge.

All kernels report ``perf.*`` counters and timers through the
:mod:`repro.obs` registry, so speedups land in run artifacts.
"""

from .cache import (
    AnalysisCache,
    cached_basic_fairness_allocation,
    cached_contention_analysis,
    clear_default_cache,
    default_cache,
    scenario_fingerprint,
)
from .cliques import (
    adjacency_bitmasks,
    adjacency_matrix,
    bitset_cliques_from_masks,
    maximal_cliques_bitset,
)
from .incremental import IncrementalContention
from .parallel import ParallelSweep, effective_jobs
from .shard import (
    BatchAllocationEngine,
    ComponentProblem,
    ShardedSolver,
    component_fingerprint,
    component_problems,
)
from .warm import WarmLPCache

__all__ = [
    "AnalysisCache",
    "BatchAllocationEngine",
    "ComponentProblem",
    "IncrementalContention",
    "ParallelSweep",
    "ShardedSolver",
    "WarmLPCache",
    "component_fingerprint",
    "component_problems",
    "adjacency_bitmasks",
    "adjacency_matrix",
    "bitset_cliques_from_masks",
    "cached_basic_fairness_allocation",
    "cached_contention_analysis",
    "clear_default_cache",
    "default_cache",
    "effective_jobs",
    "maximal_cliques_bitset",
    "scenario_fingerprint",
]
