"""Warm-started LP re-solves: basis reuse across structurally equal LPs.

The dynamic experiment re-runs phase 1 at every flow arrival/departure;
the LPs it generates recur with identical *structure* (same variables,
same constraint supports) and only perturbed bounds — and the
lexicographic max-min refinement inside one allocation solves whole
families of such siblings.  :class:`WarmLPCache` remembers the final
simplex basis per LP structure and feeds it back into
:func:`repro.lp.simplex.solve_simplex`, which then skips phase 1 and
re-optimizes in a handful of pivots.  A warm start that does not map onto
the new problem falls back to the cold path inside the solver, so the
cache can never change a solve's status.

Usage: pass ``cache.solver`` anywhere a ``backend`` is accepted::

    cache = WarmLPCache()
    basic_fairness_lp_allocation(analysis, backend=cache.solver)
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from ..lp.problem import LinearProgram, LPSolution
from ..lp.simplex import Basis, solve_simplex
from ..obs.registry import incr, phase_timer
from ..obs.trace import span

#: A warm-startable solver: ``(lp, start_basis=...) -> LPSolution``.
WarmSolver = Callable[..., LPSolution]

__all__ = ["WarmLPCache", "lp_structure_signature"]

_LOG = logging.getLogger(__name__)


def lp_structure_signature(lp: LinearProgram) -> Hashable:
    """A key identifying the LP's structure (not its numbers).

    Two LPs share a signature iff they have the same variables in the
    same order and constraints with the same supports in the same order —
    exactly the condition under which a stored basis' column labels mean
    the same thing in both problems.  Supports are compared in coefficient
    insertion order (cheap and deterministic for programmatically built
    LPs); an equal support written in a different order merely misses the
    cache, which is safe.
    """
    return (
        tuple(lp.variables),
        tuple(tuple(c.coeffs) for c in lp.constraints),
    )


class WarmLPCache:
    """Size-bounded LRU of final simplex bases, keyed by LP structure.

    :meth:`solver` is a drop-in LP backend: it looks up a basis for the
    incoming problem's structure, solves warm when one is known, and
    stores the final basis for the next structurally identical solve.

    ``solve_fn`` selects the underlying warm-startable solver (any
    callable accepting ``start_basis=``); the default is the dense
    :func:`~repro.lp.simplex.solve_simplex`, and
    :func:`~repro.lp.revised.solve_revised` is a drop-in because both
    backends share the structure-stable basis label encoding.
    """

    def __init__(self, max_entries: int = 256,
                 solve_fn: Optional[WarmSolver] = None) -> None:
        self.max_entries = int(max_entries)
        self._solve: WarmSolver = (
            solve_fn if solve_fn is not None else solve_simplex
        )
        self._bases: "OrderedDict[Hashable, Basis]" = OrderedDict()
        # Per variables-tuple: the latest (constraint structure, basis).
        # Serves extension warm starts for LPs that grow by appending
        # constraint rows (the lexicographic max-min rounds).
        self._latest: "OrderedDict[Hashable, Tuple[Hashable, Basis]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._bases)

    def clear(self) -> None:
        self._bases.clear()
        self._latest.clear()

    def lookup(self, lp: LinearProgram) -> Optional[Basis]:
        return self._get(lp_structure_signature(lp))

    def store(self, lp: LinearProgram, basis: Optional[Basis]) -> None:
        self._put(lp_structure_signature(lp), basis)

    def _get(self, key: Hashable) -> Optional[Basis]:
        basis = self._bases.get(key)
        if basis is not None:
            self._bases.move_to_end(key)
        return basis

    def _put(self, key: Hashable, basis: Optional[Basis]) -> None:
        if basis is None:
            return
        self._bases[key] = basis
        self._bases.move_to_end(key)
        while len(self._bases) > self.max_entries:
            self._bases.popitem(last=False)

    # ------------------------------------------------------------------
    # Checkpoint support (repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def dump_state(self) -> dict:
        """JSON-ready snapshot of both basis maps, LRU order preserved.

        Hit/miss counters are deliberately excluded: they are run-local
        telemetry, and a restored runtime must produce a byte-identical
        state dump to one that never crashed.
        """
        def sig(key):
            vars_sig, cons_sig = key
            return [list(vars_sig), [list(c) for c in cons_sig]]

        def basis(b):
            return [[label, index] for label, index in b]

        return {
            "bases": [
                [sig(key), basis(b)] for key, b in self._bases.items()
            ],
            "latest": [
                [list(vars_sig), [list(c) for c in cons_sig], basis(b)]
                for vars_sig, (cons_sig, b) in self._latest.items()
            ],
        }

    def load_state(self, doc: dict) -> None:
        """Rebuild the cache from :meth:`dump_state` output."""
        def basis(entry):
            return tuple((str(label), int(index)) for label, index in entry)

        self._bases.clear()
        self._latest.clear()
        for (vars_doc, cons_doc), basis_doc in doc.get("bases", []):
            key = (
                tuple(str(v) for v in vars_doc),
                tuple(tuple(str(v) for v in c) for c in cons_doc),
            )
            self._bases[key] = basis(basis_doc)
        for vars_doc, cons_doc, basis_doc in doc.get("latest", []):
            vars_sig = tuple(str(v) for v in vars_doc)
            cons_sig = tuple(tuple(str(v) for v in c) for c in cons_doc)
            self._latest[vars_sig] = (cons_sig, basis(basis_doc))

    def solver(self, lp: LinearProgram) -> LPSolution:
        """Backend callable: warm-started simplex with basis memoization.

        An exact structure hit replays the stored basis.  Failing that,
        if a basis is known for the same variables and a constraint
        structure that is a *prefix* of this LP's (the max-min rounds
        grow their probe LPs by appending rows), the stored basis is
        extended with the new rows' slack columns — the textbook warm
        start for an added ``<=`` row.  Either way the solver validates
        the basis (resolvable labels, nonsingular, feasible) and falls
        back to a cold solve, so a bad guess can only cost time.
        """
        with phase_timer("perf.lp.warm.solve"), \
                span("lp.warm.solve") as warm_span:
            vars_sig, cons_sig = lp_structure_signature(lp)
            key = (vars_sig, cons_sig)
            start = self._get(key)
            if start is not None:
                self.hits += 1
                incr("perf.lp.warm.hits")
                warm_span.tag(path="hit")
            else:
                self.misses += 1
                incr("perf.lp.warm.misses")
                warm_span.tag(path="miss")
                latest = self._latest.get(vars_sig)
                if latest is not None:
                    prev_cons, prev_basis = latest
                    k = len(prev_cons)
                    if k < len(cons_sig) and cons_sig[:k] == prev_cons:
                        start = prev_basis + tuple(
                            ("s", i) for i in range(k, len(cons_sig))
                        )
                        incr("perf.lp.warm.extends")
                        warm_span.tag(path="extend")
                        _LOG.debug(
                            "extending %d-row warm basis with %d slack "
                            "column(s) for a prefix-compatible LP",
                            k, len(cons_sig) - k,
                        )
            solution = self._solve(lp, start_basis=start)
        if solution.basis is not None:
            self._put(key, solution.basis)
            self._latest[vars_sig] = (cons_sig, solution.basis)
            self._latest.move_to_end(vars_sig)
            while len(self._latest) > self.max_entries:
                self._latest.popitem(last=False)
        return solution
