"""Bitset Bron–Kerbosch kernel.

The set-based kernel in :mod:`repro.graphs.cliques` manipulates Python
sets of vertex objects; every intersection hashes vertices.  Here vertices
become indices into a canonical order, neighborhoods become Python int
bitmasks (arbitrary precision, so any graph size works), and the P/X/R
sets of Bron–Kerbosch become three integers — intersections are single
``&`` operations over machine words.  On 100-node contention graphs
(``benchmarks/bench_scalability.py``) this runs ~3-5x faster than the
set kernel, growing with graph size, while producing bit-identical
output (same cliques, same canonical order);
``tests/test_perf_cliques.py`` holds the two kernels equal on the
fuzzer's random graphs.

The adjacency masks are built from a precomputed single-bit table
(``sum`` over neighbor indices); very large graphs route through a numpy
boolean adjacency matrix with vectorized row packing (``np.packbits``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..graphs.cliques import clique_vertex_order
from ..graphs.graph import Graph, Vertex
from ..obs.registry import incr, phase_timer

__all__ = [
    "adjacency_matrix",
    "adjacency_bitmasks",
    "maximal_cliques_bitset",
    "bitset_cliques_from_masks",
]

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - legacy interpreters
    def _popcount(x: int) -> int:
        return bin(x).count("1")

#: Vertex count from which the numpy packbits mask builder takes over.
#: Below this the bit-table ``sum`` build wins on every measured graph
#: (contention graphs up to |V|=327 and dense G(n, 0.5..0.9) up to
#: n=400); the matrix route is kept for very large dense graphs where
#: row packing amortizes.
_NUMPY_BUILD_MIN_VERTICES = 512

#: Pivot-scan budget per Bron–Kerbosch node.  Scanning all of P|X for
#: the Tomita pivot costs more than the weaker pivot saves: capping at
#: the first 8 candidates grew the recursion by < 1.2x on every
#: measured family (contention graphs, dense/sparse G(n, p),
#: Moon–Moser) while removing the dominant per-node cost.
_PIVOT_SCAN_CAP = 8


def adjacency_matrix(
    graph: Graph, order: Sequence[Vertex] = None
) -> Tuple[np.ndarray, List[Vertex]]:
    """Boolean adjacency matrix of ``graph`` in canonical vertex order.

    Returns ``(matrix, order)`` where ``matrix[i, j]`` is True iff the
    ``i``-th and ``j``-th vertices of ``order`` are adjacent.  ``order``
    defaults to :func:`repro.graphs.cliques.clique_vertex_order`.
    """
    if order is None:
        order = clique_vertex_order(graph)
    index = {v: i for i, v in enumerate(order)}
    n = len(order)
    matrix = np.zeros((n, n), dtype=bool)
    for v in order:
        i = index[v]
        nbrs = [index[u] for u in graph.neighbors(v)]
        if nbrs:
            matrix[i, nbrs] = True
    return matrix, list(order)


def _masks_from_matrix(matrix: np.ndarray) -> List[int]:
    """Pack each boolean adjacency row into a Python int bitmask."""
    packed = np.packbits(matrix, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def adjacency_bitmasks(
    graph: Graph, order: Sequence[Vertex] = None
) -> Tuple[List[int], List[Vertex]]:
    """Per-vertex neighborhood bitmasks in canonical vertex order.

    Bit ``j`` of ``masks[i]`` is set iff vertices ``order[i]`` and
    ``order[j]`` are adjacent.  Very large graphs route through the
    numpy adjacency matrix (vectorized packing); below the threshold a
    precomputed single-bit table plus ``sum`` over neighbor indices is
    faster (each mask is a sum of distinct powers of two, so ``sum``
    is a union).
    """
    if order is None:
        order = clique_vertex_order(graph)
    n = len(order)
    if n >= _NUMPY_BUILD_MIN_VERTICES:
        matrix, order = adjacency_matrix(graph, order)
        return _masks_from_matrix(matrix), list(order)
    index = {v: i for i, v in enumerate(order)}
    bits = [1 << i for i in range(n)]
    bit_of = bits.__getitem__
    idx_of = index.__getitem__
    masks = [
        sum(map(bit_of, map(idx_of, graph.neighbors(v)))) for v in order
    ]
    return masks, list(order)


def bitset_cliques_from_masks(masks: Sequence[int]) -> List[int]:
    """Maximal cliques of the graph given by ``masks``, as bitmasks.

    Bron–Kerbosch with a capped greatest-|N(u) & P| pivot scan (see
    :data:`_PIVOT_SCAN_CAP`); ties break toward the lowest vertex index.
    The pivot only steers the recursion — any choice yields the same
    maximal-clique set — and the scan order is fixed, so enumeration is
    deterministic.  Output order is the raw recursion order; callers
    canonicalize.
    """
    n = len(masks)
    out: List[int] = []
    if n == 0:
        return out
    full = (1 << n) - 1
    append = out.append
    bit_length = int.bit_length
    popcount = _popcount
    scan_cap = _PIVOT_SCAN_CAP

    def expand(r: int, p: int, x: int) -> None:
        if not p:
            if not x:
                append(r)
            return
        # Pivot selection: best |N(u) & P| among the first few candidates
        # of P|X in ascending index order, stopping early on a pivot that
        # covers all of P.  The cap trades a slightly weaker pivot (any
        # vertex of P|X is a correct pivot) for a much cheaper scan; on
        # every measured graph family the recursion grows < 1.2x while
        # the scan cost — the dominant term — drops by the cap factor.
        # The scan order is fixed, so enumeration stays deterministic.
        p_count = popcount(p)
        best_cnt = -1
        pivot_nbrs = 0
        m = p | x
        left = scan_cap
        while m and left:
            left -= 1
            low = m & -m
            m ^= low
            nbrs = masks[bit_length(low) - 1]
            cnt = popcount(nbrs & p)
            if cnt > best_cnt:
                best_cnt = cnt
                pivot_nbrs = nbrs
                if cnt == p_count:
                    break
        cand = p & ~pivot_nbrs
        while cand:
            vbit = cand & -cand
            cand ^= vbit
            mv = masks[bit_length(vbit) - 1]
            expand(r | vbit, p & mv, x & mv)
            p ^= vbit
            x |= vbit

    expand(0, full, 0)
    return out


def maximal_cliques_bitset(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Bitset Bron–Kerbosch, bit-identical to the set-based kernel.

    Same signature and output contract as
    :func:`repro.graphs.cliques.maximal_cliques_set`: frozensets of the
    original vertex objects in the canonical (size-descending, then
    vertex-index) order.
    """
    if graph.num_vertices() == 0:
        return []
    with phase_timer("perf.cliques.bitset"):
        masks, order = adjacency_bitmasks(graph)
        raw = bitset_cliques_from_masks(masks)
        # Decode to ascending index tuples: the bit scan yields indices
        # sorted by canonical rank, so sorting the tuples directly is
        # the same (-size, member-rank) order sort_cliques produces.
        bit_length = int.bit_length
        decoded = []
        for bits in raw:
            members = []
            m = bits
            while m:
                low = m & -m
                m ^= low
                members.append(bit_length(low) - 1)
            decoded.append(tuple(members))
        decoded.sort(key=lambda t: (-len(t), t))
        result = [frozenset(order[i] for i in t) for t in decoded]
    incr("perf.cliques.bitset_calls")
    incr("perf.cliques.bitset_vertices", len(order))
    incr("perf.cliques.bitset_cliques", len(result))
    return result
