"""Component-sharded phase-1 allocation with per-component memoization.

The Prop. 2 LP factorizes *exactly* over the connected components of the
subflow contention graph: a maximal clique is a connected subgraph, so
every Eq. (6) capacity constraint involves subflows of exactly one
contending flow group, and the per-group LPs share no variables.  Three
layers exploit that:

* :func:`component_problems` splits one
  :class:`~repro.core.contention.ContentionAnalysis` into independent
  per-component problems in a **single pass** over the global clique
  list.  Each problem's LP is byte-identical to the one
  :func:`repro.core.allocation.build_basic_fairness_lp` assembles for
  the same group (same variable registration order, same constraint
  order and coefficient insertion order, same ``clique-<k>`` labels,
  same basic-share lower bounds) — the foundation of the bitwise
  sharded==monolithic guarantee.
* :class:`ShardedSolver` solves the problems with a per-component memo
  keyed by a structural fingerprint (dirty tracking: churn that leaves
  a component's flows, cliques, weights, and capacity untouched reuses
  its cached shares) and fans the dirty components across a
  :class:`~repro.perf.parallel.ParallelSweep` process pool, merging in
  component order — the merged result is bitwise identical to the
  serial monolithic solve at any job count.
* :class:`BatchAllocationEngine` fronts the solver with a
  register / allocate / release batch API in the shape of psim's
  ``BandwidthAllocator`` family: campaigns push whole lists of flows
  through admission control (per-component batch feasibility with a
  greedy per-flow fallback) and solve one epoch over 100k+ concurrent
  flows.

Fingerprints hash the LP *structure in insertion order* (column order
affects simplex pivoting, hence bitwise results), excluding constraint
labels — labels embed the global clique index, which shifts when other
components churn.  Frozenset iteration order is hash-seed dependent, so
fingerprints are stable within a process but may differ across
processes; a restored cache in a new interpreter can therefore miss
where the original would hit, which costs a re-solve and never changes
a result (the memo is value-neutral by construction).
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple,
)

from ..core.contention import ContentionAnalysis
from ..core.fairness_defs import basic_shares
from ..core.model import Flow, Scenario, SubflowId
from ..graphs import Graph, connected_components
from ..graphs.cliques import clique_vertex_order, maximal_cliques, sort_cliques
from ..lp import LinearProgram, lexicographic_maxmin
from ..obs.registry import incr, observe, phase_timer
from ..obs.trace import current_span_id, span
from .parallel import ParallelSweep
from .warm import WarmLPCache

__all__ = [
    "BatchAllocationEngine",
    "ComponentProblem",
    "ShardResultError",
    "ShardedSolver",
    "component_fingerprint",
    "component_problems",
]

Clique = FrozenSet[SubflowId]


class ShardResultError(RuntimeError):
    """A component solve failed inside the sharded path.

    Subclasses ``RuntimeError`` so callers matching the monolithic
    solver's failure mode keep working; adds the failing component id
    and the ``runtime.shard`` span id for trace correlation.  Custom
    ``__reduce__`` keeps the extra fields across the pool's pickle
    round-trip.
    """

    def __init__(self, message: str, component: Optional[int] = None,
                 span_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.component = component
        self.span_id = span_id

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.component, self.span_id))


@dataclass
class ComponentProblem:
    """One contending flow group's LP, ready to solve in isolation.

    Plain picklable data: ships to pool workers unchanged.  ``weights``
    maps LP variable names to flow weights for the lexicographic
    max-min refinement; ``fingerprint`` keys the per-component memo.
    """

    index: int
    group_ids: Tuple[str, ...]
    lp: LinearProgram
    weights: Dict[str, float]
    backend: str
    fingerprint: str


def component_fingerprint(
    lp: LinearProgram, weights: Dict[str, float], backend: str
) -> str:
    """Structural hash of one component problem.

    Everything that can influence the solved shares participates, in
    the order it will reach the solver: variable registration order,
    objective terms, constraint coefficient pairs in insertion order
    with their bounds (capacity rides in the bounds), lower bounds, the
    max-min weights, and the backend.  Constraint labels are excluded
    on purpose — they carry the *global* clique index, which changes
    when unrelated components churn.
    """
    doc = [
        backend,
        lp.variables,
        [[v, c] for v, c in lp.objective.items()],
        [
            [[[v, c] for v, c in con.coeffs.items()], con.bound]
            for con in lp.constraints
        ],
        [[v, b] for v, b in lp.lower_bounds.items()],
        [[v, w] for v, w in weights.items()],
    ]
    blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def component_problems(
    analysis: ContentionAnalysis,
    capacity: Optional[float] = None,
    backend: str = "simplex",
) -> List[ComponentProblem]:
    """Split ``analysis`` into per-component problems, one per group.

    A single pass over the global clique list assigns each clique to
    the (unique) group owning its flows, so the cost is
    O(groups + cliques) rather than the monolithic builder's
    O(groups x cliques) rescan — the difference between seconds and
    hours at 10k+ components.  The produced LPs are byte-identical to
    per-group :func:`~repro.core.allocation.build_basic_fairness_lp`
    output; ``tests/test_shard.py`` asserts the equivalence
    differentially.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    with phase_timer("perf.shard.split"):
        lps: List[LinearProgram] = []
        group_sets: List[Set[str]] = []
        group_of: Dict[str, int] = {}
        for gi, group in enumerate(analysis.groups):
            lp = LinearProgram()
            group_ids = [f.flow_id for f in group]
            for fid in group_ids:
                lp.add_variable(f"r_{fid}", objective_coeff=1.0)
                group_of[fid] = gi
            lps.append(lp)
            group_sets.append(set(group_ids))
        for k, clique in enumerate(analysis.cliques):
            coeffs = analysis.clique_coefficients(clique)
            gi = group_of[next(iter(coeffs))]
            group_set = group_sets[gi]
            if not set(coeffs) <= group_set:
                raise RuntimeError(
                    f"clique {k} spans contending flow groups"
                )
            lps[gi].add_constraint(
                {f"r_{fid}": float(n) for fid, n in coeffs.items()
                 if fid in group_set},
                b,
                label=f"clique-{k}:"
                      f"{'+'.join(sorted(str(s) for s in clique))}",
            )
        problems: List[ComponentProblem] = []
        for gi, group in enumerate(analysis.groups):
            group_ids = [f.flow_id for f in group]
            basic = basic_shares(group, b)
            for fid in group_ids:
                lps[gi].set_lower_bound(f"r_{fid}", basic[fid])
            weights = {f"r_{f.flow_id}": f.weight for f in group}
            problems.append(ComponentProblem(
                index=gi,
                group_ids=tuple(group_ids),
                lp=lps[gi],
                weights=weights,
                backend=backend,
                fingerprint=component_fingerprint(
                    lps[gi], weights, backend
                ),
            ))
    incr("perf.shard.splits")
    return problems


def _solve_component_with(
    problem: ComponentProblem, backend
) -> Dict[str, float]:
    """Solve one component's lexicographic max-min LP with ``backend``.

    The failure message mirrors the monolithic
    :func:`~repro.core.allocation.basic_fairness_lp_allocation` so a
    sharded run raises exactly where the monolithic reference would.
    """
    sol = lexicographic_maxmin(
        problem.lp, problem.weights, fix_objective=True,
        backend=backend,
    )
    if not sol.is_optimal:
        raise ShardResultError(
            f"basic-fairness LP unexpectedly {sol.status}:\n"
            f"{problem.lp.pretty()}",
            component=problem.index,
        )
    return {fid: sol[f"r_{fid}"] for fid in problem.group_ids}


def _solve_component(problem: ComponentProblem) -> Dict[str, float]:
    """Module-level, picklable pool-worker entry (cold solve)."""
    return _solve_component_with(problem, problem.backend)


def _solve_component_guarded(payload) -> Dict[str, float]:
    """Pool entry for fault-injected runs: ``(problem, spec | None)``.

    The spec (a :class:`~repro.resilience.faults.WorkerFaultSpec`, duck
    typed to avoid an import cycle) misbehaves *inside the worker* —
    crash or stall — before the real solve runs; the solve itself is
    untouched, so results are unchanged whenever the task survives.
    """
    problem, spec = payload
    if spec is not None:
        spec.apply()
    return _solve_component(problem)


def _solve_component_unguarded(payload) -> Dict[str, float]:
    """In-process fallback twin of the guarded entry: no fault shim.

    Worker faults model a bad *worker environment*, so the deterministic
    serial fallback solves the same problem cleanly — result identity
    under faults hinges on this asymmetry.
    """
    problem, _spec = payload
    return _solve_component(problem)


class ShardedSolver:
    """Solve a contention analysis component by component, memoized.

    ``solve`` returns the same flow-id -> share mapping as
    ``basic_fairness_lp_allocation(analysis, backend=...).shares`` —
    bitwise, at any ``jobs`` setting — because components are solved
    with the identical LPs and merged in component order.  Components
    whose fingerprint is cached are *reused* (dirty tracking); only the
    dirty remainder is solved, across a process pool when ``jobs > 1``.

    Telemetry per solve: ``runtime.shard.components`` / ``dirty`` /
    ``reused`` counters, a ``runtime.shard.parallel_ms`` observation
    covering the dirty-solve fan-out, and a ``runtime.shard`` span; the
    same numbers land in :attr:`last_stats` for programmatic asserts.
    """

    def __init__(
        self,
        backend: str = "simplex",
        jobs: Optional[int] = 1,
        memo: bool = True,
        max_entries: int = 65536,
        warm: bool = True,
        task_timeout: Optional[float] = None,
        task_retries: int = 0,
        retry_backoff_s: float = 0.05,
        fault_injector=None,
    ) -> None:
        self.backend = backend
        self.jobs = jobs
        # Fault-tolerance knobs: any of these selects the guarded sweep
        # path (crash detection, stall timeout, bounded retry, serial
        # fallback).  ``fault_injector`` is a
        # :class:`~repro.resilience.faults.WorkerFaultInjector` (duck
        # typed: anything with ``spec_for(position, total)``) used by
        # chaos campaigns to make workers misbehave on purpose.
        self.task_timeout = task_timeout
        self.task_retries = int(task_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.fault_injector = fault_injector
        self.max_entries = int(max_entries)
        self._memo: Optional["OrderedDict[str, Dict[str, float]]"] = (
            OrderedDict() if memo else None
        )
        # Warm-start basis reuse for dirty solves that run in-process.
        # Warm and cold solves are bitwise identical (the cache only
        # seeds the simplex basis), so this never affects results; pool
        # workers solve cold because the cache can't cross processes.
        self._warm: Optional[WarmLPCache] = (
            WarmLPCache(max_entries=self.max_entries)
            if warm and backend == "simplex" else None
        )
        self.last_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        analysis: ContentionAnalysis,
        capacity: Optional[float] = None,
    ) -> Dict[str, float]:
        """Sharded equivalent of the monolithic phase-1 allocation."""
        with phase_timer("runtime.shard.solve"), \
                span("runtime.shard") as shard_span:
            problems = component_problems(
                analysis, capacity, backend=self.backend
            )
            cached: Dict[int, Dict[str, float]] = {}
            dirty: List[ComponentProblem] = []
            for p in problems:
                if self._memo is not None and p.fingerprint in self._memo:
                    cached[p.index] = self._memo[p.fingerprint]
                    self._memo.move_to_end(p.fingerprint)
                else:
                    dirty.append(p)
            t0 = time.perf_counter()
            if dirty:
                guarded = (self.task_timeout is not None
                           or self.task_retries > 0
                           or self.fault_injector is not None)
                sweep = ParallelSweep(
                    self.jobs,
                    task_timeout=self.task_timeout,
                    task_retries=self.task_retries,
                    retry_backoff_s=self.retry_backoff_s,
                )
                try:
                    if (self._warm is not None
                            and (sweep.jobs <= 1 or len(dirty) <= 1)):
                        # The sweep would run serial anyway: solve
                        # in-process with warm-started bases instead of
                        # cold (worker faults can't reach in-process
                        # solves, so the injector is moot here).
                        solved = [
                            _solve_component_with(p, self._warm.solver)
                            for p in dirty
                        ]
                    elif guarded:
                        injector = self.fault_injector
                        payloads = [
                            (p,
                             injector.spec_for(pos, len(dirty))
                             if injector is not None else None)
                            for pos, p in enumerate(dirty)
                        ]
                        solved = sweep.map(
                            _solve_component_guarded, payloads,
                            serial_fn=_solve_component_unguarded,
                        )
                    else:
                        solved = sweep.map(_solve_component, dirty)
                except ShardResultError as exc:
                    incr("runtime.shard.worker_errors")
                    if exc.span_id is None:
                        exc.span_id = current_span_id()
                    raise
                except Exception as exc:
                    # Never let a bare worker exception escape the
                    # sharded path: wrap it with the span id so the
                    # failure correlates with the trace.
                    incr("runtime.shard.worker_errors")
                    raise ShardResultError(
                        f"sharded component solve failed: "
                        f"{type(exc).__name__}: {exc}",
                        span_id=current_span_id(),
                    ) from exc
            else:
                solved = []
            parallel_ms = (time.perf_counter() - t0) * 1e3
            for p, result in zip(dirty, solved):
                cached[p.index] = result
                if self._memo is not None:
                    self._memo[p.fingerprint] = result
                    while len(self._memo) > self.max_entries:
                        self._memo.popitem(last=False)
            shares: Dict[str, float] = {}
            for p in problems:
                shares.update(cached[p.index])
            reused = len(problems) - len(dirty)
            incr("runtime.shard.components", len(problems))
            incr("runtime.shard.dirty", len(dirty))
            incr("runtime.shard.reused", reused)
            observe("runtime.shard.parallel_ms", parallel_ms)
            shard_span.tag(
                components=len(problems), dirty=len(dirty),
                reused=reused,
            )
            self.last_stats = {
                "components": len(problems),
                "dirty": len(dirty),
                "reused": reused,
                "parallel_ms": parallel_ms,
            }
        return shares

    # ------------------------------------------------------------------
    # Checkpoint support (repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def dump_state(self) -> Optional[List[List[object]]]:
        """JSON-ready memo dump, LRU order preserved.

        Mirrors :meth:`WarmLPCache.dump_state`: a restored solver must
        reproduce the same reuse/eviction behaviour as one that never
        crashed, so entries keep their recency order.
        """
        if self._memo is None:
            return None
        return [
            [fp, [[fid, share] for fid, share in entry.items()]]
            for fp, entry in self._memo.items()
        ]

    def load_state(self, doc: Iterable[Sequence[object]]) -> None:
        """Restore a :meth:`dump_state` dump (value-neutral on mismatch:
        a stale fingerprint simply never hits again and is evicted)."""
        if self._memo is None:
            return
        self._memo.clear()
        for fp, pairs in doc:
            self._memo[str(fp)] = {
                str(fid): float(share) for fid, share in pairs
            }
            while len(self._memo) > self.max_entries:
                self._memo.popitem(last=False)


class BatchAllocationEngine:
    """Batch register / allocate / release over a fixed flow universe.

    The universe — node geometry, every flow that can ever appear, the
    full contention graph and its cliques — is fixed by the
    ``analysis`` handed to the constructor (build it once; for very
    large synthetic universes pass a precomputed graph and clique list
    to :class:`ContentionAnalysis` to skip the geometric rebuild).
    Campaigns then drive epochs with flow-id *lists*:

    * :meth:`register` admission-gates a batch.  Candidates are grouped
      by connected component of the trial graph; a component whose
      whole batch keeps every floor feasible (Eq. 6) admits in one
      check, otherwise the engine falls back to greedy per-flow FIFO
      within that component.  Every verdict flows through the standard
      :class:`~repro.resilience.admission.AdmissionController`, so the
      decision log and ``admission.*`` counters match the runtime's.
    * :meth:`allocate` advances one epoch: analyze the active subset
      (induced subgraph + per-component clique cache), solve it with
      the :class:`ShardedSolver`, and record the epoch wall latency in
      ``runtime.epoch.latency_ms`` — the histogram the SLO report
      summarizes into p50/p95/p99.
    * :meth:`release` retires flows; their component alone goes dirty.
    """

    def __init__(
        self,
        analysis: ContentionAnalysis,
        capacity: Optional[float] = None,
        backend: str = "simplex",
        jobs: Optional[int] = 1,
        admission: bool = True,
        queue_rejected: bool = False,
        max_queue: int = 0,
        memo: bool = True,
        max_cached_components: int = 65536,
        warm: bool = True,
    ) -> None:
        # Deferred import: repro.resilience.runtime imports this module,
        # and importing repro.resilience.admission initializes the whole
        # resilience package.
        from ..resilience.admission import AdmissionController

        self.analysis = analysis
        self.capacity = (
            capacity if capacity is not None
            else analysis.scenario.capacity
        )
        self.solver = ShardedSolver(
            backend=backend, jobs=jobs, memo=memo,
            max_entries=max_cached_components, warm=warm,
        )
        self.admission = AdmissionController(
            enabled=admission,
            queue_rejected=queue_rejected,
            max_queue=max_queue,
        )
        self.epoch = -1
        self.active: Set[str] = set()
        self.rates: Dict[str, float] = {}
        self._flows: Dict[str, Flow] = {
            f.flow_id: f for f in analysis.scenario.flows
        }
        self._subflows: Dict[str, List[SubflowId]] = {
            f.flow_id: [s.sid for s in f.subflows]
            for f in analysis.scenario.flows
        }
        self.max_cached_components = int(max_cached_components)
        self._component_cliques: "OrderedDict[Clique, List[Clique]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Batch admission
    # ------------------------------------------------------------------
    def register(self, flow_ids: Sequence[str], details: str = ""):
        """Admission-gate a batch of arrivals; returns the decisions.

        Unknown ids raise ``KeyError`` (the universe is fixed); already
        active or duplicate ids are skipped.  Decisions are logged in
        request order at the epoch :meth:`allocate` will commit next.
        """
        from ..resilience.admission import ADMIT, REASON_OK

        epoch = self.epoch + 1
        unknown = [f for f in flow_ids if f not in self._flows]
        if unknown:
            raise KeyError(f"unknown flows {sorted(set(unknown))}")
        candidates: List[str] = []
        seen: Set[str] = set()
        for fid in flow_ids:
            if fid not in self.active and fid not in seen:
                seen.add(fid)
                candidates.append(fid)
        incr("batch.register.requested", len(flow_ids))
        if not candidates:
            return []

        with phase_timer("batch.register"), \
                span("runtime.batch.register") as reg_span:
            verdicts: Dict[str, Tuple[str, str]] = {}
            if not self.admission.enabled:
                for fid in candidates:
                    verdicts[fid] = (REASON_OK, details)
            else:
                verdicts = self._batch_verdicts(candidates, details)
            decisions = []
            for fid in candidates:
                reason, why = verdicts[fid]
                decision = self.admission.decide(fid, epoch, reason, why)
                decisions.append(decision)
                if decision.action == ADMIT:
                    self.active.add(fid)
            reg_span.tag(
                requested=len(candidates),
                admitted=sum(1 for d in decisions if d.action == ADMIT),
            )
        return decisions

    def _batch_verdicts(
        self, candidates: List[str], details: str
    ) -> Dict[str, Tuple[str, str]]:
        """Per-candidate admission reasons, component-batched.

        One Eq. (6) feasibility probe covers a whole component's batch;
        only a failing component degrades to greedy per-flow checks in
        request order (FIFO fairness within the batch).
        """
        from ..resilience.admission import REASON_FLOOR, REASON_OK

        trial = self.active | set(candidates)
        keep = {
            sid for fid in trial for sid in self._subflows[fid]
        }
        graph = self.analysis.graph.subgraph(keep)
        comp_of: Dict[str, int] = {}
        comps = connected_components(graph)
        for idx, comp in enumerate(comps):
            for sid in comp:
                comp_of[sid.flow] = idx
        by_comp: Dict[int, List[str]] = {}
        for fid in candidates:
            by_comp.setdefault(comp_of[fid], []).append(fid)
        # One pass over the universe (FIFO order) keeps 100k-flow
        # batches linear; a per-component rescan would be quadratic.
        active_by_comp: Dict[int, List[str]] = {}
        for fid in self._flows:
            if fid in self.active:
                idx = comp_of.get(fid)
                if idx is not None:
                    active_by_comp.setdefault(idx, []).append(fid)
        verdicts: Dict[str, Tuple[str, str]] = {}
        for idx, comp_candidates in by_comp.items():
            active_here = active_by_comp.get(idx, [])
            if self._floors_feasible(active_here + comp_candidates):
                for fid in comp_candidates:
                    verdicts[fid] = (REASON_OK, details)
                continue
            incr("batch.register.greedy_fallbacks")
            accepted = list(active_here)
            for fid in comp_candidates:
                if self._floors_feasible(accepted + [fid]):
                    verdicts[fid] = (REASON_OK, details)
                    accepted.append(fid)
                else:
                    verdicts[fid] = (
                        REASON_FLOOR,
                        "Eq. (6) fails with every active flow at its "
                        "basic share",
                    )
        return verdicts

    def _floors_feasible(self, flow_ids: Sequence[str]) -> bool:
        """Eq. (6) over the basic shares of ``flow_ids``' trial set.

        The ids form one prospective membership (typically a single
        component); shares are computed per contending group of the
        induced subgraph, exactly as the runtime's admission predicate
        does over a full analysis.
        """
        # induced_subgraph keeps each probe O(component), not O(universe)
        # — at 100k flows a batch runs ~10k probes.
        keep = [sid for fid in flow_ids for sid in self._subflows[fid]]
        graph = self.analysis.graph.induced_subgraph(keep)
        cliques = self._cliques_of(graph)
        floors: Dict[str, float] = {}
        comp_of: Dict[str, int] = {}
        groups: Dict[int, List[Flow]] = {}
        for idx, comp in enumerate(connected_components(graph)):
            for sid in comp:
                comp_of[sid.flow] = idx
        for fid in flow_ids:
            groups.setdefault(comp_of[fid], []).append(self._flows[fid])
        for members in groups.values():
            floors.update(basic_shares(members, self.capacity))
        tol = 1e-9
        for clique in cliques:
            load: Dict[str, int] = {}
            for sid in clique:
                load[sid.flow] = load.get(sid.flow, 0) + 1
            total = sum(
                n * floors.get(fid, 0.0) for fid, n in load.items()
            )
            if total > self.capacity + tol:
                return False
        return True

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    def allocate(self) -> Dict[str, float]:
        """Solve one epoch over the active set; returns flow -> rate."""
        t0 = time.perf_counter()
        with phase_timer("batch.allocate"), \
                span("runtime.batch.allocate") as alloc_span:
            self.epoch += 1
            if self.active:
                analysis = self.active_analysis()
                self.rates = self.solver.solve(analysis, self.capacity)
            else:
                self.rates = {}
            alloc_span.tag(epoch=self.epoch, flows=len(self.rates))
        incr("batch.epochs")
        observe(
            "runtime.epoch.latency_ms", (time.perf_counter() - t0) * 1e3
        )
        return dict(self.rates)

    def release(self, flow_ids: Sequence[str]) -> None:
        """Retire a batch of flows (unknown/inactive ids are ignored)."""
        for fid in flow_ids:
            self.active.discard(fid)
            self.rates.pop(fid, None)
            self.admission.drop_waiting(fid)
        incr("batch.release.flows", len(list(flow_ids)))

    def rate_of(self, flow_id: str) -> float:
        """Last committed rate of ``flow_id`` (0.0 when not allocated)."""
        return self.rates.get(flow_id, 0.0)

    # ------------------------------------------------------------------
    # Analysis plumbing
    # ------------------------------------------------------------------
    def active_analysis(self) -> ContentionAnalysis:
        """Cold-rebuild-identical analysis of the active subset.

        Same recipe as
        :meth:`~repro.perf.incremental.IncrementalContention.analysis`:
        induced subgraph in universe insertion order, cliques from the
        per-component cache, canonical re-sort.  The monolithic
        differential tests run
        :func:`~repro.core.allocation.basic_fairness_lp_allocation`
        over exactly this object.
        """
        active_flows = [
            f for fid, f in self._flows.items() if fid in self.active
        ]
        keep = {s.sid for f in active_flows for s in f.subflows}
        graph = self.analysis.graph.subgraph(keep)
        cliques = self._cliques_of(graph)
        sub = Scenario(
            self.analysis.scenario.network,
            active_flows,
            name=f"{self.analysis.scenario.name}-batch",
            capacity=self.capacity,
        )
        return ContentionAnalysis(sub, graph=graph, cliques=cliques)

    def _cliques_of(self, graph: Graph) -> List[Clique]:
        """Maximal cliques of ``graph`` via the per-component cache."""
        cliques: List[Clique] = []
        for comp in connected_components(graph):
            key = frozenset(comp)
            cached = self._component_cliques.get(key)
            if cached is None:
                incr("batch.component_misses")
                cached = maximal_cliques(graph.induced_subgraph(comp))
                self._component_cliques[key] = cached
                while (len(self._component_cliques)
                       > self.max_cached_components):
                    self._component_cliques.popitem(last=False)
            else:
                incr("batch.component_hits")
                self._component_cliques.move_to_end(key)
            cliques.extend(cached)
        rank = {v: i for i, v in enumerate(clique_vertex_order(graph))}
        return sort_cliques(cliques, rank)
