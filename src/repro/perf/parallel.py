"""Deterministic parallel sweep execution over independent tasks.

Ablation sweeps, random-topology studies, and the scenario fuzzer all
run many *independent* seeded tasks; :class:`ParallelSweep` fans such a
task list across a ``ProcessPoolExecutor`` while guaranteeing that the
merged output is bit-identical to running the same tasks serially:

* tasks carry their own seeds (each draws from its own
  :class:`~repro.sim.rng.RngRegistry` stream), so no randomness is
  shared across workers;
* results are merged strictly in submission order (``Executor.map``
  preserves input order), so downstream aggregation sees exactly the
  serial sequence;
* each worker runs under its own metrics registry and ships a lossless
  :meth:`~repro.obs.registry.MetricsRegistry.mergeable_snapshot` home,
  which the parent folds into the active registry in task order —
  ``perf.*`` counters therefore match the serial run (timers keep their
  own measured, machine-dependent times);
* each worker likewise runs under its own private
  :class:`~repro.obs.events.EventBus` (source ``task<i>``) and ships its
  pending events home; the parent absorbs the buffers in submission
  order, so the merged event stream — and any JSONL file it is being
  streamed to — is deterministic and never contains torn lines.

``jobs=1`` (or an unavailable process pool — sandboxes without fork)
degrades to the plain serial loop over the same function, which is also
the reference the bit-identity tests compare against.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs.events import EventBus, get_event_bus, using_event_bus
from ..obs.registry import get_registry, incr, phase_timer, using_registry

__all__ = ["ParallelSweep", "effective_jobs"]


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a user-supplied job count: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(jobs))


def _worker(
    payload: Tuple[Callable[[Any], Any], Any, int]
) -> Tuple[Any, dict, list]:
    """Run one task under a private registry and event bus.

    Returns ``(result, metrics, events)``.  The private in-memory bus
    keeps worker events out of any file the parent may be streaming to;
    the parent absorbs the shipped buffers in task-submission order, so
    the merged stream is deterministic regardless of which worker
    finished first.  Worker-side ``obs.events.dropped`` increments ride
    home inside the metrics snapshot.
    """
    fn, item, index = payload
    with using_registry() as reg:
        with using_event_bus(EventBus(source=f"task{index}")) as bus:
            result = fn(item)
            events = bus.drain()
    return result, reg.mergeable_snapshot(), events


class ParallelSweep:
    """Map a picklable function over items, deterministically.

    ``sweep.map(fn, items)`` returns ``[fn(x) for x in items]`` — same
    values, same order — computed across ``jobs`` worker processes.
    ``fn`` and every item must be picklable (module-level function,
    plain-data arguments); tasks must be independent and own their
    seeds.  Worker-side ``perf.*`` metrics are folded into the caller's
    active registry in task order.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = effective_jobs(jobs)

    def map(self, fn: Callable[[Any], Any],
            items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return self._serial(fn, items)
        try:
            return self._pooled(fn, items)
        except (ImportError, OSError, PermissionError):
            # No usable process pool (restricted sandbox): same results,
            # one process.
            incr("perf.parallel.pool_fallbacks")
            return self._serial(fn, items)

    # ------------------------------------------------------------------
    def _serial(self, fn: Callable[[Any], Any],
                items: Sequence[Any]) -> List[Any]:
        parent_bus = get_event_bus()
        results: List[Any] = []
        with phase_timer("perf.parallel.sweep"):
            if parent_bus is None:
                results = [fn(item) for item in items]
            else:
                # Mirror the pooled path's per-task buses so a jobs=1
                # run and a pooled run merge the *same* event stream
                # (same sources, same seqs, same order).
                for index, item in enumerate(items):
                    with using_event_bus(
                        EventBus(source=f"task{index}")
                    ) as bus:
                        results.append(fn(item))
                        events = bus.drain()
                    parent_bus.absorb(events)
        incr("perf.parallel.tasks", len(items))
        incr("perf.parallel.serial_runs")
        return results

    def _pooled(self, fn: Callable[[Any], Any],
                items: Sequence[Any]) -> List[Any]:
        from concurrent.futures import ProcessPoolExecutor

        parent = get_registry()
        parent_bus = get_event_bus()
        results: List[Any] = []
        with phase_timer("perf.parallel.sweep"):
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(items))
            ) as pool:
                # Executor.map yields in submission order regardless of
                # completion order — the deterministic-merge guarantee.
                for result, metrics, events in pool.map(
                    _worker,
                    [(fn, item, i) for i, item in enumerate(items)],
                ):
                    results.append(result)
                    if parent is not None:
                        parent.merge_snapshot(metrics)
                    if parent_bus is not None:
                        parent_bus.absorb(events)
        incr("perf.parallel.tasks", len(items))
        incr("perf.parallel.pool_runs")
        return results
