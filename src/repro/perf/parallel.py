"""Deterministic parallel sweep execution over independent tasks.

Ablation sweeps, random-topology studies, and the scenario fuzzer all
run many *independent* seeded tasks; :class:`ParallelSweep` fans such a
task list across a ``ProcessPoolExecutor`` while guaranteeing that the
merged output is bit-identical to running the same tasks serially:

* tasks carry their own seeds (each draws from its own
  :class:`~repro.sim.rng.RngRegistry` stream), so no randomness is
  shared across workers;
* results are merged strictly in submission order (``Executor.map``
  preserves input order), so downstream aggregation sees exactly the
  serial sequence;
* each worker runs under its own metrics registry and ships a lossless
  :meth:`~repro.obs.registry.MetricsRegistry.mergeable_snapshot` home,
  which the parent folds into the active registry in task order —
  ``perf.*`` counters therefore match the serial run (timers keep their
  own measured, machine-dependent times);
* each worker likewise runs under its own private
  :class:`~repro.obs.events.EventBus` (source ``task<i>``) and ships its
  pending events home; the parent absorbs the buffers in submission
  order, so the merged event stream — and any JSONL file it is being
  streamed to — is deterministic and never contains torn lines.

``jobs=1`` (or an unavailable process pool — sandboxes without fork)
degrades to the plain serial loop over the same function, which is also
the reference the bit-identity tests compare against.

A sweep can additionally be made *fault tolerant* (``task_timeout`` /
``task_retries`` / an explicit ``serial_fn``): tasks are then submitted
through a guarded wave loop that detects crashed workers
(``BrokenProcessPool``), times out hung ones via a stall watchdog,
retries survivors in a fresh pool with deterministic jittered backoff,
and finally runs any task that exhausted its retry budget in-process —
worker faults are environmental, the task function itself is pure, so
the in-process fallback is exact.  With no fault firing, the guarded
path returns byte-identical results, metrics, and event streams.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

from ..obs.events import EventBus, get_event_bus, using_event_bus
from ..obs.registry import get_registry, incr, phase_timer, using_registry

__all__ = ["ParallelSweep", "effective_jobs"]


def _backoff_jitter(index: int, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` keyed on (task, attempt)."""
    digest = hashlib.sha256(f"{index}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2.0 ** 32


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a user-supplied job count: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(jobs))


def _worker(
    payload: Tuple[Callable[[Any], Any], Any, int]
) -> Tuple[Any, dict, list]:
    """Run one task under a private registry and event bus.

    Returns ``(result, metrics, events)``.  The private in-memory bus
    keeps worker events out of any file the parent may be streaming to;
    the parent absorbs the shipped buffers in task-submission order, so
    the merged stream is deterministic regardless of which worker
    finished first.  Worker-side ``obs.events.dropped`` increments ride
    home inside the metrics snapshot.
    """
    fn, item, index = payload
    with using_registry() as reg:
        with using_event_bus(EventBus(source=f"task{index}")) as bus:
            result = fn(item)
            events = bus.drain()
    return result, reg.mergeable_snapshot(), events


class ParallelSweep:
    """Map a picklable function over items, deterministically.

    ``sweep.map(fn, items)`` returns ``[fn(x) for x in items]`` — same
    values, same order — computed across ``jobs`` worker processes.
    ``fn`` and every item must be picklable (module-level function,
    plain-data arguments); tasks must be independent and own their
    seeds.  Worker-side ``perf.*`` metrics are folded into the caller's
    active registry in task order.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        task_timeout: Optional[float] = None,
        task_retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.jobs = effective_jobs(jobs)
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        self.task_timeout = task_timeout
        self.task_retries = int(task_retries)
        self.retry_backoff_s = float(retry_backoff_s)

    def map(self, fn: Callable[[Any], Any],
            items: Sequence[Any],
            serial_fn: Optional[Callable[[Any], Any]] = None) -> List[Any]:
        """``[fn(x) for x in items]`` across the pool.

        ``serial_fn`` is the in-process twin used whenever a task runs
        in the parent (jobs=1, pool unavailable, or fault fallback);
        passing it — or setting ``task_timeout``/``task_retries`` —
        selects the guarded fault-tolerant pool path.  It must compute
        exactly what ``fn`` computes minus any worker-only fault shims.
        """
        items = list(items)
        guarded = (serial_fn is not None or self.task_timeout is not None
                   or self.task_retries > 0)
        inproc = serial_fn if serial_fn is not None else fn
        if self.jobs <= 1 or len(items) <= 1:
            return self._serial(inproc, items)
        if guarded:
            try:
                return self._guarded(fn, items, inproc)
            except (ImportError, OSError, PermissionError):
                incr("perf.parallel.pool_fallbacks")
                return self._serial(inproc, items)
        try:
            return self._pooled(fn, items)
        except (ImportError, OSError, PermissionError):
            # No usable process pool (restricted sandbox): same results,
            # one process.
            incr("perf.parallel.pool_fallbacks")
            return self._serial(inproc, items)

    # ------------------------------------------------------------------
    def _serial(self, fn: Callable[[Any], Any],
                items: Sequence[Any]) -> List[Any]:
        parent_bus = get_event_bus()
        results: List[Any] = []
        with phase_timer("perf.parallel.sweep"):
            if parent_bus is None:
                results = [fn(item) for item in items]
            else:
                # Mirror the pooled path's per-task buses so a jobs=1
                # run and a pooled run merge the *same* event stream
                # (same sources, same seqs, same order).
                for index, item in enumerate(items):
                    with using_event_bus(
                        EventBus(source=f"task{index}")
                    ) as bus:
                        results.append(fn(item))
                        events = bus.drain()
                    parent_bus.absorb(events)
        incr("perf.parallel.tasks", len(items))
        incr("perf.parallel.serial_runs")
        return results

    def _pooled(self, fn: Callable[[Any], Any],
                items: Sequence[Any]) -> List[Any]:
        from concurrent.futures import ProcessPoolExecutor

        parent = get_registry()
        parent_bus = get_event_bus()
        results: List[Any] = []
        with phase_timer("perf.parallel.sweep"):
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(items))
            ) as pool:
                # Executor.map yields in submission order regardless of
                # completion order — the deterministic-merge guarantee.
                for result, metrics, events in pool.map(
                    _worker,
                    [(fn, item, i) for i, item in enumerate(items)],
                ):
                    results.append(result)
                    if parent is not None:
                        parent.merge_snapshot(metrics)
                    if parent_bus is not None:
                        parent_bus.absorb(events)
        incr("perf.parallel.tasks", len(items))
        incr("perf.parallel.pool_runs")
        return results

    def _guarded(self, fn: Callable[[Any], Any], items: Sequence[Any],
                 serial_fn: Callable[[Any], Any]) -> List[Any]:
        """Fault-tolerant pooled map: crash/hang detection + retries.

        Tasks run in waves.  Each wave submits every still-pending task
        to a fresh pool and collects completions with a stall watchdog:
        if no future completes for ``task_timeout`` seconds, whatever is
        still outstanding is declared hung, the pool is abandoned
        (``shutdown(wait=False)`` — never join a hung worker), and the
        stragglers go into the next wave.  ``BrokenProcessPool`` marks
        the wave's unfinished tasks as crashed, with the same retry
        treatment.  A task that fails ``task_retries + 1`` pool attempts
        runs in-process via ``serial_fn``.  Genuine task exceptions are
        never retried; the lowest-index one is re-raised after every
        task resolves, matching serial semantics.  Results, metrics, and
        events merge in submission order, so a fault-free guarded run is
        byte-identical to the classic pooled path.
        """
        from concurrent.futures import (
            FIRST_COMPLETED, ProcessPoolExecutor, wait,
        )
        from concurrent.futures.process import BrokenProcessPool

        parent = get_registry()
        parent_bus = get_event_bus()
        n = len(items)
        slots: List[Optional[Tuple[Any, dict, list]]] = [None] * n
        finished = [False] * n
        attempts = [0] * n
        errors: Dict[int, BaseException] = {}
        pending = list(range(n))

        with phase_timer("perf.parallel.sweep"):
            while pending:
                # Retry budget exhausted → deterministic in-process
                # fallback (worker faults cannot follow us here).
                overdrawn = [i for i in pending
                             if attempts[i] > self.task_retries]
                for i in overdrawn:
                    incr("perf.parallel.serial_fallbacks")
                    try:
                        slots[i] = _worker((serial_fn, items[i], i))
                    except Exception as exc:
                        errors[i] = exc
                    finished[i] = True
                pending = [i for i in pending
                           if attempts[i] <= self.task_retries]
                if not pending:
                    break
                wave_attempt = max(attempts[i] for i in pending)
                if wave_attempt > 0:
                    delay = self.retry_backoff_s * 2 ** (wave_attempt - 1)
                    delay *= 0.5 + _backoff_jitter(pending[0], wave_attempt)
                    time.sleep(min(delay, 2.0))
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(pending))
                    )
                    future_task = {
                        pool.submit(_worker, (fn, items[i], i)): i
                        for i in pending
                    }
                except (ImportError, OSError, PermissionError):
                    # Pool unavailable mid-run: finish everything still
                    # pending in-process.
                    incr("perf.parallel.pool_fallbacks")
                    for i in pending:
                        incr("perf.parallel.serial_fallbacks")
                        try:
                            slots[i] = _worker((serial_fn, items[i], i))
                        except Exception as exc:
                            errors[i] = exc
                        finished[i] = True
                    pending = []
                    break
                outstanding = set(future_task)
                crashed = False
                while outstanding:
                    done, outstanding = wait(
                        outstanding, timeout=self.task_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # Stall: nothing completed within the per-task
                        # budget, so every remaining future is hung or
                        # starved behind a hung worker.
                        incr("perf.parallel.task_timeouts",
                             len(outstanding))
                        break
                    for future in done:
                        i = future_task[future]
                        try:
                            slots[i] = future.result()
                            finished[i] = True
                        except BrokenProcessPool:
                            crashed = True
                        except Exception as exc:
                            errors[i] = exc  # real task error: no retry
                            finished[i] = True
                    if crashed:
                        break
                pool.shutdown(wait=False, cancel_futures=True)
                if crashed:
                    incr("perf.parallel.task_crashes")
                failed = [i for i in pending if not finished[i]]
                for i in failed:
                    attempts[i] += 1
                    incr("perf.parallel.task_retries")
                pending = failed

            results: List[Any] = []
            for i in range(n):
                if i in errors:
                    raise errors[i]
                result, metrics, events = slots[i]  # type: ignore[misc]
                results.append(result)
                if parent is not None:
                    parent.merge_snapshot(metrics)
                if parent_bus is not None:
                    parent_bus.absorb(events)
        incr("perf.parallel.tasks", n)
        incr("perf.parallel.pool_runs")
        return results
