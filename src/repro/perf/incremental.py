"""Incremental contention maintenance across flow arrivals and departures.

The dynamic experiment rebuilds the subflow contention graph and
re-enumerates its maximal cliques from scratch at every membership
change, even though one flow joining or leaving touches only its own
subflows' edges and the cliques of the connected components it belongs
to.  :class:`IncrementalContention` exploits both facts:

* pairwise contention between two subflows does not depend on which
  *other* flows are active, so the full pairwise graph over every flow
  ever seen is computed once and active-set changes reduce to taking an
  induced subgraph — no geometry re-checks;
* the maximal cliques of a graph are exactly the union of the maximal
  cliques of its connected components, so clique enumeration is cached
  per component (keyed by the component's vertex set) and only
  components whose membership actually changed are re-enumerated.

The produced :class:`~repro.core.contention.ContentionAnalysis` is
bit-identical to a cold rebuild: the induced subgraph preserves the
cold build's vertex insertion order (scenario flow order filtered to
the active set), and the merged clique list is re-sorted with the same
canonical key :func:`repro.graphs.cliques.sort_cliques` uses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Union

from ..core.contention import ContentionAnalysis, subflows_contend
from ..core.model import Flow, Scenario, SubflowId
from ..graphs import Graph, connected_components
from ..graphs.cliques import clique_vertex_order, maximal_cliques, sort_cliques
from ..obs.registry import incr, phase_timer

__all__ = ["IncrementalContention"]

Clique = FrozenSet[SubflowId]


class IncrementalContention:
    """Maintain contention structure for a scenario under flow churn.

    ``scenario`` fixes the network and the initially known flows; the
    *active* subset then evolves via :meth:`add_flow` /
    :meth:`remove_flow` / :meth:`set_active`, and :meth:`analysis`
    produces a :class:`ContentionAnalysis` of the active flows that is
    bit-identical to building one cold from the equivalent
    sub-scenario.  Flows unknown to the base scenario may be introduced
    by passing a :class:`Flow` to :meth:`add_flow`; their pairwise
    contention is computed once on first sight and cached like
    everything else.
    """

    def __init__(
        self,
        scenario: Scenario,
        active: Optional[Iterable[str]] = None,
        max_cached_components: int = 1024,
    ) -> None:
        self.scenario = scenario
        self.max_cached_components = int(max_cached_components)
        self._flows: "Dict[str, Flow]" = {
            f.flow_id: f for f in scenario.flows
        }
        self._subflow_of: Dict[SubflowId, object] = {}
        with phase_timer("perf.incremental.full_graph_build"):
            self._full = self._build_full_graph(scenario.flows)
        self._active: Set[str] = (
            set(scenario.flow_ids) if active is None else set(active)
        )
        unknown = self._active - set(self._flows)
        if unknown:
            raise KeyError(f"unknown active flows {sorted(unknown)}")
        self._component_cliques: "OrderedDict[FrozenSet[SubflowId], List[Clique]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    @property
    def active_ids(self) -> List[str]:
        """Active flow ids, in known-flow (scenario) order."""
        return [fid for fid in self._flows if fid in self._active]

    def add_flow(self, flow: Union[str, Flow]) -> None:
        """Activate a flow; a new :class:`Flow` is registered on the fly."""
        if isinstance(flow, Flow):
            if flow.flow_id not in self._flows:
                self._register_flow(flow)
            flow_id = flow.flow_id
        else:
            flow_id = flow
        if flow_id not in self._flows:
            raise KeyError(f"unknown flow {flow_id!r}")
        self._active.add(flow_id)
        incr("perf.incremental.updates")

    def remove_flow(self, flow_id: str) -> None:
        """Deactivate a flow (its cached contention edges are kept)."""
        self._active.discard(flow_id)
        incr("perf.incremental.updates")

    def set_active(self, flow_ids: Iterable[str]) -> None:
        """Replace the active set wholesale (ids must be known)."""
        wanted = set(flow_ids)
        unknown = wanted - set(self._flows)
        if unknown:
            raise KeyError(f"unknown flows {sorted(unknown)}")
        if wanted != self._active:
            self._active = wanted
            incr("perf.incremental.updates")

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analysis(self, name: Optional[str] = None) -> ContentionAnalysis:
        """A :class:`ContentionAnalysis` of the currently active flows."""
        with phase_timer("perf.incremental.analysis"):
            active_flows = [
                f for fid, f in self._flows.items() if fid in self._active
            ]
            keep = {s.sid for f in active_flows for s in f.subflows}
            graph = self._full.subgraph(keep)
            cliques = self._cliques_of(graph)
            sub = Scenario(
                self.scenario.network,
                active_flows,
                name=(name if name is not None
                      else f"{self.scenario.name}-active"),
                capacity=self.scenario.capacity,
            )
            result = ContentionAnalysis(sub, graph=graph, cliques=cliques)
        incr("perf.incremental.analyses")
        return result

    def analysis_for(
        self, flow_ids: Iterable[str], name: Optional[str] = None
    ) -> ContentionAnalysis:
        """Set the active set and analyze it in one step."""
        self.set_active(flow_ids)
        return self.analysis(name=name)

    @property
    def full_graph(self) -> Graph:
        """The pairwise contention graph over every known flow."""
        return self._full

    # ------------------------------------------------------------------
    # Checkpoint support (repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def export_component_cliques(self) -> List[dict]:
        """JSON-ready dump of the per-component clique cache, LRU order
        preserved (a restored runtime must reproduce the same eviction
        behaviour as one that never crashed)."""
        return [
            {
                "component": sorted([s.flow, s.hop] for s in key),
                "cliques": [
                    sorted([s.flow, s.hop] for s in clique)
                    for clique in cliques
                ],
            }
            for key, cliques in self._component_cliques.items()
        ]

    def seed_component_cliques(self, entries: Iterable[dict]) -> None:
        """Pre-populate the clique cache from an exported dump.

        Value-neutral by construction: a wrong or missing entry merely
        costs a re-enumeration (cache misses recompute from the graph),
        it can never change an analysis result.
        """
        for entry in entries:
            key = frozenset(
                SubflowId(str(f), int(h)) for f, h in entry["component"]
            )
            self._component_cliques[key] = [
                frozenset(SubflowId(str(f), int(h)) for f, h in clique)
                for clique in entry["cliques"]
            ]
            self._component_cliques.move_to_end(key)
            while len(self._component_cliques) > self.max_cached_components:
                self._component_cliques.popitem(last=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_full_graph(self, flows: Iterable[Flow]) -> Graph:
        g = Graph()
        for f in flows:
            self._add_flow_to_graph(g, f)
        return g

    def _add_flow_to_graph(self, g: Graph, flow: Flow) -> None:
        """Append ``flow``'s subflows and their contention edges to ``g``."""
        existing = [(sid, self._subflow_of[sid]) for sid in g.vertices()]
        network = self.scenario.network
        for sub in flow.subflows:
            g.add_vertex(sub.sid, weight=sub.weight, flow=sub.flow_id,
                         sender=sub.sender, receiver=sub.receiver)
            self._subflow_of[sub.sid] = sub
            for sid, other in existing:
                if subflows_contend(network, sub, other):
                    g.add_edge(sub.sid, sid)
            existing.append((sub.sid, sub))

    def _register_flow(self, flow: Flow) -> None:
        self.scenario.network.validate_flow(flow)
        self._flows[flow.flow_id] = flow
        with phase_timer("perf.incremental.flow_graph_extend"):
            self._add_flow_to_graph(self._full, flow)

    def _cliques_of(self, graph: Graph) -> List[Clique]:
        """Maximal cliques of ``graph`` via the per-component cache."""
        cliques: List[Clique] = []
        for comp in connected_components(graph):
            key = frozenset(comp)
            cached = self._component_cliques.get(key)
            if cached is None:
                incr("perf.incremental.component_misses")
                cached = maximal_cliques(graph.subgraph(comp))
                self._component_cliques[key] = cached
                while (len(self._component_cliques)
                       > self.max_cached_components):
                    self._component_cliques.popitem(last=False)
            else:
                incr("perf.incremental.component_hits")
                self._component_cliques.move_to_end(key)
            cliques.extend(cached)
        rank = {v: i for i, v in enumerate(clique_vertex_order(graph))}
        return sort_cliques(cliques, rank)
