"""Content-addressed caching of per-scenario analysis and allocation.

The report generator and the worked-examples module analyze the same
handful of scenarios repeatedly — often the *same* scenario object, but
also structurally equal copies built by different call sites.  The cache
keys on a content hash of the scenario's canonical serialization
(:func:`repro.scenarios.io.scenario_to_dict` rendered as sorted-key
JSON), so structurally equal scenarios share entries no matter how they
were constructed, while any change to topology, flows, weights, or
capacity changes the fingerprint and misses cleanly.

Cached values are returned by reference: treat
:class:`~repro.core.contention.ContentionAnalysis` and allocation
results as immutable (everything in this codebase already does).  Hits
and misses are reported as ``perf.cache.hit`` / ``perf.cache.miss``
through the :mod:`repro.obs` registry.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

from ..core.allocation import basic_fairness_lp_allocation
from ..core.contention import ContentionAnalysis
from ..core.model import Scenario
from ..obs.registry import incr, phase_timer
from ..scenarios.io import scenario_to_dict

__all__ = [
    "AnalysisCache",
    "cached_basic_fairness_allocation",
    "cached_contention_analysis",
    "clear_default_cache",
    "default_cache",
    "scenario_fingerprint",
]


def scenario_fingerprint(scenario: Scenario) -> str:
    """A content hash identifying the scenario up to structural equality."""
    with phase_timer("perf.cache.fingerprint"):
        doc = json.dumps(
            scenario_to_dict(scenario), sort_keys=True, default=str
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Size-bounded LRU over scenario-derived computations.

    Entries are keyed by ``(scenario fingerprint, kind)``, where ``kind``
    names the computation (``"analysis"``, ``"lp-allocation:..."``), so
    one cache instance serves every derived artifact of a scenario.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get_or_compute(
        self,
        scenario: Scenario,
        kind: str,
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``(scenario, kind)``, computing on miss."""
        key = (scenario_fingerprint(scenario), kind)
        if key in self._entries:
            self.hits += 1
            incr("perf.cache.hit")
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        incr("perf.cache.miss")
        value = compute()
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return value

    # ------------------------------------------------------------------
    def analysis(self, scenario: Scenario) -> ContentionAnalysis:
        """A (shared) :class:`ContentionAnalysis` of ``scenario``."""
        return self.get_or_compute(
            scenario, "analysis", lambda: ContentionAnalysis(scenario)
        )

    def basic_fairness_allocation(
        self,
        scenario: Scenario,
        capacity: Optional[float] = None,
        refine_maxmin: bool = True,
    ):
        """A (shared) phase-1 LP allocation of ``scenario``."""
        kind = f"lp-allocation:cap={capacity}:maxmin={refine_maxmin}"
        return self.get_or_compute(
            scenario,
            kind,
            lambda: basic_fairness_lp_allocation(
                self.analysis(scenario),
                capacity=capacity,
                refine_maxmin=refine_maxmin,
            ),
        )


# ----------------------------------------------------------------------
# Module-level default cache (what report.py / worked_examples.py use)
# ----------------------------------------------------------------------

_default = AnalysisCache()


def default_cache() -> AnalysisCache:
    """The process-wide cache behind the module-level helpers."""
    return _default


def clear_default_cache() -> None:
    """Drop every entry of the default cache (tests, memory pressure)."""
    _default.clear()


def cached_contention_analysis(scenario: Scenario) -> ContentionAnalysis:
    """:class:`ContentionAnalysis` of ``scenario`` via the default cache."""
    return _default.analysis(scenario)


def cached_basic_fairness_allocation(
    scenario: Scenario,
    capacity: Optional[float] = None,
    refine_maxmin: bool = True,
):
    """Phase-1 LP allocation of ``scenario`` via the default cache."""
    return _default.basic_fairness_allocation(
        scenario, capacity=capacity, refine_maxmin=refine_maxmin
    )
