"""Open-loop heavy traffic: Poisson flow arrivals with heavy-tailed sizes.

The paper's CBR workload (``cbr.py``) keeps a *fixed* flow set backlogged
— the greedy assumption of Sec. II-C.  A production allocator instead
faces an open-loop arrival process: finite flows arrive whether or not
the allocator keeps up, hold their route for a heavy-tailed service time,
and depart.  This module draws such workloads as seeded, replayable
:class:`ArrivalTrace` objects following the same draw/shrink/serialize
discipline as :class:`~repro.resilience.epochs.ChurnTimeline`, so the
fuzzer can shrink a failing trace and a reproducer JSON can replay it
bit-for-bit.

Arrival counts per epoch are Poisson with an optional diurnal modulation
(a sinusoid over ``diurnal_period`` epochs); flow sizes and service
durations are Pareto — the classic heavy-tailed mix that makes overload
bursty rather than smooth.  All draws come from one ``RngRegistry``
stream in a fixed order, independent of outcomes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalTrace",
    "FlowArrival",
    "OpenLoopConfig",
    "draw_arrival_trace",
    "drive_batch_engine",
]


@dataclass(frozen=True)
class FlowArrival:
    """One finite flow arriving at ``epoch`` from the scenario universe.

    ``size_mb`` is the abstract transfer size (reported, not simulated);
    ``duration`` is the service time in epochs once the flow is admitted
    — the allocator keeps it active for that long before it departs.
    """

    epoch: int
    flow: str
    duration: int = 1
    size_mb: float = 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "flow": self.flow,
            "duration": self.duration,
            "size_mb": self.size_mb,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FlowArrival":
        return cls(
            epoch=int(doc["epoch"]),
            flow=str(doc["flow"]),
            duration=int(doc.get("duration", 1)),
            size_mb=float(doc.get("size_mb", 1.0)),
        )


@dataclass(frozen=True)
class OpenLoopConfig:
    """Knobs for :func:`draw_arrival_trace`.

    ``rate`` is the mean arrivals per epoch.  ``tail_shape`` is the
    Pareto index shared by size and duration draws — must exceed 1 so
    the means exist (2.5 keeps the variance finite but the tail heavy).
    ``diurnal_amplitude`` in [0, 1) modulates the rate sinusoidally over
    ``diurnal_period`` epochs; 0 disables the load curve.
    """

    rate: float = 2.0
    duration_mean: float = 4.0
    size_mean_mb: float = 1.0
    tail_shape: float = 2.5
    diurnal_amplitude: float = 0.0
    diurnal_period: int = 24

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.tail_shape <= 1.0:
            raise ValueError("tail_shape must exceed 1 for finite means")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period < 1:
            raise ValueError("diurnal_period must be positive")

    def rate_at(self, epoch: int) -> float:
        """Offered rate at ``epoch`` after diurnal modulation."""
        if self.diurnal_amplitude == 0.0:
            return self.rate
        phase = 2.0 * math.pi * (epoch % self.diurnal_period) / self.diurnal_period
        return self.rate * (1.0 + self.diurnal_amplitude * math.sin(phase))


@dataclass(frozen=True)
class ArrivalTrace:
    """A replayable open-loop workload over ``epochs`` epochs."""

    epochs: int
    arrivals: Tuple[FlowArrival, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("trace must span at least one epoch")
        last = -1
        for arrival in self.arrivals:
            if not 0 <= arrival.epoch < self.epochs:
                raise ValueError(
                    f"arrival at epoch {arrival.epoch} outside horizon {self.epochs}"
                )
            if arrival.epoch < last:
                raise ValueError("arrivals must be sorted by epoch")
            last = arrival.epoch
            if arrival.duration < 1:
                raise ValueError("arrival duration must be at least one epoch")

    def arrivals_at(self, epoch: int) -> List[FlowArrival]:
        return [a for a in self.arrivals if a.epoch == epoch]

    @property
    def offered(self) -> int:
        return len(self.arrivals)

    @property
    def mean_rate(self) -> float:
        return len(self.arrivals) / self.epochs

    def to_dict(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "arrivals": [a.to_dict() for a in self.arrivals],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ArrivalTrace":
        return cls(
            epochs=int(doc["epochs"]),
            arrivals=tuple(
                FlowArrival.from_dict(a) for a in doc.get("arrivals", [])
            ),
        )

    def shrink_candidates(self) -> Iterator["ArrivalTrace"]:
        """Smaller traces, most to least aggressive (fuzzer shrinking)."""
        if self.arrivals:
            yield replace(self, arrivals=())
        last_epoch = max((a.epoch for a in self.arrivals), default=0)
        if last_epoch + 1 < self.epochs:
            yield replace(self, epochs=last_epoch + 1)
        used = sorted({a.epoch for a in self.arrivals})
        if len(used) > 1:
            for epoch in used:
                yield replace(
                    self,
                    arrivals=tuple(a for a in self.arrivals if a.epoch != epoch),
                )
        if len(self.arrivals) > 1:
            for idx in range(len(self.arrivals)):
                yield replace(
                    self,
                    arrivals=self.arrivals[:idx] + self.arrivals[idx + 1 :],
                )


def draw_arrival_trace(
    rng: np.random.Generator,
    flow_ids: Sequence[str],
    epochs: int,
    config: OpenLoopConfig = OpenLoopConfig(),
) -> ArrivalTrace:
    """Draw a seeded trace; fixed draw order independent of outcomes.

    Per epoch: one Poisson count draw, then (flow index, size, duration)
    per arrival.  The draw order never depends on what earlier draws
    produced beyond the counts themselves, matching the registry's
    stream discipline so co-drawn plans are unperturbed.
    """
    if not flow_ids:
        raise ValueError("flow universe must be non-empty")
    ids = sorted(flow_ids)
    # With Pareto index a, E[1 + scale·pareto(a)] = 1 + scale/(a-1): pick
    # the scales so the configured means are hit exactly.
    shape = config.tail_shape
    duration_scale = max(0.0, (config.duration_mean - 1.0) * (shape - 1.0))
    size_scale = config.size_mean_mb * (shape - 1.0)
    arrivals: List[FlowArrival] = []
    for epoch in range(epochs):
        count = int(rng.poisson(config.rate_at(epoch)))
        for _ in range(count):
            idx = int(rng.integers(0, len(ids)))
            size = size_scale * float(rng.pareto(shape)) if size_scale else 0.0
            duration = 1 + int(duration_scale * float(rng.pareto(shape)))
            arrivals.append(
                FlowArrival(
                    epoch=epoch,
                    flow=ids[idx],
                    duration=duration,
                    size_mb=round(size, 6),
                )
            )
    return ArrivalTrace(epochs=epochs, arrivals=tuple(arrivals))


def drive_batch_engine(engine, trace: ArrivalTrace) -> Dict[str, int]:
    """Replay a trace against a :class:`BatchAllocationEngine`.

    Registers each epoch's arrivals as one batch, allocates, and releases
    flows whose service time has elapsed.  Arrivals for flows already
    registered are counted as duplicates and skipped (open-loop traffic
    can re-offer a busy flow).  Returns offered/admitted/rejected/
    duplicate/released tallies.
    """
    service_until: Dict[str, int] = {}
    tally = {"offered": 0, "admitted": 0, "rejected": 0,
             "duplicate": 0, "released": 0}
    for epoch in range(trace.epochs):
        done = sorted(f for f, until in service_until.items() if until <= epoch)
        if done:
            engine.release(done)
            for fid in done:
                del service_until[fid]
            tally["released"] += len(done)
        batch = []
        durations: Dict[str, int] = {}
        for arrival in trace.arrivals_at(epoch):
            tally["offered"] += 1
            if arrival.flow in engine.active or arrival.flow in durations:
                tally["duplicate"] += 1
                continue
            batch.append(arrival.flow)
            durations[arrival.flow] = arrival.duration
        for decision in engine.register(batch) if batch else []:
            if decision.action == "admit":
                service_until[decision.flow_id] = epoch + durations[decision.flow_id]
                tally["admitted"] += 1
            else:
                tally["rejected"] += 1
        engine.allocate()
    return tally
