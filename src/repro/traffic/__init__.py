"""Traffic generation: CBR sources (the paper's workload)."""

from .cbr import (
    DEFAULT_PACKET_BYTES,
    DEFAULT_PACKETS_PER_SECOND,
    US,
    CbrSource,
)

__all__ = [
    "CbrSource",
    "DEFAULT_PACKETS_PER_SECOND",
    "DEFAULT_PACKET_BYTES",
    "US",
]
