"""Traffic generation: CBR sources (the paper's workload) and open-loop
Poisson arrivals with heavy-tailed service times (the overload workload)."""

from .cbr import (
    DEFAULT_PACKET_BYTES,
    DEFAULT_PACKETS_PER_SECOND,
    US,
    CbrSource,
)
from .openloop import (
    ArrivalTrace,
    FlowArrival,
    OpenLoopConfig,
    draw_arrival_trace,
    drive_batch_engine,
)

__all__ = [
    "ArrivalTrace",
    "CbrSource",
    "DEFAULT_PACKETS_PER_SECOND",
    "DEFAULT_PACKET_BYTES",
    "FlowArrival",
    "OpenLoopConfig",
    "US",
    "draw_arrival_trace",
    "drive_batch_engine",
]
