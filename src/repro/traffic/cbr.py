"""Constant-bit-rate traffic sources.

The paper's workload: "data at source nodes are generated at a constant
bit rate (CBR) of 200 packets per second with a packet size of 512 bytes"
— 0.82 Mbps per flow, enough to keep every source backlogged (the greedy
assumption of Sec. II-C).  Optional jitter desynchronizes sources without
changing the rate; disabled by default to match ns-2's CBR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.model import Flow
from ..net.packet import DataPacket
from ..sim import RngRegistry, Simulator

#: The paper's workload parameters.
DEFAULT_PACKETS_PER_SECOND = 200.0
DEFAULT_PACKET_BYTES = 512

#: Microseconds per second.
US = 1_000_000.0


class CbrSource:
    """Generates packets for one flow at a fixed rate.

    ``sink`` is called with each new packet (normally the source node's
    MAC ``enqueue``); its boolean return is reported through
    ``on_source_drop`` when False.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: Flow,
        sink: Callable[[DataPacket], bool],
        packets_per_second: float = DEFAULT_PACKETS_PER_SECOND,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        rng: Optional[RngRegistry] = None,
        jitter_fraction: float = 0.0,
        on_offered: Optional[Callable[[str], None]] = None,
        on_source_drop: Optional[Callable[[str], None]] = None,
    ) -> None:
        if packets_per_second <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.flow = flow
        self.sink = sink
        self.interval = US / packets_per_second
        self.packet_bytes = packet_bytes
        self.rng = rng
        self.jitter_fraction = jitter_fraction
        self.on_offered = on_offered or (lambda _: None)
        self.on_source_drop = on_source_drop or (lambda _: None)
        self._seq = 0
        self.generated = 0
        self._stopped = False
        self._running = False

    def start(self, offset: float = 0.0) -> None:
        """Begin (or resume) generating; ``offset`` staggers start times.

        Restartable: a stopped source may be started again (used by the
        dynamic-allocation experiment when a flow re-activates).  Calling
        ``start`` while already running is a no-op.
        """
        if self._running:
            return
        self._stopped = False
        self._running = True
        self.sim.schedule(offset, self._emit)

    def stop(self) -> None:
        """Stop generating after the current tick (restartable later)."""
        self._stopped = True

    def _emit(self) -> None:
        if self._stopped:
            self._running = False
            return
        self._seq += 1
        self.generated += 1
        packet = DataPacket(
            flow_id=self.flow.flow_id,
            route=tuple(self.flow.path),
            size_bytes=self.packet_bytes,
            created_at=self.sim.now,
            seq=self._seq,
        )
        self.on_offered(self.flow.flow_id)
        if not self.sink(packet):
            self.on_source_drop(self.flow.flow_id)
        delay = self.interval
        if self.jitter_fraction and self.rng is not None:
            stream = self.rng.stream(("cbr", self.flow.flow_id))
            span = self.interval * self.jitter_fraction
            delay += float(stream.uniform(-span, span))
        self.sim.schedule(max(delay, 1.0), self._emit)
