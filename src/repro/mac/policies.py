"""Scheduling policies: what to send next and how long to back off.

The MAC state machine (:mod:`repro.mac.entity`) handles carrier sense,
handshakes, and timeouts; a *policy* owns the queues and two decisions:

* which head-of-line packet to transmit next (intra-node coordination);
* the contention-window width for the next attempt (inter-node
  coordination).

Two policies implement the paper's three compared systems:

* :class:`DcfPolicy` — standard IEEE 802.11: one interface queue, binary
  exponential backoff.  Used by the ``802.11`` baseline.
* :class:`FairBackoffPolicy` — the 2PA phase-2 scheduler (Sec. IV-C):
  per-subflow queues, start/internal/external finish tags, a per-node
  virtual clock, a neighbor service-tag table fed by piggybacked tags, and
  a backoff window of ``CW_min + max(Q, R, 0)``.  The *two-tier* baseline
  reuses this scheduler with per-subflow shares computed by the single-hop
  optimization instead of the end-to-end phase-1 shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.model import NodeId, SubflowId
from ..net.packet import DataPacket, TagInfo
from ..net.queues import DEFAULT_CAPACITY, DropTailQueue
from .timings import MacTimings


class SchedulingPolicy:
    """Interface between the MAC entity and a queueing/backoff discipline."""

    node: NodeId

    def enqueue(self, packet: DataPacket, now: float) -> bool:
        """Accept a packet for transmission; False means it was dropped."""
        raise NotImplementedError

    def has_pending(self) -> bool:
        raise NotImplementedError

    def next_packet(self, now: float) -> Optional[DataPacket]:
        """The packet to contend for next (stable until success/drop)."""
        raise NotImplementedError

    def backoff_window(self, packet: DataPacket, attempt: int,
                       now: float) -> float:
        """Upper edge of the uniform backoff draw, in slots."""
        raise NotImplementedError

    def on_success(self, packet: DataPacket, now: float) -> None:
        """The packet was acknowledged; remove it from its queue."""
        raise NotImplementedError

    def on_drop(self, packet: DataPacket, now: float) -> None:
        """Retry limit exceeded; remove the packet."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Tag piggybacking (no-ops for DCF)
    # ------------------------------------------------------------------
    def tags_for(self, packet: DataPacket, now: float) -> Optional[TagInfo]:
        """Tag info to piggyback on RTS/CTS/DATA frames."""
        return None

    def on_overheard_tags(self, tags: TagInfo, now: float) -> None:
        """A neighbor's tags were overheard; update local state."""

    def receiver_backoff_for(self, sender: NodeId, now: float) -> Optional[float]:
        """R value a receiver piggybacks on the ACK (Sec. IV-C step 3)."""
        return None

    def on_ack_feedback(self, receiver_backoff: Optional[float],
                        now: float) -> None:
        """Sender learns the receiver-estimated R from the ACK."""

    def queued_packets(self) -> int:
        raise NotImplementedError


class DcfPolicy(SchedulingPolicy):
    """Plain 802.11 DCF: single drop-tail interface queue + BEB."""

    def __init__(
        self,
        node: NodeId,
        timings: MacTimings,
        queue_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.node = node
        self.timings = timings
        self.queue = DropTailQueue(queue_capacity)

    def enqueue(self, packet: DataPacket, now: float) -> bool:
        return self.queue.offer(packet)

    def has_pending(self) -> bool:
        return bool(self.queue)

    def next_packet(self, now: float) -> Optional[DataPacket]:
        return self.queue.head()

    def backoff_window(self, packet: DataPacket, attempt: int,
                       now: float) -> float:
        """Binary exponential backoff: (CWmin+1)·2^attempt − 1, capped."""
        window = (self.timings.cw_min + 1) * (2 ** attempt) - 1
        return float(min(window, self.timings.cw_max))

    def on_success(self, packet: DataPacket, now: float) -> None:
        self.queue.remove(packet)

    def on_drop(self, packet: DataPacket, now: float) -> None:
        self.queue.remove(packet)

    def queued_packets(self) -> int:
        return len(self.queue)


@dataclass
class _HolState:
    """Tags of a head-of-line packet (assigned when it reaches the head)."""

    packet_uid: int
    start_tag: float
    internal_finish_tag: float
    external_finish_tag: float


class FairBackoffPolicy(SchedulingPolicy):
    """The 2PA phase-2 distributed scheduler (Sec. IV-C).

    Parameters
    ----------
    shares:
        Allocated share ``c_i^j`` per subflow originating at this node, as
        a fraction of channel capacity B.  The *node share* ``c_i`` is
        their sum.
    alpha:
        The short-term fairness strictness knob.  The paper uses 0.0001
        with ns-2's internal tag units; our tags are in microseconds, so
        the effective default here is higher (see DESIGN.md).
    """

    def __init__(
        self,
        node: NodeId,
        timings: MacTimings,
        shares: Mapping[SubflowId, float],
        alpha: float = 0.001,
        queue_capacity: int = DEFAULT_CAPACITY,
        max_window: float = 4095.0,
        table_timeout: float = 1_000_000.0,
        idle_resync_us: float = 250_000.0,
    ) -> None:
        # ``shares`` may be empty for pure receivers/destinations: they
        # never transmit data but still maintain the neighbor table and
        # compute R values for the ACKs they send.
        for sid, share in shares.items():
            if share <= 0:
                raise ValueError(f"share of {sid} must be positive: {share}")
        self.node = node
        self.timings = timings
        self.alpha = float(alpha)
        self.max_window = float(max_window)
        #: Soft-state lifetime (us) of neighbor-table entries.  Tags of
        #: flows that stopped transmitting age out instead of inflating Q
        #: forever (needed when flows depart; see the dynamic-allocation
        #: experiment).
        self.table_timeout = float(table_timeout)
        self.shares: Dict[SubflowId, float] = dict(shares)
        self.node_share = float(sum(shares.values()))
        self.queues: Dict[SubflowId, DropTailQueue] = {
            sid: DropTailQueue(queue_capacity) for sid in shares
        }
        self.virtual_clock = 0.0
        #: Local table: neighbor subflow ->
        #: (owner node, latest start tag, time last heard).
        self.table: Dict[SubflowId, Tuple[NodeId, float, float]] = {}
        self._hol: Dict[SubflowId, _HolState] = {}
        self._last_r = 0.0
        #: Resync the virtual clock only after this much *sustained*
        #: idleness.  A relay that momentarily drains between bursts must
        #: keep its lag credit (otherwise an over-serving upstream node is
        #: forgiven every time the relay's queue touches empty); a flow
        #: that joins after a long silence must not claim ancient credit.
        self.idle_resync_us = float(idle_resync_us)
        self._last_activity = float("-inf")

    # ------------------------------------------------------------------
    # Rate helpers (shares are fractions of B; rates in bits/us)
    # ------------------------------------------------------------------
    def _subflow_rate(self, sid: SubflowId) -> float:
        return self.shares[sid] * self.timings.data_rate

    def _node_rate(self) -> float:
        return self.node_share * self.timings.data_rate

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def enqueue(self, packet: DataPacket, now: float) -> bool:
        sid = packet.subflow
        queue = self.queues.get(sid)
        if queue is None:
            raise KeyError(
                f"node {self.node!r} has no allocated share for {sid}"
            )
        if (
            not self.has_pending()
            and now - self._last_activity > self.idle_resync_us
        ):
            # Coming back from *sustained* idleness (or just joining):
            # re-synchronize the virtual clock with the neighborhood's
            # progress so we neither claim ancient credit nor make
            # incumbents defer to our zeroed clock (the SCFQ/DFS idle
            # rule, guarded so brief queue drains keep their lag credit).
            self.virtual_clock = max(
                self.virtual_clock,
                max(self._fresh_tags(now), default=0.0),
            )
        self._last_activity = now
        return queue.offer(packet)

    def _fresh_tags(self, now: float):
        """Start tags of table entries that have not aged out."""
        for owner, tag, heard_at in self.table.values():
            if now - heard_at <= self.table_timeout:
                yield tag

    def has_pending(self) -> bool:
        return any(self.queues.values())

    def _ensure_hol_tags(self, sid: SubflowId, packet: DataPacket,
                         now: float) -> _HolState:
        """Assign the three tags when a packet reaches the queue head."""
        state = self._hol.get(sid)
        if state is not None and state.packet_uid == packet.uid:
            return state
        start = self.virtual_clock
        size = float(packet.size_bits)
        state = _HolState(
            packet_uid=packet.uid,
            start_tag=start,
            internal_finish_tag=start + size / self._subflow_rate(sid),
            external_finish_tag=start + size / self._node_rate(),
        )
        self._hol[sid] = state
        return state

    def next_packet(self, now: float) -> Optional[DataPacket]:
        """Head-of-line packet with the smallest *internal* finish tag."""
        best: Optional[DataPacket] = None
        best_key: Optional[Tuple[float, str]] = None
        for sid, queue in self.queues.items():
            packet = queue.head()
            if packet is None:
                continue
            state = self._ensure_hol_tags(sid, packet, now)
            key = (state.internal_finish_tag, str(sid))
            if best_key is None or key < best_key:
                best, best_key = packet, key
        return best

    # ------------------------------------------------------------------
    # Backoff (inter-node coordination)
    # ------------------------------------------------------------------
    def _sender_q(self, start_tag: float, now: float) -> float:
        """Q = Σ_{m∈T} (S − r_m) · α over fresh entries of other nodes."""
        q = 0.0
        for owner, r_m, heard_at in self.table.values():
            if owner == self.node or now - heard_at > self.table_timeout:
                continue
            q += (start_tag - r_m) * self.alpha
        return q

    def receiver_backoff_for(self, sender: NodeId, now: float) -> Optional[float]:
        """R = Σ_{m∈T, m≠i} (r_i − r_m) · α, about sender ``i``."""
        r_i: Optional[float] = None
        for owner, tag, heard_at in self.table.values():
            if owner == sender and now - heard_at <= self.table_timeout:
                r_i = tag if r_i is None else max(r_i, tag)
        if r_i is None:
            return None
        r = 0.0
        for owner, r_m, heard_at in self.table.values():
            if owner == sender or now - heard_at > self.table_timeout:
                continue
            r += (r_i - r_m) * self.alpha
        return r

    def on_ack_feedback(self, receiver_backoff: Optional[float],
                        now: float) -> None:
        if receiver_backoff is not None:
            self._last_r = receiver_backoff

    def backoff_window(self, packet: DataPacket, attempt: int,
                       now: float) -> float:
        """CW_min + max(Q, R, 0), in slots (Sec. IV-C step 3)."""
        state = self._ensure_hol_tags(packet.subflow, packet, now)
        q = self._sender_q(state.start_tag, now)
        window = self.timings.cw_min + max(q, self._last_r, 0.0)
        return float(min(window, self.max_window))

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def on_success(self, packet: DataPacket, now: float) -> None:
        """Update the virtual clock to the external finish tag (step 4).

        The clock must advance by one node-share service time *per
        transmitted packet*.  Naively jumping to the pre-computed
        external finish tag under-counts when several subflow queues
        were tagged at the same clock value (two HOL packets sharing a
        start tag would advance the clock only once) — a node with k
        backlogged subflows would then claim k times its normalized
        service against its neighbors.  Chaining from
        ``max(clock, start_tag)`` keeps single-queue behaviour identical
        and fixes the multi-queue case.
        """
        sid = packet.subflow
        state = self._hol.pop(sid, None)
        if state is not None and state.packet_uid == packet.uid:
            rate = self._node_rate()
            if rate > 0:
                self.virtual_clock = (
                    max(self.virtual_clock, state.start_tag)
                    + packet.size_bits / rate
                )
        self.queues[sid].remove(packet)
        # Our own progress also belongs in the table so receivers can
        # compute R about us consistently.
        self.table[sid] = (
            self.node,
            state.start_tag if state else self.virtual_clock,
            now,
        )

    def on_drop(self, packet: DataPacket, now: float) -> None:
        sid = packet.subflow
        self._hol.pop(sid, None)
        self.queues[sid].remove(packet)

    # ------------------------------------------------------------------
    # Tag piggybacking
    # ------------------------------------------------------------------
    def tags_for(self, packet: DataPacket, now: float) -> Optional[TagInfo]:
        state = self._ensure_hol_tags(packet.subflow, packet, now)
        return TagInfo(
            node=self.node,
            subflow=packet.subflow,
            start_tag=state.start_tag,
        )

    # ------------------------------------------------------------------
    # Dynamic re-allocation
    # ------------------------------------------------------------------
    def update_shares(self, shares: Mapping[SubflowId, float]) -> None:
        """Adopt a new allocation strategy at runtime.

        Used when flows join or leave and phase 1 recomputes: queues for
        newly allocated subflows are created, existing queues are kept
        (in-flight packets survive), and head-of-line tags are re-derived
        so finish tags reflect the new rates.  Subflows missing from the
        new strategy keep their queues but are parked at an (effectively)
        zero share by assigning them the minimum positive share given.
        """
        new_shares: Dict[SubflowId, float] = {}
        for sid, share in shares.items():
            if share <= 0:
                raise ValueError(f"share of {sid} must be positive: {share}")
            new_shares[sid] = float(share)
        floor = min(new_shares.values()) * 1e-3 if new_shares else 1e-6
        for sid in self.queues:
            if sid not in new_shares:
                new_shares[sid] = floor
        self.shares = new_shares
        self.node_share = float(sum(new_shares.values()))
        for sid in new_shares:
            if sid not in self.queues:
                self.queues[sid] = DropTailQueue(
                    next(iter(self.queues.values())).capacity
                    if self.queues else DEFAULT_CAPACITY
                )
        self._hol.clear()

    def on_overheard_tags(self, tags: TagInfo, now: float) -> None:
        if tags.node == self.node or tags.subflow is None:
            return
        self.table[tags.subflow] = (tags.node, tags.start_tag, now)

    def queued_packets(self) -> int:
        return sum(len(q) for q in self.queues.values())
