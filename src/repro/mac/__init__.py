"""MAC substrate: channel, 802.11 DCF state machine, scheduling policies."""

from .channel import Transmission, WirelessChannel
from .entity import MacEntity, MacState
from .policies import DcfPolicy, FairBackoffPolicy, SchedulingPolicy
from .timings import DEFAULT_TIMINGS, MacTimings

__all__ = [
    "WirelessChannel",
    "Transmission",
    "MacEntity",
    "MacState",
    "SchedulingPolicy",
    "DcfPolicy",
    "FairBackoffPolicy",
    "MacTimings",
    "DEFAULT_TIMINGS",
]
