"""The shared wireless medium.

Models the physics the MAC protocols react to:

* **propagation scope** — a frame from ``src`` reaches every node within
  transmission range (the paper sets transmission and interference range
  both to 250 m);
* **physical carrier sense** — a node's medium is busy while any in-range
  transmission is on the air; MAC entities get ``on_medium_busy`` /
  ``on_medium_idle`` edge notifications;
* **collisions** — a frame is decodable at a listener iff no *other*
  transmission (including the listener's own — radios are half-duplex)
  overlaps it in time while being within range of the listener.  This is
  exactly the mechanism that produces hidden-terminal losses and the
  flow-in-the-middle starvation of the paper's 802.11 baseline.

No capture effect is modelled: any overlap garbles the frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from ..core.model import Network, NodeId
from ..sim import Simulator, Tracer, NULL_TRACER
from ..net.packet import Frame


class ChannelListener(Protocol):
    """What the channel needs from a MAC entity."""

    def on_medium_busy(self) -> None: ...

    def on_medium_idle(self) -> None: ...

    def on_frame(self, frame: Frame) -> None: ...


@dataclass
class Transmission:
    src: NodeId
    frame: Frame
    start: float
    end: float


class WirelessChannel:
    """Broadcast medium with carrier sense and collision resolution."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tracer: Tracer = NULL_TRACER,
        capture_threshold_db: float = None,
        radio=None,
    ) -> None:
        """``capture_threshold_db`` enables the capture effect: a frame
        decodes despite overlap when its receive power exceeds the
        strongest interferer by at least this many dB (computed with the
        two-ray-ground model; requires a geometric network).  ``None``
        (default) models any overlap as a collision, as ns-2 at capture
        threshold infinity."""
        self.sim = sim
        self.network = network
        self.tracer = tracer
        self.capture_threshold_db = capture_threshold_db
        if capture_threshold_db is not None:
            from ..phy.propagation import RadioParams

            self.radio = radio or RadioParams()
        else:
            self.radio = radio
        self._listeners: Dict[NodeId, ChannelListener] = {}
        self._active: List[Transmission] = []
        self._recent: List[Transmission] = []   # ended but may overlap active
        self._busy_count: Dict[NodeId, int] = {}
        self._neighbors: Dict[NodeId, List[NodeId]] = {
            n: network.neighbors(n) for n in network.nodes
        }
        self.collisions = 0
        self.transmissions = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, node: NodeId, listener: ChannelListener) -> None:
        if node not in self._neighbors:
            raise KeyError(f"unknown node {node!r}")
        self._listeners[node] = listener
        self._busy_count.setdefault(node, 0)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def medium_busy(self, node: NodeId) -> bool:
        """Physical carrier sense at ``node`` (own transmissions excluded)."""
        return self._busy_count.get(node, 0) > 0

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, src: NodeId, frame: Frame) -> Transmission:
        """Put ``frame`` on the air from ``src`` for ``frame.duration`` us.

        Reception outcomes are decided when the frame ends; in-range
        listeners' carrier sense toggles immediately.
        """
        now = self.sim.now
        tx = Transmission(src, frame, now, now + frame.duration)
        self._active.append(tx)
        self.transmissions += 1
        self.tracer.log(now, "chan", f"tx-start {frame}", src=src,
                        dur=frame.duration)
        for nbr in self._neighbors[src]:
            count = self._busy_count.get(nbr, 0)
            self._busy_count[nbr] = count + 1
            if count == 0:
                listener = self._listeners.get(nbr)
                if listener is not None:
                    listener.on_medium_busy()
        self.sim.schedule(frame.duration, lambda: self._complete(tx))
        return tx

    def _complete(self, tx: Transmission) -> None:
        self._active.remove(tx)
        self._recent.append(tx)
        # Recent entries must survive while they can still overlap either a
        # transmission still on the air or the frame being finalized now.
        horizon = min(
            min((t.start for t in self._active), default=self.sim.now),
            tx.start,
        )
        self._prune_recent(horizon)
        # Decide reception at every in-range listener *before* flipping the
        # busy counters, so reception callbacks see a consistent world.
        receptions: List[Optional[ChannelListener]] = []
        garbled: List[ChannelListener] = []
        for nbr in self._neighbors[tx.src]:
            listener = self._listeners.get(nbr)
            if listener is None:
                continue
            if self._garbled_at(tx, nbr):
                self.tracer.log(self.sim.now, "chan",
                                f"garbled {tx.frame}", at=nbr)
                if nbr == tx.frame.dst:
                    self.collisions += 1
                garbled.append(listener)
                continue
            receptions.append(listener)
        for nbr in self._neighbors[tx.src]:
            count = self._busy_count.get(nbr, 0)
            self._busy_count[nbr] = count - 1
        for listener in garbled:
            on_garbled = getattr(listener, "on_garbled", None)
            if on_garbled is not None:
                on_garbled()
        for listener in receptions:
            listener.on_frame(tx.frame)
        for nbr in self._neighbors[tx.src]:
            if self._busy_count.get(nbr, 0) == 0:
                listener = self._listeners.get(nbr)
                if listener is not None:
                    listener.on_medium_idle()

    # ------------------------------------------------------------------
    # Collision logic
    # ------------------------------------------------------------------
    def _garbled_at(self, tx: Transmission, listener: NodeId) -> bool:
        """True if another overlapping transmission corrupts ``tx`` here."""
        interferers: List[NodeId] = []
        for other in self._active + self._recent:
            if other is tx or other.src == tx.src:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue  # no time overlap
            if other.src == listener:
                return True  # half-duplex: we were talking ourselves
            if self.network.in_range(other.src, listener):
                interferers.append(other.src)
        if not interferers:
            return False
        if self.capture_threshold_db is None:
            return True
        return not self._captures(tx.src, listener, interferers)

    def _captures(self, src: NodeId, listener: NodeId,
                  interferers: List[NodeId]) -> bool:
        """Capture model: signal beats the strongest interferer by the
        configured margin (two-ray-ground powers)."""
        from ..phy.propagation import two_ray_ground

        d_signal = self.network.distance(src, listener)
        if d_signal <= 0:
            return False
        signal = two_ray_ground(d_signal, self.radio)
        strongest = 0.0
        for node in interferers:
            d = self.network.distance(node, listener)
            if d <= 0:
                return False
            strongest = max(strongest, two_ray_ground(d, self.radio))
        if strongest <= 0:  # pragma: no cover - interferers were in range
            return True
        margin = 10.0 ** (self.capture_threshold_db / 10.0)
        return signal >= margin * strongest

    def _prune_recent(self, horizon: float) -> None:
        """Drop ended transmissions that can no longer overlap anything."""
        self._recent = [t for t in self._recent if t.end > horizon]
