"""The per-node MAC state machine (CSMA/CA with RTS/CTS/DATA/ACK).

Implements the medium-access mechanics shared by every compared system:
physical carrier sense with DIFS deference, slotted backoff countdown that
freezes while the medium is busy, virtual carrier sense (NAV) from
overheard RTS/CTS duration fields, the four-way handshake, CTS/ACK
timeouts with retries, and a retry limit after which the packet is
dropped.  What differs between 802.11, two-tier, and 2PA — queue
discipline and backoff window — is delegated to a
:class:`~repro.mac.policies.SchedulingPolicy`.

Simplifications relative to a full 802.11 implementation (documented in
DESIGN.md): no EIFS after garbled frames, no capture effect, control
frames never fragmented.  None of these affect the contention phenomena
the paper studies.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Set

from ..core.model import NodeId
from ..net.packet import DataPacket, Frame, FrameKind, TagInfo
from ..sim import Event, RngRegistry, Simulator, Tracer, NULL_TRACER
from .channel import WirelessChannel
from .policies import SchedulingPolicy
from .timings import MacTimings

#: Callback signature for delivered packets: (receiver, packet).
DeliveryHandler = Callable[[NodeId, DataPacket], None]
#: Callback for MAC-level drops: (node, packet, reason).
DropHandler = Callable[[NodeId, DataPacket, str], None]


class MacState(enum.Enum):
    """Sender-side states of the CSMA/CA state machine."""

    IDLE = "idle"              # nothing to send
    WAIT = "wait"              # pending packet, medium busy or NAV set
    DIFS = "difs"              # sensing idle for a DIFS
    BACKOFF = "backoff"        # counting down slots
    TX_RTS = "tx_rts"          # our RTS is on the air
    WAIT_CTS = "wait_cts"
    TX_DATA = "tx_data"        # SIFS wait + DATA on the air
    WAIT_ACK = "wait_ack"


class MacEntity:
    """One node's MAC: sender state machine plus receiver responses."""

    def __init__(
        self,
        node: NodeId,
        sim: Simulator,
        channel: WirelessChannel,
        policy: SchedulingPolicy,
        rng: RngRegistry,
        timings: MacTimings = MacTimings(),
        tracer: Tracer = NULL_TRACER,
        on_delivery: Optional[DeliveryHandler] = None,
        on_drop: Optional[DropHandler] = None,
    ) -> None:
        self.node = node
        self.sim = sim
        self.channel = channel
        self.policy = policy
        self.rng = rng
        self.timings = timings
        self.tracer = tracer
        self.on_delivery = on_delivery or (lambda *_: None)
        self.on_drop = on_drop or (lambda *_: None)

        self.state = MacState.IDLE
        self.nav_until = 0.0
        self.eifs_until = 0.0
        self.attempt = 0
        self.current: Optional[DataPacket] = None
        self.remaining_slots: Optional[int] = None

        self._timer: Optional[Event] = None       # DIFS/backoff/timeout
        self._backoff_started_at = 0.0
        self._responding_until = 0.0               # busy replying CTS/ACK
        self._expecting_data_from: Optional[NodeId] = None
        self._expecting_deadline = 0.0
        self._seen_uids: Set[int] = set()
        self._seen_order: list = []

        # Statistics.
        self.tx_success = 0
        self.tx_failures = 0
        self.mac_drops = 0

        channel.register(node, self)

    # ------------------------------------------------------------------
    # Upper-layer API
    # ------------------------------------------------------------------
    def enqueue(self, packet: DataPacket) -> bool:
        """Queue a packet; returns False when the policy dropped it."""
        accepted = self.policy.enqueue(packet, self.sim.now)
        if accepted:
            self.tracer.log(self.sim.now, "queue", "enqueue",
                            node=self.node, sid=str(packet.subflow))
            self._wakeup()
        else:
            self.tracer.log(self.sim.now, "queue", "drop-full",
                            node=self.node, sid=str(packet.subflow))
        return accepted

    # ------------------------------------------------------------------
    # Contention control
    # ------------------------------------------------------------------
    def _wakeup(self) -> None:
        """(Re)evaluate whether we can start contending for the medium."""
        if self.state not in (MacState.IDLE, MacState.WAIT):
            return
        if not self.policy.has_pending():
            self.state = MacState.IDLE
            return
        if (
            self.channel.medium_busy(self.node)
            or self.sim.now < self.nav_until
            or self.sim.now < self._responding_until
            or self.sim.now < self.eifs_until
        ):
            self.state = MacState.WAIT
            self._arm_nav_wakeup()
            return
        self.state = MacState.DIFS
        self._set_timer(self.timings.difs, self._difs_done)

    def _arm_nav_wakeup(self) -> None:
        """Retry contention when NAV / EIFS / responder holds expire."""
        horizon = max(self.nav_until, self._responding_until,
                      self.eifs_until)
        if horizon > self.sim.now:
            self.sim.schedule_at(horizon, self._wakeup)

    def on_garbled(self) -> None:
        """Energy was sensed but the frame did not decode.

        With ``use_eifs`` enabled, defer an EIFS before contending again
        — the overlapped exchange may be mid-handshake and its invisible
        ACK deserves protection (802.11 §9.2.10).  A no-op otherwise.
        """
        if not self.timings.use_eifs:
            return
        new_until = self.sim.now + self.timings.eifs - self.timings.difs
        if new_until > self.eifs_until:
            self.eifs_until = new_until
            if self.state == MacState.DIFS:
                self._clear_timer()
                self.state = MacState.WAIT
            elif self.state == MacState.BACKOFF:
                self._freeze_backoff()
            if self.state == MacState.WAIT:
                self._arm_nav_wakeup()

    def _difs_done(self) -> None:
        self._timer = None
        if self.remaining_slots is None:
            packet = self.policy.next_packet(self.sim.now)
            if packet is None:  # pragma: no cover - has_pending guarded
                self.state = MacState.IDLE
                return
            self.current = packet
            window = self.policy.backoff_window(packet, self.attempt,
                                                self.sim.now)
            self.remaining_slots = self.rng.uniform_slots(
                ("backoff", self.node), window
            )
        self.state = MacState.BACKOFF
        if self.remaining_slots == 0:
            self._backoff_done()
        else:
            self._backoff_started_at = self.sim.now
            self._set_timer(self.remaining_slots * self.timings.slot,
                            self._backoff_done)

    def _freeze_backoff(self) -> None:
        """Medium went busy during countdown: remember remaining slots."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.state == MacState.BACKOFF and self.remaining_slots:
            elapsed = self.sim.now - self._backoff_started_at
            consumed = int(elapsed // self.timings.slot)
            self.remaining_slots = max(self.remaining_slots - consumed, 0)
        self.state = MacState.WAIT

    def _backoff_done(self) -> None:
        self._timer = None
        self.remaining_slots = None
        packet = self.current
        if packet is None:  # pragma: no cover - defensive
            self.state = MacState.IDLE
            self._wakeup()
            return
        self._send_rts(packet)

    # ------------------------------------------------------------------
    # Sender handshake
    # ------------------------------------------------------------------
    def _send_rts(self, packet: DataPacket) -> None:
        self.state = MacState.TX_RTS
        rts = Frame(
            kind=FrameKind.RTS,
            src=self.node,
            dst=packet.receiver,
            duration=self.timings.rts_duration,
            nav=self.timings.exchange_remainder_after_rts(packet.size_bytes),
            packet=packet,
            tags=self.policy.tags_for(packet, self.sim.now),
        )
        self.tracer.log(self.sim.now, "mac", "rts", node=self.node,
                        dst=packet.receiver, attempt=self.attempt)
        self.channel.transmit(self.node, rts)
        self.state = MacState.WAIT_CTS
        self._set_timer(
            self.timings.rts_duration + self.timings.cts_timeout,
            self._cts_timeout,
        )

    def _cts_timeout(self) -> None:
        self._timer = None
        self.tracer.log(self.sim.now, "mac", "cts-timeout", node=self.node)
        self._attempt_failed()

    def _on_cts(self, frame: Frame) -> None:
        if self.state != MacState.WAIT_CTS or self.current is None:
            return
        self._clear_timer()
        self.state = MacState.TX_DATA
        packet = self.current
        data = Frame(
            kind=FrameKind.DATA,
            src=self.node,
            dst=packet.receiver,
            duration=self.timings.data_duration_for(packet),
            nav=self.timings.sifs + self.timings.ack_duration,
            packet=packet,
            tags=self.policy.tags_for(packet, self.sim.now),
        )
        self.sim.schedule(self.timings.sifs,
                          lambda: self._transmit_data(data))

    def _transmit_data(self, data: Frame) -> None:
        if self.state != MacState.TX_DATA:  # pragma: no cover - defensive
            return
        self.channel.transmit(self.node, data)
        self.state = MacState.WAIT_ACK
        self._set_timer(
            data.duration + self.timings.ack_timeout, self._ack_timeout
        )

    def _ack_timeout(self) -> None:
        self._timer = None
        self.tracer.log(self.sim.now, "mac", "ack-timeout", node=self.node)
        self._attempt_failed()

    def _on_ack(self, frame: Frame) -> None:
        if self.state != MacState.WAIT_ACK or self.current is None:
            return
        self._clear_timer()
        packet = self.current
        if frame.tags is not None:
            self.policy.on_ack_feedback(frame.tags.receiver_backoff,
                                        self.sim.now)
        self.policy.on_success(packet, self.sim.now)
        self.tx_success += 1
        self.tracer.log(self.sim.now, "mac", "success", node=self.node,
                        sid=str(packet.subflow))
        self._reset_contention()

    def _attempt_failed(self) -> None:
        self.tx_failures += 1
        self.attempt += 1
        packet = self.current
        if packet is not None and self.attempt > self.timings.retry_limit:
            self.policy.on_drop(packet, self.sim.now)
            self.mac_drops += 1
            self.tracer.log(self.sim.now, "mac", "retry-drop",
                            node=self.node, sid=str(packet.subflow))
            self.on_drop(self.node, packet, "retry-limit")
            self._reset_contention()
            return
        # Retry: keep the packet, redraw backoff at the next opportunity.
        self.remaining_slots = None
        self.state = MacState.WAIT
        self._wakeup()

    def _reset_contention(self) -> None:
        self.current = None
        self.attempt = 0
        self.remaining_slots = None
        self.state = MacState.WAIT
        self._wakeup()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_rts(self, frame: Frame) -> None:
        if self.sim.now < self.nav_until:
            return  # virtual carrier sense forbids the CTS
        if self.sim.now < self._responding_until:
            return  # already engaged in another exchange
        if self.state in (MacState.TX_RTS, MacState.WAIT_CTS,
                          MacState.TX_DATA, MacState.WAIT_ACK):
            return  # engaged as a sender
        packet = frame.packet
        if packet is None:  # pragma: no cover - RTS always carries one
            return
        self._freeze_backoff()
        remainder = self.timings.exchange_remainder_after_rts(
            packet.size_bytes
        )
        self._responding_until = self.sim.now + remainder
        self._expecting_data_from = frame.src
        self._expecting_deadline = self._responding_until
        self._arm_nav_wakeup()
        # The CTS echoes the data packet's service tag (Sec. IV-C: RTS, CTS
        # and ACK all piggyback the current packet's tag) — this is how
        # nodes that only hear the *receiver* side of an exchange learn the
        # sender's progress and can defer for it.
        cts = Frame(
            kind=FrameKind.CTS,
            src=self.node,
            dst=frame.src,
            duration=self.timings.cts_duration,
            nav=self.timings.exchange_remainder_after_cts(packet.size_bytes),
            tags=frame.tags,
        )
        self.sim.schedule(self.timings.sifs,
                          lambda: self.channel.transmit(self.node, cts))

    def _on_data(self, frame: Frame) -> None:
        if (
            self._expecting_data_from != frame.src
            or self.sim.now > self._expecting_deadline + self.timings.timeout_slack
        ):
            return
        packet = frame.packet
        if packet is None:  # pragma: no cover
            return
        self._expecting_data_from = None
        r_value = self.policy.receiver_backoff_for(frame.src, self.sim.now)
        # The ACK echoes the data packet's tag (for overhearers) and adds
        # the receiver-estimated backoff R for the sender (Sec. IV-C).
        ack = Frame(
            kind=FrameKind.ACK,
            src=self.node,
            dst=frame.src,
            duration=self.timings.ack_duration,
            tags=TagInfo(
                node=frame.tags.node if frame.tags else frame.src,
                subflow=frame.tags.subflow if frame.tags else None,
                start_tag=frame.tags.start_tag if frame.tags else 0.0,
                receiver_backoff=r_value,
            ),
        )
        self.sim.schedule(self.timings.sifs,
                          lambda: self.channel.transmit(self.node, ack))
        if packet.uid in self._seen_uids:
            return  # duplicate after a lost ACK: re-ACK but do not deliver
        self._remember_uid(packet.uid)
        self.on_delivery(self.node, packet)

    def _remember_uid(self, uid: int) -> None:
        self._seen_uids.add(uid)
        self._seen_order.append(uid)
        if len(self._seen_order) > 512:
            self._seen_uids.discard(self._seen_order.pop(0))

    # ------------------------------------------------------------------
    # Channel callbacks
    # ------------------------------------------------------------------
    def on_medium_busy(self) -> None:
        if self.state == MacState.DIFS:
            self._clear_timer()
            self.state = MacState.WAIT
        elif self.state == MacState.BACKOFF:
            self._freeze_backoff()

    def on_medium_idle(self) -> None:
        if self.state == MacState.WAIT:
            self._wakeup()

    def on_frame(self, frame: Frame) -> None:
        """A frame was decoded at this node."""
        if frame.tags is not None:
            self.policy.on_overheard_tags(frame.tags, self.sim.now)
        if frame.dst == self.node:
            if frame.kind == FrameKind.RTS:
                self._on_rts(frame)
            elif frame.kind == FrameKind.CTS:
                self._on_cts(frame)
            elif frame.kind == FrameKind.DATA:
                self._on_data(frame)
            elif frame.kind == FrameKind.ACK:
                self._on_ack(frame)
            return
        # Overheard traffic: honor the frame's NAV reservation.
        if frame.nav > 0:
            new_nav = self.sim.now + frame.nav
            if new_nav > self.nav_until:
                self.nav_until = new_nav
                if self.state == MacState.DIFS:
                    self._clear_timer()
                    self.state = MacState.WAIT
                elif self.state == MacState.BACKOFF:
                    self._freeze_backoff()
                if self.state == MacState.WAIT:
                    self._arm_nav_wakeup()

    # ------------------------------------------------------------------
    # Timer helpers
    # ------------------------------------------------------------------
    def _set_timer(self, delay: float, callback: Callable[[], None]) -> None:
        self._clear_timer()
        self._timer = self.sim.schedule(delay, callback)

    def _clear_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
