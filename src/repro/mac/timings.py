"""IEEE 802.11 DSSS timing parameters and frame durations.

Derived from the 1999 802.11 DSSS PHY the paper's ns-2 version models:
2 Mbps data rate, 1 Mbps control/basic rate, 192 us PLCP preamble+header
at the basic rate, 20 us slots, 10 us SIFS, DIFS = SIFS + 2*slots.

All durations are in microseconds; sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..net.packet import DataPacket

#: MAC overheads (bytes), per IEEE 802.11-1999.
RTS_BYTES = 20
CTS_BYTES = 14
ACK_BYTES = 14
MAC_HEADER_BYTES = 28  # data MAC header + FCS


@dataclass(frozen=True)
class MacTimings:
    """Every timing constant the MAC state machines use."""

    slot: float = 20.0                 # us
    sifs: float = 10.0                 # us
    plcp_overhead: float = 192.0       # us, preamble + PLCP header
    data_rate: float = 2.0             # Mbps == bits/us
    basic_rate: float = 1.0            # Mbps, for RTS/CTS/ACK
    cw_min: int = 31                   # the paper sets CWmin = 31
    cw_max: int = 1023
    retry_limit: int = 7
    timeout_slack: float = 5.0         # us of grace on CTS/ACK timeouts
    #: Defer EIFS (instead of DIFS) after sensing an undecodable frame.
    #: Off by default: ns-2 2.1b8a-era models (and our calibrated
    #: results) do not use it; the EIFS ablation turns it on.
    use_eifs: bool = False

    @property
    def difs(self) -> float:
        return self.sifs + 2.0 * self.slot

    @property
    def eifs(self) -> float:
        """Extended IFS: SIFS + ACK-at-basic-rate + DIFS (802.11 §9.2.10).

        Applied after a reception error so a node does not stomp on the
        ACK it could not see coming.
        """
        return self.sifs + self.control_duration(ACK_BYTES) + self.difs

    # ------------------------------------------------------------------
    # Frame durations
    # ------------------------------------------------------------------
    def control_duration(self, size_bytes: int) -> float:
        """Airtime of a control frame at the basic rate."""
        return self.plcp_overhead + size_bytes * 8.0 / self.basic_rate

    @property
    def rts_duration(self) -> float:
        return self.control_duration(RTS_BYTES)

    @property
    def cts_duration(self) -> float:
        return self.control_duration(CTS_BYTES)

    @property
    def ack_duration(self) -> float:
        return self.control_duration(ACK_BYTES)

    def data_duration(self, payload_bytes: int) -> float:
        """Airtime of a DATA frame (payload + MAC header) at data rate."""
        bits = (payload_bytes + MAC_HEADER_BYTES) * 8.0
        return self.plcp_overhead + bits / self.data_rate

    def data_duration_for(self, packet: DataPacket) -> float:
        return self.data_duration(packet.size_bytes)

    # ------------------------------------------------------------------
    # Handshake bookkeeping
    # ------------------------------------------------------------------
    def exchange_remainder_after_rts(self, payload_bytes: int) -> float:
        """NAV a correctly decoded RTS announces: CTS+DATA+ACK + SIFSes."""
        return (
            self.sifs + self.cts_duration
            + self.sifs + self.data_duration(payload_bytes)
            + self.sifs + self.ack_duration
        )

    def exchange_remainder_after_cts(self, payload_bytes: int) -> float:
        """NAV a correctly decoded CTS announces: DATA+ACK + SIFSes."""
        return (
            self.sifs + self.data_duration(payload_bytes)
            + self.sifs + self.ack_duration
        )

    @property
    def cts_timeout(self) -> float:
        """Sender waits this long after its RTS ends for the CTS to end."""
        return self.sifs + self.cts_duration + self.timeout_slack

    @property
    def ack_timeout(self) -> float:
        """Sender waits this long after its DATA ends for the ACK to end."""
        return self.sifs + self.ack_duration + self.timeout_slack

    def transaction_duration(self, payload_bytes: int) -> float:
        """Full RTS->ACK exchange airtime (excluding DIFS and backoff)."""
        return self.rts_duration + self.exchange_remainder_after_rts(
            payload_bytes
        )

    def with_cw_min(self, cw_min: int) -> "MacTimings":
        """A copy with a different minimum contention window."""
        return replace(self, cw_min=cw_min)


#: The evaluation's configuration: 2 Mbps channel, CWmin = 31.
DEFAULT_TIMINGS = MacTimings()
