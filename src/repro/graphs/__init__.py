"""From-scratch graph algorithms underpinning the contention analysis."""

from .graph import Graph, to_networkx
from .cliques import (
    cliques_containing,
    is_maximal_clique,
    max_weight_clique,
    maximal_cliques,
    weighted_clique_number,
    weighted_clique_size,
)
from .coloring import (
    chain_coloring,
    chain_contention_graph,
    color_classes,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)
from .components import (
    bfs_hop_counts,
    bfs_reachable,
    bfs_shortest_path,
    connected_components,
    is_connected,
)
from .independent import (
    greedy_maximum_independent_set,
    independence_number,
    independent_sets_covering,
    maximal_independent_sets,
)

__all__ = [
    "Graph",
    "to_networkx",
    "maximal_cliques",
    "weighted_clique_size",
    "weighted_clique_number",
    "max_weight_clique",
    "cliques_containing",
    "is_maximal_clique",
    "greedy_coloring",
    "num_colors",
    "is_proper_coloring",
    "chain_coloring",
    "chain_contention_graph",
    "color_classes",
    "connected_components",
    "bfs_reachable",
    "bfs_shortest_path",
    "bfs_hop_counts",
    "is_connected",
    "maximal_independent_sets",
    "greedy_maximum_independent_set",
    "independence_number",
    "independent_sets_covering",
]
