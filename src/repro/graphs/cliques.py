"""Maximal-clique enumeration on subflow contention graphs.

The optimal allocation strategies of Sec. III constrain the per-flow share
once per *maximal* clique of the subflow contention graph (the paper calls
these "maximum cliques": cliques not contained in any other clique).  The
graphs are small, so the classic Bron–Kerbosch algorithm with pivoting is
more than fast enough and is implemented here from scratch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from .graph import Graph, Vertex

#: Vertex count below which the plain set-based kernel is used directly;
#: tiny graphs do not amortize the bitset adjacency build.
_BITSET_MIN_VERTICES = 8


def clique_vertex_order(graph: Graph) -> List[Vertex]:
    """The canonical vertex order used for clique indexing and sorting.

    Vertices are ranked once by ``repr`` (stable across interpreter runs
    and insertion orders); all clique-level ordering then works on integer
    indices into this list rather than re-deriving string keys per
    comparison.
    """
    return sorted(graph.vertices(), key=repr)


def sort_cliques(
    cliques: Iterable[FrozenSet[Vertex]],
    rank: Dict[Vertex, int],
) -> List[FrozenSet[Vertex]]:
    """Canonical clique order: size descending, then member index order.

    ``rank`` maps each vertex to its position in
    :func:`clique_vertex_order`; every clique producer (set-based kernel,
    bitset kernel, brute-force oracle, incremental merge) sorts through
    this single helper so orderings always compare equal.
    """
    return sorted(
        cliques,
        key=lambda c: (-len(c), sorted(rank[v] for v in c)),
    )


def maximal_cliques(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Enumerate all maximal cliques via Bron–Kerbosch with pivoting.

    Returns a list of frozensets in the canonical deterministic order
    (size descending, then member vertex-index order) so that LP
    constraint ordering is reproducible run to run.

    Dispatches to the bitset kernel of :mod:`repro.perf.cliques` for
    graphs of :data:`_BITSET_MIN_VERTICES` or more vertices; the set-based
    reference implementation (:func:`maximal_cliques_set`) handles tiny
    graphs and serves as the differential oracle for the kernel.  Both
    produce bit-identical output.
    """
    if graph.num_vertices() >= _BITSET_MIN_VERTICES:
        from ..perf.cliques import maximal_cliques_bitset

        return maximal_cliques_bitset(graph)
    return maximal_cliques_set(graph)


def maximal_cliques_set(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Set-based Bron–Kerbosch reference implementation.

    Kept as an independent implementation of the clique kernel: the
    differential tests require ``maximal_cliques_set(g) ==
    maximal_cliques_bitset(g)`` on arbitrary graphs.
    """
    if graph.num_vertices() == 0:
        return []

    order = clique_vertex_order(graph)
    rank = {v: i for i, v in enumerate(order)}
    adj: Dict[Vertex, Set[Vertex]] = {v: graph.neighbors(v) for v in graph}
    cliques: List[FrozenSet[Vertex]] = []

    def expand(r: Set[Vertex], p: Set[Vertex], x: Set[Vertex]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Pivot: most neighbors in P; ties broken by the stable vertex
        # index so the recursion tree never depends on set iteration order.
        pivot = max(p | x, key=lambda u: (len(adj[u] & p), -rank[u]))
        for v in sorted(p - adj[pivot], key=rank.__getitem__):
            expand(r | {v}, p & adj[v], x & adj[v])
            p.discard(v)
            x.add(v)

    expand(set(), set(adj), set())
    return sort_cliques(cliques, rank)


def weighted_clique_size(
    clique: Iterable[Vertex], weights: Dict[Vertex, float]
) -> float:
    """Sum of vertex weights in a clique (ω_{Ω_k} in the paper)."""
    return float(sum(weights[v] for v in clique))


def weighted_clique_number(
    graph: Graph, weights: Dict[Vertex, float]
) -> float:
    """ω_Ω: the maximum weighted clique size over all maximal cliques.

    This is the quantity in Proposition 1's throughput upper bound
    ``Σ w_i · B / ω_Ω``.  An empty graph has weighted clique number 0.
    """
    best = 0.0
    for clique in maximal_cliques(graph):
        best = max(best, weighted_clique_size(clique, weights))
    return best


def max_weight_clique(
    graph: Graph, weights: Dict[Vertex, float]
) -> Tuple[FrozenSet[Vertex], float]:
    """The maximal clique attaining ω_Ω, with its weighted size.

    Ties are broken by the deterministic ordering of
    :func:`maximal_cliques`.  Raises ``ValueError`` on an empty graph.
    """
    cliques = maximal_cliques(graph)
    if not cliques:
        raise ValueError("graph has no vertices")
    best = cliques[0]
    best_w = weighted_clique_size(best, weights)
    for clique in cliques[1:]:
        w = weighted_clique_size(clique, weights)
        if w > best_w:
            best, best_w = clique, w
    return best, best_w


def cliques_containing(
    cliques: Iterable[FrozenSet[Vertex]], vertex: Vertex
) -> List[FrozenSet[Vertex]]:
    """Filter ``cliques`` down to those containing ``vertex``."""
    return [c for c in cliques if vertex in c]


def is_maximal_clique(graph: Graph, clique: Iterable[Vertex]) -> bool:
    """True iff ``clique`` is a clique with no strict clique superset."""
    members = set(clique)
    if not graph.is_clique(members):
        return False
    if not members:
        return graph.num_vertices() == 0
    # A clique is maximal iff no outside vertex is adjacent to all members.
    common: Set[Vertex] = None  # type: ignore[assignment]
    for v in members:
        nbrs = graph.neighbors(v)
        common = nbrs if common is None else (common & nbrs)
    assert common is not None
    return not (common - members)
