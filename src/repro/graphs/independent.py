"""Independent-set enumeration for schedule feasibility analysis.

An allocation strategy is *schedulable* only if it can be written as a
time-sharing of independent sets of the subflow contention graph (sets of
subflows that may transmit concurrently).  Sec. III's pentagon example
(Fig. 5) is exactly a case where the clique-based upper bound admits no
such time-sharing.  Maximal independent sets are enumerated as the maximal
cliques of the complement graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from .cliques import maximal_cliques
from .graph import Graph, Vertex


def maximal_independent_sets(graph: Graph) -> List[FrozenSet[Vertex]]:
    """All maximal independent sets, deterministically ordered.

    Computed as the maximal cliques of the complement graph; an isolated
    vertex set {v} is independent, and the empty graph yields no sets.
    """
    return maximal_cliques(graph.complement())


def greedy_maximum_independent_set(graph: Graph) -> Set[Vertex]:
    """A (not necessarily optimal) large independent set, greedily.

    Repeatedly picks the minimum-degree vertex and removes its closed
    neighborhood.  Used by the two-tier baseline's "select maximum
    independent sets of subflows" step; optimality is not required there,
    only a maximal concurrent-transmission set.
    """
    g = graph.copy()
    chosen: Set[Vertex] = set()
    while g.num_vertices():
        v = min(g.vertices(), key=lambda u: (g.degree(u), repr(u)))
        chosen.add(v)
        for u in list(g.neighbors(v)) + [v]:
            g.remove_vertex(u)
    return chosen


def independence_number(graph: Graph) -> int:
    """Size of a maximum independent set (exact; exponential but tiny n)."""
    sets = maximal_independent_sets(graph)
    return max((len(s) for s in sets), default=0)


def independent_sets_covering(
    graph: Graph, vertices: Iterable[Vertex]
) -> Dict[Vertex, List[FrozenSet[Vertex]]]:
    """Map each vertex to the maximal independent sets containing it."""
    sets = maximal_independent_sets(graph)
    cover: Dict[Vertex, List[FrozenSet[Vertex]]] = {
        v: [] for v in vertices
    }
    for s in sets:
        for v in s:
            if v in cover:
                cover[v].append(s)
    return cover
