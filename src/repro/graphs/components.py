"""Connected components and traversal utilities.

Contending flow *groups* (Sec. II-A) are precisely the connected components
of the subflow contention graph lifted to flows: two multi-hop flows belong
to the same group if a chain of pairwise-contending flows joins them.  The
allocation algorithms run independently on each group, so component
extraction is the first step of every phase-1 computation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from .graph import Graph, Vertex


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """All connected components, each as a vertex set.

    Components are returned in order of first-seen vertex, so the result is
    deterministic given the graph's insertion order.
    """
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in graph:
        if start in seen:
            continue
        comp = bfs_reachable(graph, start)
        seen |= comp
        components.append(comp)
    return components


def bfs_reachable(graph: Graph, start: Vertex) -> Set[Vertex]:
    """Vertices reachable from ``start`` (including it)."""
    seen: Set[Vertex] = {start}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in seen:
                seen.add(u)
                queue.append(u)
    return seen


def bfs_shortest_path(
    graph: Graph, source: Vertex, target: Vertex
) -> Optional[List[Vertex]]:
    """A shortest (fewest-edge) path from ``source`` to ``target``.

    Returns ``None`` if no path exists.  Neighbor exploration follows the
    graph's deterministic ordering via sorted reprs, so routing decisions
    are reproducible.
    """
    if source == target:
        return [source]
    parent: Dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in sorted(graph.neighbors(v), key=repr):
            if u in parent:
                continue
            parent[u] = v
            if u == target:
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            queue.append(u)
    return None


def bfs_hop_counts(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Hop distance from ``source`` to every reachable vertex."""
    dist: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def is_connected(graph: Graph) -> bool:
    """True iff the graph has at most one connected component."""
    if graph.num_vertices() <= 1:
        return True
    return len(bfs_reachable(graph, next(iter(graph)))) == graph.num_vertices()
