"""Graph coloring used for the paper's virtual-length argument (Sec. II-D).

A shortcut-free multi-hop flow induces a path in its own subflow contention
graph where each subflow contends only with its immediate upstream and
downstream subflows.  Fig. 3 of the paper colors a 6-subflow chain with 3
colors, partitioning the subflows into independent sets that may transmit
concurrently; this is why a flow of length >= 3 behaves as if it had
*virtual length* 3.

For the special structure actually required (paths whose contention graph
is the square of a path: subflow j contends with j-1 and j+1), the optimal
coloring is the periodic assignment ``j mod 3``.  A greedy general-purpose
coloring is also provided for arbitrary contention graphs.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from .graph import Graph, Vertex


def greedy_coloring(graph: Graph, order: Sequence[Vertex] = None) -> Dict[Vertex, int]:
    """Greedy proper coloring; colors are 0-based integers.

    ``order`` fixes the vertex visitation order (defaults to insertion
    order), making the result deterministic.  The number of colors used is
    at most ``max_degree + 1``.
    """
    if order is None:
        order = graph.vertices()
    colors: Dict[Vertex, int] = {}
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors


def num_colors(coloring: Dict[Vertex, int]) -> int:
    """Number of distinct colors used by a coloring (0 for empty)."""
    return len(set(coloring.values())) if coloring else 0


def is_proper_coloring(graph: Graph, coloring: Dict[Vertex, int]) -> bool:
    """True iff no edge joins two vertices of the same color."""
    return all(coloring[u] != coloring[v] for u, v in graph.edges())


def chain_coloring(num_subflows: int) -> Dict[int, int]:
    """Color the subflows of a shortcut-free ``num_subflows``-hop flow.

    Under the endpoint-range contention rule, subflow ``j`` (0-based) of a
    shortcut-free chain contends with ``j±1`` (shared relay node) *and*
    ``j±2`` (the endpoints of the hop between them are in range), but not
    with ``j±3``.  The paper's minimum coloring assigns color ``j mod 3``
    (or ``j mod l`` for flows shorter than 3 hops), which is proper for
    this graph.  Returns ``{subflow_index: color}``.
    """
    if num_subflows < 0:
        raise ValueError("number of subflows must be non-negative")
    modulus = min(num_subflows, 3) or 1
    return {j: j % modulus for j in range(num_subflows)}


def chain_contention_graph(num_subflows: int) -> Graph:
    """Contention graph of a shortcut-free flow with ``num_subflows`` hops.

    Vertices are the 0-based subflow indices.  Subflow ``j`` contends with
    ``j±1`` (they share a node) and with ``j±2`` (the receiver of ``j`` and
    the sender of ``j+2`` are the two endpoints of hop ``j+1``, hence in
    range); ``j±3`` does not contend when the path has no shortcuts.  The
    graph is therefore the square of a path, whose maximal cliques are
    triples of consecutive subflows — the combinatorial root of the
    virtual-length cap ``v = 3``.
    """
    g = Graph()
    for j in range(num_subflows):
        g.add_vertex(j)
    for j in range(num_subflows - 1):
        g.add_edge(j, j + 1)
        if j + 2 < num_subflows:
            g.add_edge(j, j + 2)
    return g


def color_classes(coloring: Dict[Vertex, int]) -> List[List[Vertex]]:
    """Group vertices by color, ordered by color index.

    For a chain coloring these are exactly the paper's concurrent
    transmission sets {F_{i.1}, F_{i.4}, ...}, {F_{i.2}, F_{i.5}, ...}, ...
    """
    classes: Dict[int, List[Vertex]] = {}
    for v, c in coloring.items():
        classes.setdefault(c, []).append(v)
    return [classes[c] for c in sorted(classes)]
