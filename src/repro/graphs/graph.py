"""A small, dependency-free undirected graph used throughout the library.

The subflow contention graphs manipulated by the allocation algorithms are
tiny (tens of vertices), so the emphasis here is on clarity and on exposing
exactly the operations the paper's analysis needs: adjacency queries,
induced subgraphs, connected components, and vertex attributes (weights).

``networkx`` is available in the environment and is used by the test suite
to cross-check these implementations, but the library itself is
self-contained so that the algorithmic core of the reproduction does not
depend on an external graph package.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Vertex = Hashable


class Graph:
    """An undirected simple graph with optional per-vertex attributes.

    Vertices may be any hashable object.  Self-loops are rejected because a
    subflow never contends with itself in the paper's model.
    """

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._attrs: Dict[Vertex, dict] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex, **attrs: object) -> None:
        """Add vertex ``v``; merging ``attrs`` into its attribute dict."""
        if v not in self._adj:
            self._adj[v] = set()
            self._attrs[v] = {}
        if attrs:
            self._attrs[v].update(attrs)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating vertices as needed."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        if v not in self._adj.get(u, ()):  # pragma: no branch
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges."""
        for u in self._adj.pop(v):
            self._adj[u].discard(v)
        self._attrs.pop(v, None)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Iterable[Vertex] = (),
    ) -> "Graph":
        """Build a graph from an edge list plus optional isolated vertices."""
        g = cls()
        for v in vertices:
            g.add_vertex(v)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vertices(self) -> List[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adj)

    def edges(self) -> List[Tuple[Vertex, Vertex]]:
        """Each undirected edge exactly once."""
        seen: Set[frozenset] = set()
        out: List[Tuple[Vertex, Vertex]] = []
        for u in self._adj:
            for v in self._adj[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    out.append((u, v))
        return out

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """The (open) neighborhood of ``v``."""
        return set(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def attr(self, v: Vertex, key: str, default: object = None) -> object:
        """Read attribute ``key`` of vertex ``v``."""
        return self._attrs[v].get(key, default)

    def set_attr(self, v: Vertex, key: str, value: object) -> None:
        self._attrs[v][key] = value

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(n) for n in self._adj.values()) // 2

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``keep`` (attributes are copied).

        Vertices keep their insertion order; adjacency is built by set
        intersection rather than re-adding edges one by one.
        """
        keep_set = set(keep)
        g = Graph()
        for v in self._adj:
            if v in keep_set:
                g._adj[v] = self._adj[v] & keep_set
                g._attrs[v] = dict(self._attrs[v])
        return g

    def induced_subgraph(self, members: Iterable[Vertex]) -> "Graph":
        """Induced subgraph in ``members`` order, O(|members| + edges).

        Unlike :meth:`subgraph`, which walks the *whole* vertex set to
        preserve the parent's insertion order, this trusts the caller's
        order — the right tool when ``members`` is one connected
        component among thousands, where the full-vertex walk would turn
        a per-component loop quadratic.  Raises ``KeyError`` on unknown
        vertices.
        """
        members = list(members)
        keep_set = set(members)
        g = Graph()
        for v in members:
            g._adj[v] = self._adj[v] & keep_set
            g._attrs[v] = dict(self._attrs[v])
        return g

    def complement(self) -> "Graph":
        """The complement graph on the same vertex set."""
        g = Graph()
        verts = self.vertices()
        for v in verts:
            g.add_vertex(v, **self._attrs[v])
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if not self.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def copy(self) -> "Graph":
        g = Graph()
        for v in self._adj:
            g.add_vertex(v, **self._attrs[v])
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_clique(self, verts: Iterable[Vertex]) -> bool:
        """True iff ``verts`` induce a complete subgraph."""
        vs = list(verts)
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True

    def is_independent_set(self, verts: Iterable[Vertex]) -> bool:
        """True iff no two vertices of ``verts`` are adjacent."""
        vs = list(verts)
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                if self.has_edge(u, v):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_vertices()}, |E|={self.num_edges()})"


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` (used by tests for cross-checking)."""
    import networkx as nx

    g = nx.Graph()
    for v in graph.vertices():
        g.add_node(v)
    g.add_edges_from(graph.edges())
    return g
