"""A small linear-program intermediate representation.

All of the paper's phase-1 optimizations are linear programs of the form

    maximize    c' x
    subject to  A_ub x <= b_ub
                x >= lb           (per-variable lower bounds)

where ``x`` are per-flow equal-per-hop shares ``r̂_i``, the ``A_ub`` rows
come from clique capacity constraints (Eq. 6), and ``lb`` encodes the basic
shares (Eq. 7).  This module provides a named-variable builder that both the
from-scratch simplex solver and the scipy cross-check backend consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Constraint:
    """A single linear constraint ``sum(coeffs[v] * v) <= bound``.

    ``label`` is carried through for reporting (e.g. the clique it encodes).
    """

    coeffs: Mapping[str, float]
    bound: float
    label: str = ""

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Left-hand-side value under ``assignment`` (missing vars = 0)."""
        return float(
            sum(c * assignment.get(v, 0.0) for v, c in self.coeffs.items())
        )

    def satisfied_by(
        self, assignment: Mapping[str, float], tol: float = 1e-9
    ) -> bool:
        return self.evaluate(assignment) <= self.bound + tol

    def is_tight(
        self, assignment: Mapping[str, float], tol: float = 1e-7
    ) -> bool:
        return abs(self.evaluate(assignment) - self.bound) <= tol


@dataclass
class LinearProgram:
    """A maximization LP over named non-negative variables.

    Variables are registered implicitly through the objective, constraints,
    and lower bounds; the column order is the registration order, which
    makes solver behaviour (pivot selection, tie-breaking) deterministic.
    """

    _order: List[str] = field(default_factory=list)
    objective: Dict[str, float] = field(default_factory=dict)
    constraints: List[Constraint] = field(default_factory=list)
    lower_bounds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str, objective_coeff: float = 0.0,
                     lower_bound: float = 0.0) -> None:
        """Register ``name`` with its objective coefficient and lower bound."""
        self._register(name)
        if objective_coeff:
            self.objective[name] = self.objective.get(name, 0.0) + objective_coeff
        if lower_bound:
            self.lower_bounds[name] = max(
                self.lower_bounds.get(name, 0.0), lower_bound
            )

    def maximize(self, coeffs: Mapping[str, float]) -> None:
        """Set/accumulate the (maximization) objective."""
        for v, c in coeffs.items():
            self._register(v)
            self.objective[v] = self.objective.get(v, 0.0) + c

    def add_constraint(
        self, coeffs: Mapping[str, float], bound: float, label: str = ""
    ) -> None:
        """Add ``sum(coeffs) <= bound``."""
        for v in coeffs:
            self._register(v)
        self.constraints.append(Constraint(dict(coeffs), float(bound), label))

    def set_lower_bound(self, name: str, bound: float) -> None:
        """Require ``name >= bound`` (bounds only tighten, never loosen)."""
        self._register(name)
        self.lower_bounds[name] = max(self.lower_bounds.get(name, 0.0),
                                      float(bound))

    def _register(self, name: str) -> None:
        if name not in self.objective and name not in self._order:
            self._order.append(name)
        if name in self.objective and name not in self._order:
            self._order.append(name)

    def clone(self) -> "LinearProgram":
        """Structural copy for derived problems (cheap, not a deepcopy).

        The immutable :class:`Constraint` objects are shared; the mutable
        containers are copied, so adding constraints, bounds, or objective
        terms to the clone never touches the original.
        """
        return LinearProgram(
            _order=list(self._order),
            objective=dict(self.objective),
            constraints=list(self.constraints),
            lower_bounds=dict(self.lower_bounds),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> List[str]:
        """Variable names in registration order."""
        return list(self._order)

    def num_variables(self) -> int:
        return len(self._order)

    def num_constraints(self) -> int:
        return len(self.constraints)

    # ------------------------------------------------------------------
    # Dense matrix form (for solvers)
    # ------------------------------------------------------------------
    def to_dense(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(c, A_ub, b_ub, lb)`` in variable registration order."""
        names = self.variables
        index = {v: j for j, v in enumerate(names)}
        n = len(names)
        c = np.zeros(n)
        for v, coeff in self.objective.items():
            c[index[v]] = coeff
        m = len(self.constraints)
        a = np.zeros((m, n))
        b = np.zeros(m)
        for i, con in enumerate(self.constraints):
            for v, coeff in con.coeffs.items():
                a[i, index[v]] = coeff
            b[i] = con.bound
        lb = np.array([self.lower_bounds.get(v, 0.0) for v in names])
        return c, a, b, lb

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def is_feasible(
        self, assignment: Mapping[str, float], tol: float = 1e-9
    ) -> bool:
        """Check ``assignment`` against all constraints and lower bounds."""
        for v in self.variables:
            if assignment.get(v, 0.0) < self.lower_bounds.get(v, 0.0) - tol:
                return False
        return all(c.satisfied_by(assignment, tol) for c in self.constraints)

    def objective_value(self, assignment: Mapping[str, float]) -> float:
        return float(
            sum(c * assignment.get(v, 0.0) for v, c in self.objective.items())
        )

    def pretty(self) -> str:
        """Human-readable rendering, mirroring the paper's LP listings."""
        obj = " + ".join(
            (f"{c:g}*{v}" if c != 1 else v)
            for v, c in self.objective.items()
        )
        lines = [f"maximize {obj}", "subject to"]
        for con in self.constraints:
            lhs = " + ".join(
                (f"{c:g}*{v}" if c != 1 else v)
                for v, c in con.coeffs.items()
            )
            suffix = f"    [{con.label}]" if con.label else ""
            lines.append(f"  {lhs} <= {con.bound:g}{suffix}")
        for v in self.variables:
            lb = self.lower_bounds.get(v, 0.0)
            lines.append(f"  {v} >= {lb:g}")
        return "\n".join(lines)


@dataclass(frozen=True)
class LPSolution:
    """Result of an LP solve.

    ``basis`` (when the solver provides one) describes the final simplex
    basis in a solver-defined, structure-stable encoding; feeding it back
    into :func:`repro.lp.simplex.solve_simplex` warm-starts the next solve
    of a structurally identical problem.  Backends without basis support
    leave it ``None``.
    """

    status: str                      # "optimal" | "infeasible" | "unbounded"
    values: Dict[str, float]
    objective: float
    basis: Optional[Tuple[Tuple[str, int], ...]] = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def __getitem__(self, name: str) -> float:
        return self.values[name]
