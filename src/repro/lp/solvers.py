"""Solver front-end: from-scratch simplex by default, scipy as cross-check.

``solve(lp)`` is the single entry point used by the allocation algorithms.
The default backend is the library's own dense simplex implementation;
``"revised"`` selects the sparse revised-simplex backend (same contract,
built for large instances); the scipy backend exists so tests (and
cautious users) can verify the from-scratch solvers agree on every LP the
paper's algorithms generate.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

import numpy as np

from ..obs.registry import incr, phase_timer
from .problem import LinearProgram, LPSolution
from .revised import RevisedBackend, solve_revised
from .simplex import solve_simplex

Backend = Callable[[LinearProgram], LPSolution]
BackendSpec = Union[str, Backend]

_BACKENDS: Dict[str, Backend] = {}


def register_backend(name: str, backend: Backend) -> None:
    """Register a named solver backend (mostly useful for testing)."""
    _BACKENDS[name] = backend


def resolve_backend(backend: BackendSpec) -> Tuple[Backend, str]:
    """Resolve a backend spec to ``(callable, label)``.

    ``backend`` is either a registered backend name or a callable
    ``LinearProgram -> LPSolution`` (e.g. a stateful warm-starting
    solver from :class:`repro.perf.warm.WarmLPCache`).  Callers that
    can exploit optional capabilities — :func:`repro.lp.maxmin`'s
    batched saturation probes look for a ``probe_max_values`` method —
    should resolve once and inspect the returned callable.
    """
    if callable(backend):
        return backend, getattr(backend, "__name__", "custom")
    try:
        return _BACKENDS[backend], backend
    except KeyError:
        raise ValueError(
            f"unknown LP backend {backend!r}; "
            f"available: {sorted(_BACKENDS)}"
        ) from None


def solve(lp: LinearProgram, backend: BackendSpec = "simplex") \
        -> LPSolution:
    """Solve ``lp`` with the requested backend (default: own simplex).

    ``backend`` is a registered backend name (``simplex``, ``revised``,
    ``scipy``) or a callable ``LinearProgram -> LPSolution``; callables
    flow through every allocation entry point that takes a ``backend``
    argument.
    """
    fn, label = resolve_backend(backend)
    with phase_timer("lp.solve"):
        solution = fn(lp)
    incr("lp.solves")
    incr(f"lp.solves.{label}")
    if not solution.is_optimal:
        incr(f"lp.solves.{solution.status}")
    return solution


def solve_scipy(lp: LinearProgram) -> LPSolution:
    """Solve with ``scipy.optimize.linprog`` (HiGHS)."""
    from scipy.optimize import linprog

    names = lp.variables
    if not names:
        return LPSolution("optimal", {}, 0.0)
    c, a, b, lb = lp.to_dense()
    bounds = [(float(l), None) for l in lb]
    res = linprog(
        -c,
        A_ub=a if a.size else None,
        b_ub=b if b.size else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        return LPSolution("infeasible", {}, float("nan"))
    if res.status == 3:
        return LPSolution("unbounded", {}, float("inf"))
    if res.status != 0:  # pragma: no cover - numerical trouble
        raise RuntimeError(f"scipy linprog failed: {res.message}")
    values = {v: float(res.x[j]) for j, v in enumerate(names)}
    return LPSolution("optimal", values, lp.objective_value(values))


def cross_check(lp: LinearProgram, tol: float = 1e-7) -> LPSolution:
    """Solve with both backends and assert objective agreement.

    Returns the simplex solution.  Raises ``AssertionError`` on mismatch;
    used heavily in tests to validate the from-scratch solver.
    """
    ours = solve(lp, "simplex")
    theirs = solve(lp, "scipy")
    if ours.status != theirs.status:
        raise AssertionError(
            f"backend status mismatch: simplex={ours.status} "
            f"scipy={theirs.status}"
        )
    if ours.is_optimal and abs(ours.objective - theirs.objective) > tol:
        raise AssertionError(
            f"backend objective mismatch: simplex={ours.objective} "
            f"scipy={theirs.objective}"
        )
    return ours


register_backend("simplex", solve_simplex)
register_backend("scipy", solve_scipy)
# A RevisedBackend *instance* (not the bare function) so capability
# probes — maxmin's batched saturation solves — find probe_max_values.
register_backend("revised", RevisedBackend())
