"""A from-scratch two-phase primal simplex solver.

The paper notes that its allocation LPs "may be solved with the Simplex
algorithm"; this module implements exactly that, so the reproduction does
not depend on an external optimizer (scipy is used only as a cross-check in
the test suite).

The solver handles the standard form produced by
:class:`repro.lp.problem.LinearProgram`:

    maximize   c' x
    s.t.       A x <= b,   x >= lb  (>= 0 after shifting)

Lower bounds are eliminated by the substitution ``y = x - lb``; negative
right-hand sides after the shift (possible when basic shares exceed slack)
are handled by a phase-1 auxiliary problem with artificial variables.
Bland's anti-cycling rule governs pivot selection, which also makes the
returned vertex deterministic.

**Warm starts.**  Every optimal solve returns its final basis as a tuple
of structure-stable column labels (``("v", j)`` for structural columns,
``("s", i)`` / ``("g", i)`` for the slack / surplus of constraint row
``i``); :func:`solve_simplex` accepts such a basis as ``start_basis`` and,
when it maps cleanly onto the new problem and yields a feasible point,
skips phase 1 entirely and runs phase 2 from there.  Successive LPs with
identical structure but perturbed bounds/rows — the dynamic experiment's
per-churn-event re-solves — then finish in a handful of pivots.  Any
mapping failure (shape change, flipped row sense, singular or infeasible
basis) falls back to the cold two-phase path, so a warm start never
changes the *status* of a solve.  The pivot inner loops (reduced costs,
ratio test, row elimination) are vectorized over numpy arrays and remain
bit-identical to the scalar reference loops they replaced.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

import numpy as np

from ..obs.events import emit_event
from ..obs.registry import incr, phase_timer
from ..obs.trace import current_span_id, span, tag_current
from .problem import LinearProgram, LPSolution

_EPS = 1e-9

_LOG = logging.getLogger(__name__)

#: Structure-stable basis encoding: one ``(kind, index)`` label per row.
Basis = Tuple[Tuple[str, int], ...]


def solve_simplex(
    lp: LinearProgram, start_basis: Optional[Basis] = None
) -> LPSolution:
    """Solve ``lp`` with the two-phase simplex method.

    Returns an :class:`LPSolution` whose ``status`` is one of ``optimal``,
    ``infeasible`` or ``unbounded``; optimal solutions carry the final
    simplex basis for warm-starting a later, structurally identical solve
    (pass it back as ``start_basis``).
    """
    names = lp.variables
    if not names:
        return LPSolution("optimal", {}, 0.0, basis=())
    with phase_timer("lp.simplex.solve"), \
            span("lp.solve", vars=len(names),
                 rows=len(lp.constraints),
                 warm=start_basis is not None,
                 backend="simplex") as solve_span:
        c, a, b, lb = lp.to_dense()

        # Shift out the lower bounds: x = y + lb with y >= 0.
        b_shift = b - a @ lb
        status, y, _, pivots, basis = _simplex_leq(
            c, a, b_shift, start_basis
        )
        solve_span.tag(status=status, pivots=pivots)
    incr("lp.simplex.solves")
    incr("lp.simplex.pivots", pivots)
    if status != "optimal":
        return LPSolution(status, {}, float("nan"))
    x = y + lb
    values = {v: float(x[j]) for j, v in enumerate(names)}
    return LPSolution(
        "optimal", values, lp.objective_value(values), basis=basis
    )


def _simplex_leq(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    start_basis: Optional[Basis] = None,
) -> Tuple[str, Optional[np.ndarray], float, int, Optional[Basis]]:
    """Maximize ``c'y`` s.t. ``A y <= b``, ``y >= 0`` (b may be negative).

    Returns ``(status, y, objective, pivots, basis)``; ``pivots`` totals
    the phase-1 and phase-2 simplex iterations for profiling and ``basis``
    is the final basis encoded as structure-stable labels (optimal only).
    """
    pivots = 0
    m, n = a.shape
    if m == 0:
        # No constraints: optimum is 0 at origin unless some c_j > 0, in
        # which case the problem is unbounded.
        if np.any(c > _EPS):
            return "unbounded", None, float("inf"), pivots, None
        return "optimal", np.zeros(n), 0.0, pivots, ()

    # Convert rows with negative rhs to >= rows by negation, then build the
    # tableau with slack variables for <= rows and surplus + artificial
    # variables for >= rows.
    a = a.copy().astype(float)
    b = b.copy().astype(float)
    ge_rows = b < -_EPS
    a[ge_rows] *= -1.0
    b[ge_rows] *= -1.0
    # Now every row is  a_i y (<= or >=) b_i with b_i >= 0; ge_rows marks >=.

    num_slack = int(np.sum(~ge_rows))
    num_surplus = int(np.sum(ge_rows))
    num_art = num_surplus
    total = n + num_slack + num_surplus + num_art

    tableau = np.zeros((m, total))
    tableau[:, :n] = a
    rhs = b.copy()
    basis = np.empty(m, dtype=int)

    #: Structure-stable label per column; artificials are never exported.
    col_label: List[Tuple[str, int]] = [("v", j) for j in range(n)]
    col_label += [("?", k) for k in range(total - n)]

    slack_j = n
    surplus_j = n + num_slack
    art_j = n + num_slack + num_surplus
    art_cols = []
    for i in range(m):
        if ge_rows[i]:
            tableau[i, surplus_j] = -1.0
            tableau[i, art_j] = 1.0
            col_label[surplus_j] = ("g", i)
            col_label[art_j] = ("a", i)
            basis[i] = art_j
            art_cols.append(art_j)
            surplus_j += 1
            art_j += 1
        else:
            tableau[i, slack_j] = 1.0
            col_label[slack_j] = ("s", i)
            basis[i] = slack_j
            slack_j += 1

    art_start = n + num_slack + num_surplus

    # One-time dust sweep of the freshly built system; _pivot then only
    # sweeps the rows it modifies, which stays equivalent to sweeping the
    # whole tableau after every pivot.
    tableau[np.abs(tableau) < 1e-12] = 0.0
    rhs[np.abs(rhs) < 1e-12] = 0.0

    # Pristine copy of the augmented system: the final solution is
    # recomputed from it so the reported values depend only on the final
    # basis, not on the pivot path taken to reach it (a warm start and a
    # cold solve that land on the same basis report bitwise-equal
    # values).
    a0 = tableau.copy()
    b0 = rhs.copy()

    warm_ok = False
    if start_basis is not None:
        incr("perf.lp.warm.attempts")
        installed, stale_reason = _install_basis(
            a0, b0, col_label, start_basis, art_start
        )
        if installed is not None:
            tableau, rhs, basis = installed
            warm_ok = True
            incr("perf.lp.warm.installed")
        else:
            _note_stale_basis(stale_reason, len(start_basis), m)

    if not warm_ok and art_cols:
        # Phase 1: minimize sum of artificials == maximize -sum.
        obj1 = np.zeros(total)
        for j in art_cols:
            obj1[j] = -1.0
        status, iters = _run_simplex(tableau, rhs, obj1, basis)
        pivots += iters
        if status == "unbounded":  # pragma: no cover - cannot happen
            return "infeasible", None, float("nan"), pivots, None
        phase1_obj = sum(
            rhs[i] for i in range(m) if basis[i] >= art_start
        )
        if phase1_obj > 1e-7:
            return "infeasible", None, float("nan"), pivots, None
        _drive_out_artificials(tableau, rhs, basis, art_start)

    # Phase 2: original objective, artificial columns frozen at zero
    # (masked out of pivot selection so they can never re-enter).
    obj2 = np.zeros(total)
    obj2[:n] = c
    limit = art_start if art_cols else total
    status, iters = _run_simplex(tableau, rhs, obj2, basis,
                                 forbidden_from=limit)
    pivots += iters
    if status == "unbounded":
        return "unbounded", None, float("inf"), pivots, None

    y = np.zeros(total)
    basis_matrix = a0[:, basis]
    try:
        y_basic = np.linalg.solve(basis_matrix, b0)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        y_basic = rhs.copy()
    y_basic[np.abs(y_basic) < 1e-12] = 0.0
    y[basis] = y_basic
    final: Basis = tuple(col_label[j] for j in basis)
    return "optimal", y[:n], float(obj2 @ y), pivots, final


def _note_stale_basis(stale_reason: str, nlabels: int, m: int) -> None:
    """Record a rejected warm-start basis (counters, span tag, event).

    Shared by the dense and revised backends so the
    ``lp.warm.stale_basis.<reason>`` counter taxonomy and the
    span-attributed fallback events are identical regardless of which
    solver rejected the basis.
    """
    incr("perf.lp.warm.fallbacks")
    incr("lp.warm.stale_basis")
    incr(f"lp.warm.stale_basis.{stale_reason}")
    # Attribute the fallback to the LP-solve span it happened inside
    # (and, transitively, the epoch/probe above it), so a stale basis
    # in a trace points at a specific solve rather than a run-wide
    # counter.
    trigger = current_span_id()
    tag_current(stale_basis=stale_reason)
    if trigger is not None:
        emit_event(
            "lp.warm.stale_basis",
            reason=stale_reason,
            span=trigger,
        )
    _LOG.debug(
        "stale warm basis (%s): %d labels for %d rows; "
        "falling back to cold two-phase solve",
        stale_reason, nlabels, m,
    )


def _install_basis(
    a0: np.ndarray,
    b0: np.ndarray,
    col_label: List[Tuple[str, int]],
    start_basis: Basis,
    art_start: int,
) -> Tuple[Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]], str]:
    """Build the tableau state for ``start_basis``.

    Returns ``(state, reason)``: ``state`` is ``(tableau, rhs, basis)``
    on success and ``None`` on failure, in which case ``reason`` is a
    short staleness classifier (``row-count``, ``unknown-label``,
    ``duplicate-column``, ``singular``, ``infeasible-point``,
    ``ill-conditioned``) for the ``lp.warm.stale_basis`` counters.

    The basis must have one label per row, every label must resolve to a
    non-artificial column of the current layout, the basis matrix must be
    nonsingular, and the induced basic point must be feasible
    (``rhs >= 0``).  The whole state is produced by one factorized solve
    against the pristine system (``B^-1 [A | b]``) instead of a pivot
    sequence — much cheaper than the phase-1/phase-2 pivots it replaces.
    """
    m = a0.shape[0]
    if len(start_basis) != m:
        return None, "row-count"
    index = {label: j for j, label in enumerate(col_label)}
    cols = []
    for label in start_basis:
        j = index.get(tuple(label))
        if j is None or j >= art_start:
            return None, "unknown-label"
        cols.append(j)
    if len(set(cols)) != m:
        return None, "duplicate-column"
    basis_matrix = a0[:, cols]
    try:
        solved = np.linalg.solve(
            basis_matrix, np.column_stack([a0, b0])
        )
    except np.linalg.LinAlgError:
        return None, "singular"
    tableau = solved[:, :-1]
    rhs = solved[:, -1]
    if not np.all(np.isfinite(rhs)) or np.any(rhs < -1e-7):
        return None, "infeasible-point"
    # Reject ill-conditioned bases: the basis columns of B^-1 A must
    # reduce to the identity or later sign tests cannot be trusted.
    eye = np.eye(m)
    if np.abs(tableau[:, cols] - eye).max() > 1e-7:
        return None, "ill-conditioned"
    tableau[:, cols] = eye
    # Tiny negative dust from the reduction would poison the ratio test.
    rhs[rhs < 0.0] = 0.0
    tableau[np.abs(tableau) < 1e-12] = 0.0
    rhs[np.abs(rhs) < 1e-12] = 0.0
    return (tableau, rhs, np.asarray(cols, dtype=int)), ""


def _run_simplex(
    tableau: np.ndarray,
    rhs: np.ndarray,
    obj: np.ndarray,
    basis: np.ndarray,
    forbidden_from: Optional[int] = None,
) -> Tuple[str, int]:
    """Run primal simplex pivots in place.

    Returns ``('optimal'|'unbounded', pivot_count)``.  ``tableau`` is the
    m x total constraint matrix, ``rhs`` the m-vector, ``obj`` the
    maximization objective over all columns, ``basis`` the current basic
    column per row.  Bland's rule (smallest eligible index) prevents
    cycling.  Columns with index >= ``forbidden_from`` never enter.

    The entering-column scan and ratio test are vectorized; the tie-break
    semantics (Bland's rule within an ``_EPS`` band of the best ratio)
    exactly mirror the scalar reference loop.
    """
    m, total = tableau.shape
    limit = forbidden_from if forbidden_from is not None else total
    max_iters = 500 * (m + total + 1)

    for iteration in range(max_iters):
        # Reduced costs: z_j - c_j using current basis.
        cb = obj[basis]
        reduced = obj - cb @ tableau
        reduced[basis] = 0.0

        eligible = np.flatnonzero(reduced[:limit] > _EPS)
        if eligible.size == 0:
            return "optimal", iteration
        entering = int(eligible[0])

        # Ratio test with Bland's rule on ties (smallest basis index).
        column = tableau[:, entering]
        candidates = np.flatnonzero(column > _EPS)
        if candidates.size == 0:
            return "unbounded", iteration
        ratios = rhs[candidates] / column[candidates]
        best_ratio = np.inf
        leaving = -1
        for k in range(candidates.size):
            i = int(candidates[k])
            ratio = ratios[k]
            if ratio < best_ratio - _EPS or (
                abs(ratio - best_ratio) <= _EPS
                and (leaving < 0 or basis[i] < basis[leaving])
            ):
                best_ratio = ratio
                leaving = i

        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering
    raise RuntimeError("simplex did not converge (cycling safeguard hit)")


def _pivot(tableau: np.ndarray, rhs: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col), in place (vectorized rank-1).

    Numerical dust (|x| < 1e-12) is swept to exact zero, but only on the
    rows this pivot modified: untouched rows were swept when they were
    last written (or are pristine build output, swept once up front in
    ``_simplex_leq``), so the result is identical to a full-tableau sweep
    at a fraction of the cost.
    """
    piv = tableau[row, col]
    prow = tableau[row]
    prow /= piv
    rhs[row] /= piv
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    touched = np.abs(factors) > _EPS
    if touched.any():
        block = tableau[touched]
        block -= factors[touched, None] * prow
        block[np.abs(block) < 1e-12] = 0.0
        tableau[touched] = block
        rvals = rhs[touched]
        rvals -= factors[touched] * rhs[row]
        rvals[np.abs(rvals) < 1e-12] = 0.0
        rhs[touched] = rvals
    prow[np.abs(prow) < 1e-12] = 0.0
    if abs(rhs[row]) < 1e-12:
        rhs[row] = 0.0


def _drive_out_artificials(
    tableau: np.ndarray, rhs: np.ndarray, basis: np.ndarray, art_start: int
) -> None:
    """Pivot basic artificial variables (at value 0) out of the basis."""
    m, total = tableau.shape
    for i in range(m):
        if basis[i] >= art_start:
            for j in range(art_start):
                if abs(tableau[i, j]) > _EPS:
                    _pivot(tableau, rhs, i, j)
                    basis[i] = j
                    break
            # If the whole row is zero the constraint was redundant; the
            # artificial stays basic at zero, which is harmless because its
            # column is excluded from phase-2 pivoting.
