"""A from-scratch two-phase primal simplex solver.

The paper notes that its allocation LPs "may be solved with the Simplex
algorithm"; this module implements exactly that, so the reproduction does
not depend on an external optimizer (scipy is used only as a cross-check in
the test suite).

The solver handles the standard form produced by
:class:`repro.lp.problem.LinearProgram`:

    maximize   c' x
    s.t.       A x <= b,   x >= lb  (>= 0 after shifting)

Lower bounds are eliminated by the substitution ``y = x - lb``; negative
right-hand sides after the shift (possible when basic shares exceed slack)
are handled by a phase-1 auxiliary problem with artificial variables.
Bland's anti-cycling rule governs pivot selection, which also makes the
returned vertex deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..obs.registry import incr, phase_timer
from .problem import LinearProgram, LPSolution

_EPS = 1e-9


def solve_simplex(lp: LinearProgram) -> LPSolution:
    """Solve ``lp`` with the two-phase simplex method.

    Returns an :class:`LPSolution` whose ``status`` is one of ``optimal``,
    ``infeasible`` or ``unbounded``.
    """
    names = lp.variables
    if not names:
        return LPSolution("optimal", {}, 0.0)
    with phase_timer("lp.simplex.solve"):
        c, a, b, lb = lp.to_dense()

        # Shift out the lower bounds: x = y + lb with y >= 0.
        b_shift = b - a @ lb
        status, y, _, pivots = _simplex_leq(c, a, b_shift)
    incr("lp.simplex.solves")
    incr("lp.simplex.pivots", pivots)
    if status != "optimal":
        return LPSolution(status, {}, float("nan"))
    x = y + lb
    values = {v: float(x[j]) for j, v in enumerate(names)}
    return LPSolution("optimal", values, lp.objective_value(values))


def _simplex_leq(
    c: np.ndarray, a: np.ndarray, b: np.ndarray
) -> Tuple[str, Optional[np.ndarray], float, int]:
    """Maximize ``c'y`` s.t. ``A y <= b``, ``y >= 0`` (b may be negative).

    Returns ``(status, y, objective, pivots)``; ``pivots`` totals the
    phase-1 and phase-2 simplex iterations for profiling.
    """
    pivots = 0
    m, n = a.shape
    if m == 0:
        # No constraints: optimum is 0 at origin unless some c_j > 0, in
        # which case the problem is unbounded.
        if np.any(c > _EPS):
            return "unbounded", None, float("inf"), pivots
        return "optimal", np.zeros(n), 0.0, pivots

    # Convert rows with negative rhs to >= rows by negation, then build the
    # tableau with slack variables for <= rows and surplus + artificial
    # variables for >= rows.
    a = a.copy().astype(float)
    b = b.copy().astype(float)
    ge_rows = b < -_EPS
    a[ge_rows] *= -1.0
    b[ge_rows] *= -1.0
    # Now every row is  a_i y (<= or >=) b_i with b_i >= 0; ge_rows marks >=.

    num_slack = int(np.sum(~ge_rows))
    num_surplus = int(np.sum(ge_rows))
    num_art = num_surplus
    total = n + num_slack + num_surplus + num_art

    tableau = np.zeros((m, total))
    tableau[:, :n] = a
    rhs = b.copy()
    basis = np.empty(m, dtype=int)

    slack_j = n
    surplus_j = n + num_slack
    art_j = n + num_slack + num_surplus
    art_cols = []
    for i in range(m):
        if ge_rows[i]:
            tableau[i, surplus_j] = -1.0
            tableau[i, art_j] = 1.0
            basis[i] = art_j
            art_cols.append(art_j)
            surplus_j += 1
            art_j += 1
        else:
            tableau[i, slack_j] = 1.0
            basis[i] = slack_j
            slack_j += 1

    if art_cols:
        # Phase 1: minimize sum of artificials == maximize -sum.
        obj1 = np.zeros(total)
        for j in art_cols:
            obj1[j] = -1.0
        status, iters = _run_simplex(tableau, rhs, obj1, basis)
        pivots += iters
        if status == "unbounded":  # pragma: no cover - cannot happen
            return "infeasible", None, float("nan"), pivots
        art_value = -sum(
            rhs[i] for i in range(m) if basis[i] in set(art_cols)
        )
        phase1_obj = sum(
            rhs[i] for i in range(m) if basis[i] >= n + num_slack + num_surplus
        )
        if phase1_obj > 1e-7:
            return "infeasible", None, float("nan"), pivots
        _drive_out_artificials(tableau, rhs, basis, n + num_slack + num_surplus)

    # Phase 2: original objective, artificial columns frozen at zero.
    obj2 = np.zeros(total)
    obj2[:n] = c
    if art_cols:
        # Forbid artificials from re-entering by pricing them at -inf
        # (implemented by masking their columns out of pivot selection).
        art_start = n + num_slack + num_surplus
    else:
        art_start = total
    status, iters = _run_simplex(tableau, rhs, obj2, basis,
                                 forbidden_from=art_start)
    pivots += iters
    if status == "unbounded":
        return "unbounded", None, float("inf"), pivots

    y = np.zeros(total)
    for i in range(m):
        y[basis[i]] = rhs[i]
    return "optimal", y[:n], float(obj2 @ y), pivots


def _run_simplex(
    tableau: np.ndarray,
    rhs: np.ndarray,
    obj: np.ndarray,
    basis: np.ndarray,
    forbidden_from: Optional[int] = None,
) -> Tuple[str, int]:
    """Run primal simplex pivots in place.

    Returns ``('optimal'|'unbounded', pivot_count)``.  ``tableau`` is the
    m x total constraint matrix, ``rhs`` the m-vector, ``obj`` the
    maximization objective over all columns, ``basis`` the current basic
    column per row.  Bland's rule (smallest eligible index) prevents
    cycling.  Columns with index >= ``forbidden_from`` never enter.
    """
    m, total = tableau.shape
    limit = forbidden_from if forbidden_from is not None else total
    max_iters = 500 * (m + total + 1)

    for iteration in range(max_iters):
        # Reduced costs: z_j - c_j using current basis.
        cb = obj[basis]
        reduced = obj - cb @ tableau
        reduced[basis] = 0.0

        entering = -1
        for j in range(limit):
            if reduced[j] > _EPS:
                entering = j
                break
        if entering < 0:
            return "optimal", iteration

        # Ratio test with Bland's rule on ties (smallest basis index).
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            coeff = tableau[i, entering]
            if coeff > _EPS:
                ratio = rhs[i] / coeff
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return "unbounded", iteration

        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering
    raise RuntimeError("simplex did not converge (cycling safeguard hit)")


def _pivot(tableau: np.ndarray, rhs: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col), in place."""
    piv = tableau[row, col]
    tableau[row] /= piv
    rhs[row] /= piv
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _EPS:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]
    # Clean numerical dust so later sign tests stay crisp.
    tableau[np.abs(tableau) < 1e-12] = 0.0
    rhs[np.abs(rhs) < 1e-12] = 0.0


def _drive_out_artificials(
    tableau: np.ndarray, rhs: np.ndarray, basis: np.ndarray, art_start: int
) -> None:
    """Pivot basic artificial variables (at value 0) out of the basis."""
    m, total = tableau.shape
    for i in range(m):
        if basis[i] >= art_start:
            for j in range(art_start):
                if abs(tableau[i, j]) > _EPS:
                    _pivot(tableau, rhs, i, j)
                    basis[i] = j
                    break
            # If the whole row is zero the constraint was redundant; the
            # artificial stays basic at zero, which is harmless because its
            # column is excluded from phase-2 pivoting.
