"""Lexicographic max-min refinement among LP optima.

The two-tier baseline's worked example in Sec. III allocates (3B/8, 3B/8)
to the two subflows of F2 rather than, say, (B/2, B/4): among all
allocations maximizing total single-hop throughput, the paper's two-tier
splits leftover capacity in a max-min fair way.  This module implements the
standard progressive-filling LP procedure:

1.  Solve the throughput-maximizing LP; record the optimum T*.
2.  Add the constraint  "objective == T*"  (as two inequalities).
3.  Repeatedly maximize the minimum normalized share among still-free
    variables; freeze the variables whose shares cannot be raised further;
    repeat until all variables are frozen.

The same machinery also yields *pure* weighted max-min allocations (without
step 1/2) — used for comparison strategies and property tests.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..obs.registry import incr
from ..obs.trace import span
from .problem import LinearProgram, LPSolution
from .solvers import resolve_backend, solve

_TOL = 0.0


def lexicographic_maxmin(
    lp: LinearProgram,
    weights: Optional[Mapping[str, float]] = None,
    fix_objective: bool = True,
    backend: str = "simplex",
) -> LPSolution:
    """Max-min-refined solution of ``lp``.

    When ``fix_objective`` is True (the two-tier semantics), the original
    objective value is first pinned at its optimum; the lexicographic
    max-min then only arbitrates between equally-optimal vertices.  When
    False, a pure weighted max-min allocation over the feasible region is
    computed.

    ``weights`` normalizes shares (share/weight comparisons); defaults to 1.
    """
    with span("lp.maxmin", vars=len(lp.variables),
              fix_objective=fix_objective) as maxmin_span:
        base = solve(lp, backend)
        if not base.is_optimal:
            maxmin_span.tag(status=base.status)
            return base
        names = lp.variables
        w = {v: float((weights or {}).get(v, 1.0)) for v in names}
        for v, wv in w.items():
            if wv <= 0:
                raise ValueError(
                    f"weight for {v!r} must be positive, got {wv}"
                )

        work = lp.clone()
        if fix_objective and lp.objective:
            # objective >= T*  encoded as  -objective <= -T*.
            work.add_constraint(
                {v: -c for v, c in lp.objective.items()},
                -base.objective + _TOL,
                label="pin-optimal-total",
            )

        frozen: Dict[str, float] = {}
        remaining = list(names)
        guard = len(names) + 2
        rounds = 0
        while remaining and guard:
            guard -= 1
            rounds += 1
            level, values = _raise_floor(work, remaining, w, frozen,
                                         backend)
            if level is None:
                # No further improvement possible; freeze everything as-is.
                for v in remaining:
                    frozen[v] = values.get(v, frozen.get(v, 0.0))
                break
            newly = _saturated(work, remaining, w, frozen, level, backend,
                               hint=values)
            for v in newly:
                frozen[v] = level * w[v]
            remaining = [v for v in remaining if v not in newly]

        maxmin_span.tag(status="optimal", rounds=rounds)
        solution = dict(frozen)
    return LPSolution("optimal", solution, lp.objective_value(solution))


def _fix_value(lp: LinearProgram, v: str, val: float) -> None:
    """Pin ``x_v == val``: a lower *bound* plus one upper constraint.

    The bound (rather than a ``-x <= -val`` row) keeps the standard-form
    rhs non-negative after the solver shifts bounds out, so pinning
    frozen variables never introduces artificial variables — probe LPs
    start from the feasible slack basis and skip simplex phase 1.
    """
    lp.set_lower_bound(v, max(val - _TOL, 0.0))
    lp.add_constraint({v: 1.0}, val + _TOL, label=f"fix-hi:{v}")


def _raise_floor(
    lp: LinearProgram,
    free: List[str],
    w: Mapping[str, float],
    frozen: Mapping[str, float],
    backend: str,
):
    """Maximize t s.t. x_v >= t*w_v for free v, x_v == frozen_v otherwise."""
    aux = lp.clone()
    t = "__maxmin_t__"
    aux.objective = {t: 1.0}
    aux._order = [v for v in aux._order] + ([t] if t not in aux._order else [])
    for v in free:
        # t*w_v - x_v <= 0
        aux.add_constraint({t: w[v], v: -1.0}, 0.0, label=f"floor:{v}")
    for v, val in frozen.items():
        _fix_value(aux, v, val)
    sol = solve(aux, backend)
    if not sol.is_optimal:
        return None, {}
    return sol.values.get(t, 0.0), sol.values


def _saturated(
    lp: LinearProgram,
    free: List[str],
    w: Mapping[str, float],
    frozen: Mapping[str, float],
    level: float,
    backend: str,
    hint: Optional[Mapping[str, float]] = None,
) -> List[str]:
    """Free variables that cannot exceed ``level * w`` with the floor held.

    ``hint`` is any feasible point of the probe region (the floor-raise
    solution): a variable it already places strictly above its floor is
    witnessed unsaturated, so its probe LP is skipped.  The witness margin
    is 10x the probe tolerance, so skipping never disagrees with what the
    probe (a maximization, whose optimum dominates the witness) would
    conclude.
    """
    # All probes this round share one constraint system; only the
    # objective changes between solves.
    aux = lp.clone()
    for v in free:
        aux.set_lower_bound(v, max(level * w[v] - _TOL, 0.0))
    for v, val in frozen.items():
        _fix_value(aux, v, val)
    targets = [
        v for v in free
        if hint is None or hint.get(v, 0.0) <= level * w[v] + 1e-6
    ]
    stuck: List[str] = []
    fn, _ = resolve_backend(backend)
    probe_batch = getattr(fn, "probe_max_values", None)
    if probe_batch is not None:
        # Batched probes: one standard form + one phase 1 shared across
        # the whole round; each probe continues from the previous
        # probe's optimal basis.  A ``None`` maximum is a non-optimal
        # probe, treated exactly as the per-probe loop treats one.
        incr("lp.maxmin.batch_probes")
        maxima = probe_batch(aux, targets)
        for target in targets:
            peak = maxima[target]
            if peak is None or peak <= level * w[target] + 1e-7:
                stuck.append(target)
    else:
        for target in targets:
            aux.objective = {target: 1.0}
            sol = solve(aux, backend)
            if (not sol.is_optimal
                    or sol.values.get(target, 0.0)
                    <= level * w[target] + 1e-7):
                stuck.append(target)
    # At least one variable must freeze per round to guarantee progress.
    if not stuck and free:
        stuck = [min(free)]
    return stuck
