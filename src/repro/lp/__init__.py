"""Linear programming: problem IR, from-scratch simplex, max-min refinement."""

from .problem import Constraint, LinearProgram, LPSolution
from .revised import RevisedBackend, solve_revised
from .simplex import solve_simplex
from .solvers import (cross_check, register_backend, resolve_backend,
                      solve, solve_scipy)
from .sparse import CSCMatrix, CSRMatrix, SparseLP
from .maxmin import lexicographic_maxmin

__all__ = [
    "Constraint",
    "LinearProgram",
    "LPSolution",
    "CSRMatrix",
    "CSCMatrix",
    "SparseLP",
    "solve_simplex",
    "solve_revised",
    "RevisedBackend",
    "solve",
    "solve_scipy",
    "cross_check",
    "register_backend",
    "resolve_backend",
    "lexicographic_maxmin",
]
