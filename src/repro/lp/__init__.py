"""Linear programming: problem IR, from-scratch simplex, max-min refinement."""

from .problem import Constraint, LinearProgram, LPSolution
from .simplex import solve_simplex
from .solvers import cross_check, register_backend, solve, solve_scipy
from .maxmin import lexicographic_maxmin

__all__ = [
    "Constraint",
    "LinearProgram",
    "LPSolution",
    "solve_simplex",
    "solve",
    "solve_scipy",
    "cross_check",
    "register_backend",
    "lexicographic_maxmin",
]
