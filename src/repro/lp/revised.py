"""Revised simplex over sparse clique-constraint matrices.

The dense tableau solver (:mod:`repro.lp.simplex`) carries the full
``m x (n + slacks)`` matrix through every pivot; at allocation-LP sizes
the tableau is overwhelmingly zero (clique rows touch only their member
flows, the max-min ladder's floor rows carry two nonzeros) and the
tableau update dominates every benchmarked profile.  This module keeps
the constraint matrix in the CSR/CSC form of :mod:`repro.lp.sparse` and
maintains only a factorized basis:

* **Basis inverse** — an LU factorization (``scipy.sparse.linalg.splu``
  when scipy is importable, a dense-numpy fallback otherwise) plus a
  product-form eta file; the file is folded into a fresh factorization
  every ``REFACTOR_EVERY`` pivots, which also re-derives the basic
  solution from pristine data and so bounds numerical drift.
* **Pricing** — Dantzig's rule (most positive reduced cost, smallest
  column index on ties) with an automatic switch to Bland's rule after a
  run of degenerate pivots, so termination is guaranteed without giving
  up the fast path.  The ratio test mirrors the dense solver's
  semantics: minimum ratio, ties within an ``_EPS`` band broken by the
  smallest basis column index.
* **Determinism** — identical inputs produce identical pivot sequences
  and therefore bitwise-identical results; the final solution is
  recomputed from the final basis against the pristine system (exactly
  like the dense solver's basis-pure recompute), so any path that lands
  on a given basis reports the same values.
* **Standard form** — byte-compatible with the dense solver: the same
  lower-bound shift, the same slack/surplus/artificial column layout,
  and the same structure-stable :data:`~repro.lp.simplex.Basis` labels,
  so a basis produced by either backend warm-starts the other and
  :class:`repro.perf.warm.WarmLPCache` works unchanged.
* **Batched probes** — :meth:`RevisedBackend.probe_max_values` solves a
  family of LPs that differ only in their objective (the max-min
  ladder's per-variable saturation probes) against one shared
  factorization: feasibility is established once and each probe
  continues from the previous probe's optimal basis.

Status semantics (``optimal`` / ``infeasible`` / ``unbounded``) and the
phase-1 infeasibility threshold match the dense solver exactly, so the
two backends agree on every status the differential suite checks —
including the one-ulp borderline instances in ``tests/regressions/``.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.registry import incr, phase_timer
from ..obs.trace import span
from .problem import LinearProgram, LPSolution
from .simplex import Basis, _note_stale_basis
from .sparse import CSCMatrix, SparseLP

__all__ = ["BasisFactors", "RevisedBackend", "solve_revised"]

_EPS = 1e-9
#: Pivots between basis refactorizations (eta-file length bound).
REFACTOR_EVERY = 64
#: Consecutive degenerate pivots before pricing falls back to Bland.
_DEGENERATE_SWITCH = 40

_LOG = logging.getLogger(__name__)

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.sparse import csc_matrix as _scipy_csc
    from scipy.sparse.linalg import splu as _scipy_splu
    _HAVE_SPLU = True
except Exception:  # pragma: no cover - scipy is a declared dependency
    _HAVE_SPLU = False


class BasisFactors:
    """A factorized basis matrix with a product-form eta file.

    ``ftran(v)`` solves ``B x = v`` and ``btran(v)`` solves
    ``B^T x = v`` where ``B`` is the matrix passed to the constructor
    with every :meth:`update` applied on top: ``update(r, w)`` replaces
    basis column ``r`` by the column whose forward-transformed image is
    ``w`` (``w = ftran(new_column)`` computed *before* the update, i.e.
    the simplex direction vector).  Updates append eta vectors; call
    sites should rebuild via a fresh ``BasisFactors`` once
    :attr:`needs_refactor` turns true — the hypothesis suite pins the
    drift/refactorization behaviour against dense ``numpy`` solves.
    """

    def __init__(self, matrix, refactor_every: int = REFACTOR_EVERY)\
            -> None:
        matrix = np.asarray(matrix, dtype=float) \
            if not (_HAVE_SPLU and hasattr(matrix, "tocsc")) else matrix
        self.m = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("basis matrix must be square")
        self.refactor_every = int(refactor_every)
        self._etas: List[Tuple[int, np.ndarray]] = []
        if _HAVE_SPLU:
            sparse = matrix if hasattr(matrix, "tocsc") \
                else _scipy_csc(matrix)
            self._lu = _scipy_splu(sparse.tocsc())
            self._inv = None
        else:  # dense-numpy gate: correct, O(m^2) per solve
            self._lu = None
            self._inv = np.linalg.inv(matrix)

    @property
    def updates(self) -> int:
        return len(self._etas)

    @property
    def needs_refactor(self) -> bool:
        return len(self._etas) >= self.refactor_every

    def _base_solve(self, v: np.ndarray, trans: bool) -> np.ndarray:
        if self._lu is not None:
            return self._lu.solve(v, trans="T" if trans else "N")
        inv = self._inv.T if trans else self._inv
        return inv @ v

    def ftran(self, v: np.ndarray) -> np.ndarray:
        """Solve ``B x = v`` (forward transformation)."""
        x = self._base_solve(np.asarray(v, dtype=float), trans=False)
        for r, w in self._etas:
            xr = x[r] / w[r]
            if xr != 0.0:
                x = x - w * xr
            x[r] = xr
        return x

    def btran(self, v: np.ndarray) -> np.ndarray:
        """Solve ``B^T x = v`` (backward transformation)."""
        x = np.asarray(v, dtype=float).copy()
        for r, w in reversed(self._etas):
            xr = (x[r] - (w @ x - w[r] * x[r])) / w[r]
            x[r] = xr
        return self._base_solve(x, trans=True)

    def update(self, r: int, w: np.ndarray) -> None:
        """Replace basis column ``r``; ``w`` is the pre-update ftran of
        the incoming column (the simplex direction vector)."""
        if abs(w[r]) <= 0.0:
            raise np.linalg.LinAlgError(
                "singular eta update (zero pivot element)"
            )
        self._etas.append((int(r), np.asarray(w, dtype=float).copy()))


class _StandardForm:
    """The dense solver's standard form, column-sparse.

    Column layout, labels, and the lower-bound shift are identical to
    :func:`repro.lp.simplex._simplex_leq`: structural columns first,
    then one slack per ``<=`` row, one surplus and one artificial per
    negated (``>=``) row, in row order.
    """

    def __init__(self, sp: SparseLP) -> None:
        self.sp = sp
        a, b, lb = sp.a, sp.b, sp.lb
        self.m, self.n = a.shape
        b_shift = b - a.matvec(lb)
        ge = b_shift < -_EPS
        sign = np.where(ge, -1.0, 1.0)
        self.rhs0 = b_shift * sign
        self.ge_rows = ge

        # Signed structural columns (CSC for pricing and gathers).
        csc = a.to_csc()
        self.csc = CSCMatrix(csc.num_rows, csc.num_cols, csc.indptr,
                             csc.indices, csc.data * sign[csc.indices])

        num_slack = int(np.sum(~ge))
        num_surplus = int(np.sum(ge))
        num_art = num_surplus
        n = self.n
        self.total = n + num_slack + num_surplus + num_art
        self.art_start = n + num_slack + num_surplus

        self.col_label: List[Tuple[str, int]] = [
            ("v", j) for j in range(n)
        ] + [("?", k) for k in range(self.total - n)]
        self.unit_row = np.zeros(self.total - n, dtype=np.int64)
        self.unit_sign = np.zeros(self.total - n)
        self.initial_basis = np.empty(self.m, dtype=np.int64)
        self.art_cols: List[int] = []

        slack_j, surplus_j, art_j = n, n + num_slack, self.art_start
        for i in range(self.m):
            if ge[i]:
                self.unit_row[surplus_j - n] = i
                self.unit_sign[surplus_j - n] = -1.0
                self.col_label[surplus_j] = ("g", i)
                self.unit_row[art_j - n] = i
                self.unit_sign[art_j - n] = 1.0
                self.col_label[art_j] = ("a", i)
                self.initial_basis[i] = art_j
                self.art_cols.append(art_j)
                surplus_j += 1
                art_j += 1
            else:
                self.unit_row[slack_j - n] = i
                self.unit_sign[slack_j - n] = 1.0
                self.col_label[slack_j] = ("s", i)
                self.initial_basis[i] = slack_j
                slack_j += 1
        self.label_index = {
            label: j for j, label in enumerate(self.col_label)
        }

    # ------------------------------------------------------------------
    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, values)`` of standard-form column ``j``."""
        if j < self.n:
            return self.csc.column(j)
        k = j - self.n
        return (self.unit_row[k:k + 1], self.unit_sign[k:k + 1])

    def dense_column(self, j: int) -> np.ndarray:
        rows, vals = self.column(j)
        out = np.zeros(self.m)
        out[rows] = vals
        return out

    def price(self, y: np.ndarray) -> np.ndarray:
        """``z_j = y . a_j`` for every standard-form column."""
        z = np.empty(self.total)
        z[:self.n] = self.csc.rmatvec(y)
        z[self.n:] = self.unit_sign * y[self.unit_row]
        return z

    def basis_matrix(self, basis: Sequence[int]):
        """The basis matrix as scipy CSC (or dense under the gate).

        Assembled with vectorized gathers — one ``np.repeat`` pass over
        the structural columns' nonzero ranges plus a fancy-index for
        the unit columns — because this runs on every refactorization
        (every ``REFACTOR_EVERY`` pivots on large instances).
        """
        basis = np.asarray(basis, dtype=np.int64)
        struct = basis < self.n
        slots_s = np.flatnonzero(struct)
        sj = basis[slots_s]
        indptr = self.csc.indptr
        counts = indptr[sj + 1] - indptr[sj]
        total = int(counts.sum())
        starts = np.zeros(slots_s.size, dtype=np.int64)
        if slots_s.size:
            np.cumsum(counts[:-1], out=starts[1:])
        gather = (np.repeat(indptr[sj], counts)
                  + np.arange(total, dtype=np.int64)
                  - np.repeat(starts, counts))
        slots_u = np.flatnonzero(~struct)
        uj = basis[slots_u] - self.n
        rows = np.concatenate([self.csc.indices[gather],
                               self.unit_row[uj]])
        cols = np.concatenate([np.repeat(slots_s, counts), slots_u])
        vals = np.concatenate([self.csc.data[gather],
                               self.unit_sign[uj]])
        if _HAVE_SPLU:
            return _scipy_csc(
                (vals, (rows, cols)), shape=(self.m, self.m)
            )
        dense = np.zeros((self.m, self.m))
        dense[rows, cols] = vals
        return dense

    def refactor(self, basis: np.ndarray) -> Tuple[BasisFactors,
                                                   np.ndarray]:
        """Fresh factors for ``basis`` plus the re-derived basic point."""
        factors = BasisFactors(self.basis_matrix(basis))
        x_b = factors.ftran(self.rhs0)
        x_b[np.abs(x_b) < 1e-12] = 0.0
        return factors, x_b


class _NumericalTrouble(RuntimeError):
    """Internal: basis became unfactorizable mid-solve."""


def _run_revised(
    sf: _StandardForm,
    factors: BasisFactors,
    x_b: np.ndarray,
    basis: np.ndarray,
    obj: np.ndarray,
    forbidden_from: Optional[int] = None,
) -> Tuple[str, int, BasisFactors, np.ndarray]:
    """Pivot to optimality in place; returns
    ``(status, pivots, factors, x_b)``."""
    m, total = sf.m, sf.total
    limit = forbidden_from if forbidden_from is not None else total
    max_iters = 500 * (m + total + 1)
    degenerate_run = 0
    bland = False

    for iteration in range(max_iters):
        y = factors.btran(obj[basis])
        d = obj - sf.price(y)
        d[basis] = 0.0
        view = d[:limit]
        eligible = np.flatnonzero(view > _EPS)
        if eligible.size == 0:
            return "optimal", iteration, factors, x_b
        if bland:
            entering = int(eligible[0])
        else:
            # Dantzig: most positive reduced cost; argmax returns the
            # smallest index among ties, keeping the choice deterministic.
            entering = int(np.argmax(view))

        w = factors.ftran(sf.dense_column(entering))
        candidates = np.flatnonzero(w > _EPS)
        if candidates.size == 0:
            return "unbounded", iteration, factors, x_b
        ratios = x_b[candidates] / w[candidates]
        best = float(ratios.min())
        band = candidates[ratios <= best + _EPS]
        leaving = int(band[np.argmin(basis[band])])
        theta = x_b[leaving] / w[leaving]

        x_b = x_b - theta * w
        x_b[leaving] = theta
        x_b[np.abs(x_b) < 1e-12] = 0.0
        try:
            factors.update(leaving, w)
        except np.linalg.LinAlgError as exc:  # pragma: no cover
            raise _NumericalTrouble(str(exc)) from exc
        basis[leaving] = entering

        if factors.needs_refactor:
            try:
                factors, x_b = sf.refactor(basis)
            except (RuntimeError, np.linalg.LinAlgError) as exc:
                raise _NumericalTrouble(
                    f"refactorization failed: {exc}"
                ) from exc

        if abs(theta) <= _EPS:
            degenerate_run += 1
            if degenerate_run >= _DEGENERATE_SWITCH:
                bland = True
        else:
            degenerate_run = 0
            bland = False
    raise RuntimeError(
        "revised simplex did not converge (cycling safeguard hit)"
    )


def _drive_out_artificials(
    sf: _StandardForm,
    factors: BasisFactors,
    basis: np.ndarray,
) -> BasisFactors:
    """Pivot zero-valued basic artificials out, dense-solver order."""
    for i in range(sf.m):
        if basis[i] >= sf.art_start:
            e_i = np.zeros(sf.m)
            e_i[i] = 1.0
            row = sf.price(factors.btran(e_i))
            for j in range(sf.art_start):
                if abs(row[j]) > _EPS:
                    w = factors.ftran(sf.dense_column(j))
                    factors.update(i, w)
                    basis[i] = j
                    break
            # All-zero row: redundant constraint; the artificial stays
            # basic at zero and is excluded from phase-2 pivoting.
    return factors


def _install_warm_basis(
    sf: _StandardForm, start_basis: Basis
) -> Tuple[Optional[Tuple[BasisFactors, np.ndarray, np.ndarray]], str]:
    """Factorize ``start_basis``; mirrors the dense ``_install_basis``
    contract (and its staleness reason strings)."""
    if len(start_basis) != sf.m:
        return None, "row-count"
    cols: List[int] = []
    for label in start_basis:
        j = sf.label_index.get(tuple(label))
        if j is None or j >= sf.art_start:
            return None, "unknown-label"
        cols.append(j)
    if len(set(cols)) != sf.m:
        return None, "duplicate-column"
    basis = np.asarray(cols, dtype=np.int64)
    try:
        factors, x_b = sf.refactor(basis)
    except (RuntimeError, np.linalg.LinAlgError):
        return None, "singular"
    if not np.all(np.isfinite(x_b)) or np.any(x_b < -1e-7):
        return None, "infeasible-point"
    x_b[x_b < 0.0] = 0.0
    return (factors, x_b, basis), ""


def _revised_leq(
    sp: SparseLP, start_basis: Optional[Basis] = None
) -> Tuple[str, Optional[np.ndarray], float, int, Optional[Basis]]:
    """Maximize ``c'y`` s.t. ``A y <= b_shifted``, ``y >= 0``.

    Same return contract as the dense ``_simplex_leq``: ``(status, y,
    objective, pivots, basis)``.
    """
    pivots = 0
    m, n = sp.a.shape
    if m == 0:
        if np.any(sp.c > _EPS):
            return "unbounded", None, float("inf"), pivots, None
        return "optimal", np.zeros(n), 0.0, pivots, ()

    sf = _StandardForm(sp)
    warm_state = None
    if start_basis is not None:
        incr("perf.lp.warm.attempts")
        warm_state, stale_reason = _install_warm_basis(sf, start_basis)
        if warm_state is not None:
            incr("perf.lp.warm.installed")
        else:
            _note_stale_basis(stale_reason, len(start_basis), m)

    if warm_state is not None:
        factors, x_b, basis = warm_state
    else:
        basis = sf.initial_basis.copy()
        factors, x_b = sf.refactor(basis)
        if sf.art_cols:
            obj1 = np.zeros(sf.total)
            obj1[sf.art_cols] = -1.0
            status, iters, factors, x_b = _run_revised(
                sf, factors, x_b, basis, obj1
            )
            pivots += iters
            if status == "unbounded":  # pragma: no cover - bounded
                return "infeasible", None, float("nan"), pivots, None
            phase1_obj = float(sum(
                x_b[i] for i in range(m) if basis[i] >= sf.art_start
            ))
            if phase1_obj > 1e-7:
                return "infeasible", None, float("nan"), pivots, None
            factors = _drive_out_artificials(sf, factors, basis)

    obj2 = np.zeros(sf.total)
    obj2[:n] = sp.c
    limit = sf.art_start if sf.art_cols else sf.total
    status, iters, factors, x_b = _run_revised(
        sf, factors, x_b, basis, obj2, forbidden_from=limit
    )
    pivots += iters
    if status == "unbounded":
        return "unbounded", None, float("inf"), pivots, None

    # Basis-pure final values: recompute from pristine data so the
    # reported point depends only on the final basis, not the pivot
    # path (warm and cold solves landing on one basis agree bitwise).
    try:
        final_factors, x_fresh = sf.refactor(basis)
    except (RuntimeError, np.linalg.LinAlgError):  # pragma: no cover
        x_fresh = x_b
    y = np.zeros(sf.total)
    y[basis] = x_fresh
    y[np.abs(y) < 1e-12] = 0.0
    final: Basis = tuple(sf.col_label[int(j)] for j in basis)
    return "optimal", y[:n], float(obj2 @ y), pivots, final


def solve_revised(
    lp: LinearProgram, start_basis: Optional[Basis] = None
) -> LPSolution:
    """Solve ``lp`` with the sparse revised simplex.

    Drop-in for :func:`repro.lp.simplex.solve_simplex`: same status
    semantics, same structure-stable basis labels (so warm starts and
    :class:`~repro.perf.warm.WarmLPCache` interoperate across backends),
    same basic-share lower-bound shift.
    """
    names = lp.variables
    if not names:
        return LPSolution("optimal", {}, 0.0, basis=())
    with phase_timer("lp.revised.solve"), \
            span("lp.solve", vars=len(names),
                 rows=len(lp.constraints),
                 warm=start_basis is not None,
                 backend="revised") as solve_span:
        sp = SparseLP.from_problem(lp)
        status, y, _, pivots, basis = _revised_leq(sp, start_basis)
        solve_span.tag(status=status, pivots=pivots)
    incr("lp.revised.solves")
    incr("lp.revised.pivots", pivots)
    if status != "optimal":
        return LPSolution(status, {}, float("nan"))
    x = y + sp.lb
    values = {v: float(x[j]) for j, v in enumerate(names)}
    return LPSolution(
        "optimal", values, lp.objective_value(values), basis=basis
    )


class RevisedBackend:
    """The ``"revised"`` solver backend, with batched max-min probes.

    Calling the instance solves one LP (used by
    :func:`repro.lp.solvers.solve`); :meth:`probe_max_values` answers a
    whole round of the max-min ladder's saturation probes — LPs over the
    *same* constraint system with single-variable objectives — against
    one shared factorization: phase 1 runs at most once, and each probe
    re-prices from the previous probe's optimal basis.
    """

    __name__ = "revised"

    def __call__(self, lp: LinearProgram,
                 start_basis: Optional[Basis] = None) -> LPSolution:
        return solve_revised(lp, start_basis=start_basis)

    def probe_max_values(
        self, lp: LinearProgram, targets: Sequence[str]
    ) -> Dict[str, Optional[float]]:
        """Max feasible value of each target variable of ``lp``.

        Returns ``{target: value}`` with ``None`` for targets whose
        probe did not come back optimal (infeasible system, unbounded
        direction) — the caller treats ``None`` exactly as it treats a
        non-optimal per-probe solve.
        """
        targets = list(targets)
        if not targets:
            return {}
        names = lp.variables
        index = {v: j for j, v in enumerate(names)}
        for target in targets:
            if target not in index:
                raise KeyError(f"unknown probe target {target!r}")
        with phase_timer("lp.revised.probe_batch"), \
                span("lp.probe_batch", targets=len(targets),
                     rows=len(lp.constraints), backend="revised"):
            out = self._probe_batch(lp, targets, index)
        incr("lp.revised.probe_batches")
        incr("lp.revised.probes", len(targets))
        return out

    @staticmethod
    def _probe_batch(
        lp: LinearProgram,
        targets: List[str],
        index: Dict[str, int],
    ) -> Dict[str, Optional[float]]:
        sp = SparseLP.from_problem(lp)
        m, n = sp.a.shape
        if m == 0:
            # Unconstrained: every probe maximization is unbounded.
            return {t: None for t in targets}
        sf = _StandardForm(sp)
        basis = sf.initial_basis.copy()
        factors, x_b = sf.refactor(basis)

        if sf.art_cols:
            obj1 = np.zeros(sf.total)
            obj1[sf.art_cols] = -1.0
            status, _, factors, x_b = _run_revised(
                sf, factors, x_b, basis, obj1
            )
            phase1_obj = float(sum(
                x_b[i] for i in range(m) if basis[i] >= sf.art_start
            ))
            if status != "optimal" or phase1_obj > 1e-7:
                return {t: None for t in targets}
            factors = _drive_out_artificials(sf, factors, basis)
        limit = sf.art_start if sf.art_cols else sf.total

        results: Dict[str, Optional[float]] = {}
        obj = np.zeros(sf.total)
        for target in targets:
            j = index[target]
            obj[:] = 0.0
            obj[j] = 1.0
            status, _, factors, x_b = _run_revised(
                sf, factors, x_b, basis, obj, forbidden_from=limit
            )
            if status != "optimal":
                results[target] = None
                continue
            slots = np.flatnonzero(basis == j)
            shifted = float(x_b[slots[0]]) if slots.size else 0.0
            results[target] = shifted + float(sp.lb[j])
        return results
