"""Sparse (CSR/CSC) matrix layer for the revised-simplex backend.

Clique-constraint matrices are extremely sparse: a clique row touches
only the flows crossing that clique, and the max-min ladder's floor rows
(``t*w_v - x_v <= 0``) carry exactly two nonzeros.  Densifying them — as
:meth:`repro.lp.problem.LinearProgram.to_dense` does for the tableau
solver — wastes both memory (quadratic at 10k flows) and time (every
pivot sweeps mostly-zero columns).  This module provides the minimal
index/value-array representation the revised simplex needs:

* :class:`CSRMatrix` — compressed sparse rows (fast row access, matvec);
* :class:`CSCMatrix` — compressed sparse columns (fast column gather and
  the per-iteration ``A^T y`` pricing pass);
* :class:`SparseLP` — ``(c, A, b, lb)`` extracted from a
  :class:`~repro.lp.problem.LinearProgram` without ever materializing
  the dense matrix.

Everything is plain numpy; scipy is only touched by the LU
factorization in :mod:`repro.lp.revised`.  The hypothesis suite in
``tests/test_lp_sparse.py`` pins these classes against their dense numpy
equivalents (build round-trip, slicing, matvec/rmatvec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .problem import LinearProgram

__all__ = ["CSRMatrix", "CSCMatrix", "SparseLP"]


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed-sparse-row matrix over float64 index/value arrays.

    ``indptr`` has ``num_rows + 1`` entries; row ``i``'s nonzeros live at
    ``indices[indptr[i]:indptr[i+1]]`` / ``data[indptr[i]:indptr[i+1]]``.
    Column indices within a row are stored in ascending order, which
    makes equal matrices representation-identical (and comparisons in
    the property tests exact).
    """

    num_rows: int
    num_cols: int
    indptr: np.ndarray   # int64, len num_rows + 1
    indices: np.ndarray  # int64, len nnz
    data: np.ndarray     # float64, len nnz

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        m, n = dense.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        cols, vals = [], []
        for i in range(m):
            nz = np.flatnonzero(dense[i])
            indptr[i + 1] = indptr[i] + nz.size
            cols.append(nz)
            vals.append(dense[i, nz])
        indices = (np.concatenate(cols) if cols
                   else np.zeros(0, dtype=np.int64))
        data = np.concatenate(vals) if vals else np.zeros(0)
        return cls(m, n, indptr, indices.astype(np.int64), data)

    @classmethod
    def from_rows(
        cls, rows: Sequence[Sequence[Tuple[int, float]]], num_cols: int
    ) -> "CSRMatrix":
        """Build from per-row ``(col, value)`` pairs (zeros dropped)."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        cols, vals = [], []
        for i, row in enumerate(rows):
            entries = sorted((int(j), float(v)) for j, v in row
                             if float(v) != 0.0)
            indptr[i + 1] = indptr[i] + len(entries)
            cols.extend(j for j, _ in entries)
            vals.extend(v for _, v in entries)
        return cls(
            len(rows), int(num_cols), indptr,
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=float),
        )

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.num_rows, self.num_cols))
        row_of = np.repeat(
            np.arange(self.num_rows), np.diff(self.indptr)
        )
        out[row_of, self.indices] = self.data
        return out

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` of row ``i`` (views, not copies)."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def select_rows(self, rows: Sequence[int]) -> "CSRMatrix":
        """A new CSRMatrix of the given rows, in the given order."""
        rows = [int(i) for i in rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        chunks_i, chunks_v = [], []
        for k, i in enumerate(rows):
            idx, val = self.row(i)
            indptr[k + 1] = indptr[k] + idx.size
            chunks_i.append(idx)
            chunks_v.append(val)
        indices = (np.concatenate(chunks_i) if chunks_i
                   else np.zeros(0, dtype=np.int64))
        data = np.concatenate(chunks_v) if chunks_v else np.zeros(0)
        return CSRMatrix(len(rows), self.num_cols, indptr, indices, data)

    def select_columns(self, cols: Sequence[int]) -> "CSRMatrix":
        """A new CSRMatrix of the given columns, in the given order."""
        cols = [int(j) for j in cols]
        remap = -np.ones(self.num_cols, dtype=np.int64)
        for new_j, old_j in enumerate(cols):
            remap[old_j] = new_j
        keep = remap[self.indices] >= 0
        new_indices = remap[self.indices[keep]]
        new_data = self.data[keep]
        row_of = np.repeat(
            np.arange(self.num_rows), np.diff(self.indptr)
        )[keep]
        kept_per_row = np.bincount(row_of, minlength=self.num_rows) \
            if row_of.size else np.zeros(self.num_rows, dtype=np.int64)
        indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(kept_per_row, out=indptr[1:])
        # Re-sort each row by the new column order.
        out_i = np.empty_like(new_indices)
        out_v = np.empty_like(new_data)
        for i in range(self.num_rows):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            order = np.argsort(new_indices[lo:hi], kind="stable")
            out_i[lo:hi] = new_indices[lo:hi][order]
            out_v[lo:hi] = new_data[lo:hi][order]
        return CSRMatrix(self.num_rows, len(cols), indptr, out_i, out_v)

    def to_csc(self) -> "CSCMatrix":
        order = np.lexsort((
            np.repeat(np.arange(self.num_rows), np.diff(self.indptr)),
            self.indices,
        )) if self.nnz else np.zeros(0, dtype=np.int64)
        rows = np.repeat(
            np.arange(self.num_rows), np.diff(self.indptr)
        )[order]
        data = self.data[order]
        cols = self.indices[order]
        indptr = np.zeros(self.num_cols + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(
            self.num_rows, self.num_cols, indptr,
            rows.astype(np.int64), data,
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via one pass over the nonzeros."""
        x = np.asarray(x, dtype=float)
        if self.nnz == 0:
            return np.zeros(self.num_rows)
        products = self.data * x[self.indices]
        row_of = np.repeat(
            np.arange(self.num_rows), np.diff(self.indptr)
        )
        return np.bincount(row_of, weights=products,
                           minlength=self.num_rows)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y`` via one pass over the nonzeros."""
        y = np.asarray(y, dtype=float)
        if self.nnz == 0:
            return np.zeros(self.num_cols)
        row_of = np.repeat(
            np.arange(self.num_rows), np.diff(self.indptr)
        )
        return np.bincount(self.indices, weights=self.data * y[row_of],
                           minlength=self.num_cols)


@dataclass(frozen=True)
class CSCMatrix:
    """Compressed-sparse-column twin of :class:`CSRMatrix`.

    Column ``j``'s nonzeros live at
    ``indices[indptr[j]:indptr[j+1]]`` (row indices, ascending) /
    ``data[indptr[j]:indptr[j+1]]``.  This is the pricing-side layout:
    the revised simplex gathers one column per pivot (``B^-1 a_j``) and
    runs ``A^T y`` over all nonzeros once per iteration.
    """

    num_rows: int
    num_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, values)`` of column ``j`` (views, not copies)."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.num_rows, self.num_cols))
        col_of = np.repeat(
            np.arange(self.num_cols), np.diff(self.indptr)
        )
        out[self.indices, col_of] = self.data
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``A.T @ y``: the per-iteration pricing pass."""
        y = np.asarray(y, dtype=float)
        if self.nnz == 0:
            return np.zeros(self.num_cols)
        col_of = np.repeat(
            np.arange(self.num_cols), np.diff(self.indptr)
        )
        return np.bincount(col_of, weights=self.data * y[self.indices],
                           minlength=self.num_cols)


@dataclass(frozen=True)
class SparseLP:
    """``maximize c'x s.t. A x <= b, x >= lb`` with ``A`` kept sparse.

    The tuple ``(c, A.to_dense(), b, lb)`` is bit-identical to
    :meth:`LinearProgram.to_dense` — same variable registration order,
    same constraint order, same float values — so the revised backend
    solves exactly the LP the dense backend sees.
    """

    names: Tuple[str, ...]
    c: np.ndarray
    a: CSRMatrix
    b: np.ndarray
    lb: np.ndarray

    @classmethod
    def from_problem(cls, lp: LinearProgram) -> "SparseLP":
        names = lp.variables
        index = {v: j for j, v in enumerate(names)}
        n = len(names)
        c = np.zeros(n)
        for v, coeff in lp.objective.items():
            c[index[v]] = coeff
        rows = [
            [(index[v], coeff) for v, coeff in con.coeffs.items()]
            for con in lp.constraints
        ]
        a = CSRMatrix.from_rows(rows, n)
        b = np.array([con.bound for con in lp.constraints], dtype=float)
        lb = np.array([lp.lower_bounds.get(v, 0.0) for v in names])
        return cls(tuple(names), c, a, b, lb)

    def to_dense(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
        """The same ``(c, A_ub, b_ub, lb)`` tuple as ``lp.to_dense()``."""
        return self.c.copy(), self.a.to_dense(), self.b.copy(), \
            self.lb.copy()
