"""Fairness definitions and basic shares (Sec. II-C, II-D).

The paper's allocations are *equal-per-hop*: a flow ``F_i`` gets the same
share ``r̂_i`` on every hop, so its end-to-end throughput is
``u_i = r̂_i``.  Three nested notions are implemented:

* **fairness constraint**: ``|r̂_i/w_i − r̂_j/w_j| < ε`` for contending
  flows — i.e. shares exactly proportional to weights;
* **basic share**: ``r̂_i = w_i B / Σ_j w_j v_j`` within a contending flow
  group, where ``v_j`` is the virtual length;
* **basic fairness**: every flow receives at least its basic share.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .model import Flow

DEFAULT_EPSILON = 1e-9


def basic_shares(
    flows: Sequence[Flow], capacity: float = 1.0
) -> Dict[str, float]:
    """Basic share of each flow in one contending flow group.

    ``r̂_i = w_i B / Σ_j w_j v_j`` (Sec. II-D).  With these shares every
    flow attains its *basic throughput* and the group's total effective
    throughput is ``(Σ w_i) B / Σ w_j v_j``.
    """
    denom = sum(f.weight * f.virtual_length for f in flows)
    if denom <= 0:
        raise ValueError("group has no subflows (all flows zero-length?)")
    return {f.flow_id: f.weight * capacity / denom for f in flows}


def basic_total_throughput(
    flows: Sequence[Flow], capacity: float = 1.0
) -> float:
    """Total effective throughput when all flows get exactly basic shares."""
    shares = basic_shares(flows, capacity)
    return sum(shares.values())


def naive_subflow_shares(
    flows: Sequence[Flow], capacity: float = 1.0
) -> Dict[str, float]:
    """The strawman allocation of Eq. (2): ignore intra-flow reuse.

    Splits B over *all* subflows of the group using true hop counts
    ``l_i``:  ``r̂_i = w_i B / Σ_j w_j l_j``.  Always dominated by the basic
    shares because ``v_i <= l_i``.
    """
    denom = sum(f.weight * f.length for f in flows)
    if denom <= 0:
        raise ValueError("group has no subflows")
    return {f.flow_id: f.weight * capacity / denom for f in flows}


def satisfies_fairness_constraint(
    shares: Mapping[str, float],
    weights: Mapping[str, float],
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """``|r̂_i/w_i − r̂_j/w_j| < ε`` for every pair of flows."""
    normalized = [shares[f] / weights[f] for f in shares]
    if not normalized:
        return True
    return max(normalized) - min(normalized) <= epsilon


def satisfies_basic_fairness(
    shares: Mapping[str, float],
    flows: Sequence[Flow],
    capacity: float = 1.0,
    tol: float = 1e-9,
) -> bool:
    """Every flow's share at least its basic share (Sec. II-D)."""
    basic = basic_shares(flows, capacity)
    return all(
        shares.get(f.flow_id, 0.0) >= basic[f.flow_id] - tol for f in flows
    )


def fairness_violations(
    shares: Mapping[str, float],
    flows: Sequence[Flow],
    capacity: float = 1.0,
    tol: float = 1e-9,
) -> List[str]:
    """Flows receiving less than their basic share (diagnostic helper)."""
    basic = basic_shares(flows, capacity)
    return [
        f.flow_id
        for f in flows
        if shares.get(f.flow_id, 0.0) < basic[f.flow_id] - tol
    ]


def end_to_end_throughput(subflow_rates: Mapping[int, float]) -> float:
    """``u_i = min_j u_{i.j}``: a flow is only as fast as its slowest hop."""
    if not subflow_rates:
        raise ValueError("flow has no subflows")
    return min(subflow_rates.values())


def total_effective_throughput(
    flow_throughputs: Mapping[str, float]
) -> float:
    """``Σ_i u_i`` over all flows — the paper's spatial-reuse objective."""
    return float(sum(flow_throughputs.values()))


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n Σx²)``; 1.0 is perfectly fair."""
    vals = [float(v) for v in values]
    if not vals:
        return 1.0
    square_sum = sum(v * v for v in vals)
    if square_sum == 0:
        return 1.0
    return (sum(vals) ** 2) / (len(vals) * square_sum)
