"""The paper's primary contribution: end-to-end fair allocation."""

from .model import (
    Flow,
    Network,
    NodeId,
    Scenario,
    Subflow,
    SubflowId,
    virtual_length,
)
from .contention import (
    ContentionAnalysis,
    contending_flow_groups,
    contention_graph_from_pairs,
    flows_contend,
    subflow_contention_graph,
    subflows_contend,
)
from .fairness_defs import (
    basic_shares,
    basic_total_throughput,
    end_to_end_throughput,
    jain_index,
    naive_subflow_shares,
    satisfies_basic_fairness,
    satisfies_fairness_constraint,
    total_effective_throughput,
)
from .bounds import FairnessBound, fairness_upper_bound
from .allocation import (
    AllocationResult,
    basic_allocation,
    basic_fairness_lp_allocation,
    build_basic_fairness_lp,
    fairness_constrained_allocation,
    feasible_fairness_allocation,
    naive_allocation,
    single_hop_optimal_allocation,
    total_single_hop_throughput,
)
from .maxmin_rates import (
    maxmin_end_to_end_throughput,
    maxmin_flow_allocation,
    maxmin_subflow_rates,
)
from .centralized import CentralizedCoordinator, run_centralized
from .distributed import DistributedAllocator, run_distributed
from .feasibility import (
    FeasibilityReport,
    check_allocation_schedulability,
    check_schedulability,
    max_feasible_scaling,
)

__all__ = [
    "Flow",
    "Network",
    "NodeId",
    "Scenario",
    "Subflow",
    "SubflowId",
    "virtual_length",
    "ContentionAnalysis",
    "subflow_contention_graph",
    "subflows_contend",
    "flows_contend",
    "contending_flow_groups",
    "contention_graph_from_pairs",
    "basic_shares",
    "basic_total_throughput",
    "naive_subflow_shares",
    "satisfies_fairness_constraint",
    "satisfies_basic_fairness",
    "end_to_end_throughput",
    "total_effective_throughput",
    "jain_index",
    "FairnessBound",
    "fairness_upper_bound",
    "AllocationResult",
    "naive_allocation",
    "basic_allocation",
    "fairness_constrained_allocation",
    "feasible_fairness_allocation",
    "basic_fairness_lp_allocation",
    "build_basic_fairness_lp",
    "single_hop_optimal_allocation",
    "total_single_hop_throughput",
    "maxmin_subflow_rates",
    "maxmin_flow_allocation",
    "maxmin_end_to_end_throughput",
    "CentralizedCoordinator",
    "run_centralized",
    "DistributedAllocator",
    "run_distributed",
    "FeasibilityReport",
    "check_schedulability",
    "check_allocation_schedulability",
    "max_feasible_scaling",
]
