"""Subflow contention graphs and contending flow groups (Sec. II-A).

*Contending subflows*: two active subflows contend if the source or
destination of one is within transmission range of the source or
destination of the other.  *Contending flows*: two multi-hop flows contend
if any of their subflows contend; the transitive closure of that relation
partitions the network's flows into disjoint *contending flow groups*,
which are the units the allocation algorithms operate on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..graphs import Graph, connected_components, maximal_cliques
from ..obs.registry import incr, phase_timer
from .model import Flow, Network, Scenario, Subflow, SubflowId


def subflows_contend(network: Network, a: Subflow, b: Subflow) -> bool:
    """The paper's pairwise contention predicate.

    Either endpoint of ``a`` within range of either endpoint of ``b``
    (distinct subflows only; a subflow does not contend with itself).
    """
    if a.sid == b.sid:
        return False
    for x in (a.sender, a.receiver):
        for y in (b.sender, b.receiver):
            if network.in_range(x, y):
                return True
    return False


def subflow_contention_graph(
    network: Network, flows: Sequence[Flow]
) -> Graph:
    """Build the subflow contention graph.

    Vertices are :class:`SubflowId` objects carrying ``weight`` and
    ``flow`` attributes; edges join contending subflows.  Subflows of the
    same flow that share a node (adjacent hops) always contend, matching
    the paper's Fig. 1(b).
    """
    subflows = [s for f in flows for s in f.subflows]
    g = Graph()
    for s in subflows:
        g.add_vertex(s.sid, weight=s.weight, flow=s.flow_id,
                     sender=s.sender, receiver=s.receiver)
    for i, a in enumerate(subflows):
        for b in subflows[i + 1:]:
            if subflows_contend(network, a, b):
                g.add_edge(a.sid, b.sid)
    return g


def contention_graph_from_pairs(
    subflows: Sequence[Subflow],
    contending_pairs: Sequence[Tuple[SubflowId, SubflowId]],
) -> Graph:
    """Build a contention graph from an explicit pair list.

    Used for abstract examples (Figs. 4 and 5) where the paper gives the
    contention graph directly rather than node geometry.
    """
    g = Graph()
    for s in subflows:
        g.add_vertex(s.sid, weight=s.weight, flow=s.flow_id,
                     sender=s.sender, receiver=s.receiver)
    for a, b in contending_pairs:
        g.add_edge(a, b)
    return g


def flows_contend(network: Network, fa: Flow, fb: Flow) -> bool:
    """Two flows contend iff any of their subflows contend."""
    for a in fa.subflows:
        for b in fb.subflows:
            if subflows_contend(network, a, b):
                return True
    return False


def contending_flow_groups(
    network: Network, flows: Sequence[Flow]
) -> List[List[Flow]]:
    """Partition ``flows`` into contending flow groups.

    Groups are connected components of the flow-level contention relation;
    the intra-group order follows the input order, and groups are ordered
    by their first member.
    """
    g = Graph()
    by_id = {f.flow_id: f for f in flows}
    for f in flows:
        g.add_vertex(f.flow_id)
    flist = list(flows)
    for i, fa in enumerate(flist):
        for fb in flist[i + 1:]:
            if flows_contend(network, fa, fb):
                g.add_edge(fa.flow_id, fb.flow_id)
    groups = connected_components(g)
    ordered: List[List[Flow]] = []
    seen: Set[str] = set()
    for f in flows:
        if f.flow_id in seen:
            continue
        comp = next(c for c in groups if f.flow_id in c)
        ordered.append([by_id[fid] for fid in [x.flow_id for x in flows]
                        if fid in comp])
        seen |= comp
    return ordered


def flow_groups_from_graph(
    graph: Graph, flows: Sequence[Flow]
) -> List[List[Flow]]:
    """Contending flow groups induced by a subflow contention graph.

    Two flows are grouped when their subflow vertices share a connected
    component of ``graph``.  Covers the explicit-graph scenarios where no
    geometry exists.
    """
    by_id = {f.flow_id: f for f in flows}
    comp_of: Dict[str, int] = {}
    for idx, comp in enumerate(connected_components(graph)):
        for sid in comp:
            flow_id = graph.attr(sid, "flow")
            if flow_id in comp_of and comp_of[flow_id] != idx:
                # Same flow spanning two components cannot happen: adjacent
                # subflows always contend.  Guard anyway.
                raise RuntimeError(f"flow {flow_id!r} spans components")
            comp_of[flow_id] = idx  # type: ignore[index]
    groups: Dict[int, List[Flow]] = {}
    for f in flows:
        groups.setdefault(comp_of.get(f.flow_id, -1 - len(groups)), []).append(
            by_id[f.flow_id]
        )
    return [groups[k] for k in sorted(groups, key=lambda k: (k < 0, k))]


class ContentionAnalysis:
    """Precomputed contention structure for one scenario.

    Bundles the subflow contention graph, its maximal cliques, the per-flow
    subflow-count coefficients ``n_{i,k}`` (how many subflows of flow ``i``
    sit in clique ``k``), and the contending flow groups — everything the
    phase-1 LPs need.

    ``graph`` and ``cliques`` may be supplied precomputed (e.g. by
    :class:`repro.perf.incremental.IncrementalContention`, which maintains
    both across flow churn); when given they must describe exactly the
    scenario's flows — the constructor then skips the corresponding
    rebuild phases.
    """

    def __init__(
        self,
        scenario: Scenario,
        graph: Graph = None,
        cliques: List[FrozenSet[SubflowId]] = None,
    ) -> None:
        self.scenario = scenario
        if graph is not None:
            self.graph = graph
        else:
            with phase_timer("contention.graph_build"):
                self.graph = subflow_contention_graph(
                    scenario.network, scenario.flows
                )
        if cliques is not None:
            self.cliques: List[FrozenSet[SubflowId]] = list(cliques)
            incr("perf.contention.precomputed_cliques")
        else:
            with phase_timer("contention.clique_enumeration"):
                self.cliques = maximal_cliques(self.graph)
        with phase_timer("contention.flow_grouping"):
            self.groups = flow_groups_from_graph(self.graph, scenario.flows)
        incr("contention.analyses")
        incr("contention.cliques_found", len(self.cliques))
        incr("contention.subflow_vertices", self.graph.num_vertices())

    def clique_coefficients(
        self, clique: FrozenSet[SubflowId]
    ) -> Dict[str, int]:
        """``n_{i,k}``: subflows of each flow inside ``clique`` (k fixed)."""
        counts: Dict[str, int] = {}
        for sid in clique:
            counts[sid.flow] = counts.get(sid.flow, 0) + 1
        return counts

    def all_coefficients(self) -> List[Dict[str, int]]:
        """``n_{i,k}`` for every maximal clique, in clique order."""
        return [self.clique_coefficients(c) for c in self.cliques]

    def weighted_clique_sizes(self) -> List[float]:
        """``ω_{Ω_k}`` per clique: sum of member subflow weights."""
        weights = {v: float(self.graph.attr(v, "weight", 1.0))
                   for v in self.graph}
        return [sum(weights[v] for v in c) for c in self.cliques]

    def weighted_clique_number(self) -> float:
        """``ω_Ω = max_k ω_{Ω_k}`` (0 when there are no subflows)."""
        sizes = self.weighted_clique_sizes()
        return max(sizes) if sizes else 0.0

    def group_of(self, flow_id: str) -> List[Flow]:
        for group in self.groups:
            if any(f.flow_id == flow_id for f in group):
                return group
        raise KeyError(f"flow {flow_id!r} not in any group")

    def subflow_ids(self) -> List[SubflowId]:
        return [s.sid for s in self.scenario.all_subflows()]
