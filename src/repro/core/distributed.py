"""Phase 1, distributed form (Sec. IV-B): 2PA-D.

Each node works from *local* information only:

1.  **Overhearing.**  A node directly overhears every subflow whose sender
    or receiver is within its transmission range (it hears the RTS/CTS or
    data frames of that hop).
2.  **Neighbor exchange.**  Nodes exchange overheard-subflow lists with
    their immediate neighbors, so a node *knows* the subflows overheard
    within its two-hop neighborhood.  Per Huang & Bensaou (the paper's
    ref. [5]), that suffices to construct every contention-graph clique
    consisting solely of locally-known subflows ("local cliques").
3.  **Intra-flow constraint propagation.**  Every node on a flow's path
    forwards its local cliques that involve the flow, as coefficient
    arrays ``(n_{i,k}, i)``, up- and downstream; eventually each node on
    the path possesses *all constraints that include its flow*.
4.  **Local optimization.**  Each flow's source solves a local LP —
    maximize the total effective throughput of every flow appearing in its
    known constraints, subject to those constraints and to *local* basic
    fairness.  The local basic per-unit share is ``B / Σ w_j v_j`` taken
    over the flows known in the two-hop neighborhood (a superset-blind,
    hence *higher*, version of the global basic share — exactly why Table I
    shows B/3 at node A but B/8 globally).
5.  The flow adopts the share its own variable receives in its source's
    local LP solution.

The per-node LPs and solutions reproduce Table I of the paper exactly; see
``tests/test_distributed.py``.

Step 3's exchange is lossless and instantaneous by default.  Passing a
``channel`` (see :class:`repro.resilience.channel.UnreliableChannel`)
replaces it with an acknowledged, retransmitting exchange over a faulted
medium; when that exchange does not fully converge, :meth:`run` degrades
gracefully to conservative shares instead of optimizing over incomplete
constraint views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set

from ..graphs import maximal_cliques
from ..lp import LinearProgram, LPSolution, lexicographic_maxmin, solve
from ..obs.registry import incr, observe, phase_timer, set_gauge
from ..obs.trace import span
from .allocation import AllocationResult
from .contention import ContentionAnalysis
from .model import Flow, Network, NodeId, Scenario, Subflow, SubflowId

Clique = FrozenSet[SubflowId]


@dataclass
class LocalView:
    """Everything one node knows after overhearing and neighbor exchange."""

    node: NodeId
    overheard: Set[SubflowId] = field(default_factory=set)
    known: Set[SubflowId] = field(default_factory=set)
    local_cliques: List[Clique] = field(default_factory=list)
    received_cliques: List[Clique] = field(default_factory=list)

    def known_flows(self) -> Set[str]:
        """Flows with at least one subflow known in the 2-hop neighborhood."""
        return {sid.flow for sid in self.known}

    def all_cliques(self) -> List[Clique]:
        """Local plus propagated cliques, deduplicated, deterministic."""
        merged = {c for c in self.local_cliques} | set(self.received_cliques)
        return sorted(merged, key=lambda c: (-len(c), sorted(map(str, c))))


@dataclass
class LocalProblem:
    """The local LP a flow source builds and solves."""

    node: NodeId
    flow_ids: List[str]
    lp: LinearProgram
    solution: LPSolution
    basic_per_unit: float


class DistributedAllocator:
    """Runs the full distributed phase-1 protocol on a scenario."""

    def __init__(
        self,
        scenario: Scenario,
        backend: str = "simplex",
        analysis: ContentionAnalysis = None,
        channel=None,
    ) -> None:
        self.scenario = scenario
        self.backend = backend
        # A precomputed analysis (e.g. maintained incrementally across
        # flow churn by repro.perf.incremental.IncrementalContention, or
        # shared via repro.perf.cache) skips the O(S^2) rebuild; it must
        # describe exactly this scenario.
        self.analysis = (analysis if analysis is not None
                         else ContentionAnalysis(scenario))
        #: Optional unreliable message channel
        #: (:class:`repro.resilience.channel.UnreliableChannel`).  ``None``
        #: keeps the lossless, instantaneous exchange below — the default
        #: path is untouched and byte-identical to the channel-free code.
        self.channel = channel
        self.views: Dict[NodeId, LocalView] = {}
        self.problems: Dict[NodeId, LocalProblem] = {}
        self._shares: Dict[str, float] = {}
        #: Convergence statistics of the last :meth:`propagate_constraints`
        #: run: synchronous gossip rounds and clique-transfer messages until
        #: every path node holds all constraints involving its flow, plus a
        #: ``status`` (always ``"converged"`` on the lossless path; an
        #: unreliable channel may report ``"converged-partial"`` or
        #: ``"timed-out"`` instead of raising).
        self.convergence: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Step 1 + 2: overhearing and local clique construction
    # ------------------------------------------------------------------
    def build_local_views(self) -> Dict[NodeId, LocalView]:
        """Populate each node's overheard/known subflows and local cliques."""
        with phase_timer("2pad.build_views"), span("2pad.build_views"):
            return self._build_local_views()

    def _build_local_views(self) -> Dict[NodeId, LocalView]:
        net = self.scenario.network
        subflows = self.scenario.all_subflows()

        overheard: Dict[NodeId, Set[SubflowId]] = {
            n: set() for n in net.nodes
        }
        for node in net.nodes:
            for sub in subflows:
                if net.in_range(node, sub.sender) or net.in_range(
                    node, sub.receiver
                ):
                    overheard[node].add(sub.sid)

        for node in net.nodes:
            view = LocalView(node=node, overheard=set(overheard[node]))
            view.known = set(overheard[node])
            for nbr in net.neighbors(node):
                view.known |= overheard[nbr]
            local_graph = self.analysis.graph.subgraph(view.known)
            view.local_cliques = maximal_cliques(local_graph)
            self.views[node] = view
        return self.views

    # ------------------------------------------------------------------
    # Step 3: intra-flow propagation of constraints
    # ------------------------------------------------------------------
    def propagate_constraints(self) -> None:
        """Push clique constraints up/down every flow's path.

        After propagation, each node on flow ``F_i``'s path holds every
        local clique (from any path node) that contains a subflow of
        ``F_i``.

        The exchange is simulated as the protocol actually runs: per flow,
        synchronous gossip rounds in which every path node offers the
        flow-relevant cliques it holds to its path neighbors, until a round
        moves nothing.  The fixpoint is identical to a one-shot union over
        path nodes (only cliques that are *local* at some path node ever
        enter the flood, so no cross-flow leakage occurs), but the rounds
        and message counts now measure the real convergence cost —
        ``rounds`` grows with path length, ``messages`` with constraint
        density.  Statistics land in :attr:`convergence` and the active
        metrics registry (``2pad.*``).
        """
        if not self.views:
            self.build_local_views()
        with phase_timer("2pad.propagate"), \
                span("2pad.propagate",
                     lossy=self.channel is not None) as prop_span:
            if self.channel is None:
                self._propagate_constraints()
            else:
                self.convergence = self.channel.propagate(self)
            prop_span.tag(
                status=self.convergence.get("status"),
                max_rounds=self.convergence.get("max_rounds"),
                messages=self.convergence.get("total_messages"),
            )

    def _propagate_constraints(self) -> None:
        # Reset up front and update incrementally per flow: if a fault
        # makes one flow's exchange raise mid-run, the record still holds
        # the completed flows' stats (status "in-progress") instead of
        # stale numbers from an earlier run corrupting later metrics.
        total_messages = 0
        rounds_per_flow: Dict[str, int] = {}
        self.convergence = {
            "rounds_per_flow": rounds_per_flow,
            "max_rounds": 0,
            "total_messages": 0,
            "status": "in-progress",
        }
        for flow in self.scenario.flows:
            with span("2pad.flow", flow=flow.flow_id) as flow_span:
                path = list(flow.path)
                holding: Dict[NodeId, Set[Clique]] = {
                    node: {
                        clique
                        for clique in self.views[node].local_cliques
                        if any(sid.flow == flow.flow_id for sid in clique)
                    }
                    for node in path
                }
                rounds = 0
                flow_messages = 0
                while True:
                    transfers: List[Tuple[NodeId, Clique]] = []
                    for i, node in enumerate(path):
                        for j in (i - 1, i + 1):
                            if not 0 <= j < len(path):
                                continue
                            neighbor = path[j]
                            for clique in holding[node]:
                                if clique not in holding[neighbor]:
                                    transfers.append((neighbor, clique))
                    if not transfers:
                        break
                    rounds += 1
                    flow_messages += len(transfers)
                    total_messages += len(transfers)
                    for neighbor, clique in transfers:
                        holding[neighbor].add(clique)
                rounds_per_flow[flow.flow_id] = rounds
                self.convergence["max_rounds"] = max(
                    rounds_per_flow.values(), default=0
                )
                self.convergence["total_messages"] = total_messages
                observe("2pad.rounds_to_convergence", rounds)
                flow_span.tag(rounds=rounds, messages=flow_messages)
                for node in path:
                    view = self.views[node]
                    own = set(view.local_cliques)
                    for clique in sorted(
                        holding[node],
                        key=lambda c: (-len(c), sorted(map(str, c))),
                    ):
                        if (clique not in own
                                and clique not in view.received_cliques):
                            view.received_cliques.append(clique)
        self.convergence["status"] = "converged"
        incr("2pad.messages", total_messages)
        set_gauge("2pad.max_rounds",
                  float(self.convergence["max_rounds"]))

    # ------------------------------------------------------------------
    # Step 4: local optimization at each flow source
    # ------------------------------------------------------------------
    def local_per_unit_share(self, node: NodeId) -> float:
        """``B / Σ w_j v_j`` over the flows known in ``node``'s 2-hop view."""
        view = self.views[node]
        flow_by_id = {f.flow_id: f for f in self.scenario.flows}
        denom = sum(
            flow_by_id[fid].weight * flow_by_id[fid].virtual_length
            for fid in sorted(view.known_flows())
        )
        if denom <= 0:
            raise ValueError(f"node {node!r} has empty local basic share")
        return self.scenario.capacity / denom

    def solve_local(self, node: NodeId) -> LocalProblem:
        """Build and solve the local LP at ``node``.

        Constraints: the node's local cliques plus everything propagated to
        it; variables: every flow those cliques mention.  Lower bounds:

        * flows the node knows from its own 2-hop neighborhood use the
          node's local basic per-unit share (``B / Σ w v`` over known
          flows);
        * flows known only through propagated constraints carry their own
          *source's* local basic share — the propagation payload
          ``(n_{i,k}, i)`` is extended with it.  (Applying the receiving
          node's myopic per-unit share to a propagated flow can render the
          local LP infeasible: node A of the Fig. 1 scenario would demand
          B/2 for both flows against the clique r̂1 + 2 r̂2 <= B.)

        If the mixed bounds are still jointly infeasible (possible when
        several myopic sources overestimate simultaneously), all lower
        bounds are scaled by the largest feasible factor before the
        throughput maximization — shares stay proportional to the locally
        computed basic shares.
        """
        with phase_timer("2pad.local_lp"), \
                span("2pad.local_lp", node=str(node)):
            problem = self._solve_local(node)
        incr("2pad.local_lps")
        return problem

    def _solve_local(self, node: NodeId) -> LocalProblem:
        view = self.views[node]
        b = self.scenario.capacity
        flow_by_id = {f.flow_id: f for f in self.scenario.flows}

        cliques = view.all_cliques()
        flow_ids = sorted({sid.flow for c in cliques for sid in c})
        if not flow_ids:
            raise ValueError(f"node {node!r} knows no flows")

        known = view.known_flows()
        per_unit = self.local_per_unit_share(node)

        bounds: Dict[str, float] = {}
        for fid in flow_ids:
            flow = flow_by_id[fid]
            if fid in known:
                bounds[fid] = flow.weight * per_unit
            else:
                bounds[fid] = flow.weight * self.local_per_unit_share(
                    flow.source
                )

        constraint_rows = []
        for k, clique in enumerate(cliques):
            counts: Dict[str, int] = {}
            for sid in clique:
                counts[sid.flow] = counts.get(sid.flow, 0) + 1
            constraint_rows.append((k, counts))

        def build(scale: float) -> LinearProgram:
            lp = LinearProgram()
            for fid in flow_ids:
                lp.add_variable(f"r_{fid}", objective_coeff=1.0)
            for k, counts in constraint_rows:
                lp.add_constraint(
                    {f"r_{fid}": float(n) for fid, n in counts.items()},
                    b,
                    label=f"local-clique-{k}@{node}",
                )
            for fid in flow_ids:
                lp.set_lower_bound(f"r_{fid}", bounds[fid] * scale)
            return lp

        weights = {f"r_{fid}": flow_by_id[fid].weight for fid in flow_ids}
        lp = build(1.0)
        solution = lexicographic_maxmin(
            lp, weights, fix_objective=True, backend=self.backend
        )
        if not solution.is_optimal:
            scale = self._max_bound_scale(constraint_rows, bounds, b)
            lp = build(scale)
            solution = lexicographic_maxmin(
                lp, weights, fix_objective=True, backend=self.backend
            )
        if not solution.is_optimal:
            raise RuntimeError(
                f"local LP at {node!r} is {solution.status}:\n{lp.pretty()}"
            )
        problem = LocalProblem(
            node=node,
            flow_ids=flow_ids,
            lp=lp,
            solution=solution,
            basic_per_unit=per_unit,
        )
        self.problems[node] = problem
        return problem

    def _max_bound_scale(
        self,
        constraint_rows,
        bounds: Mapping[str, float],
        capacity: float,
    ) -> float:
        """Largest λ with ``Σ n_{i,k} (λ · bound_i) <= B`` for all cliques."""
        scale = 1.0
        for _, counts in constraint_rows:
            load = sum(bounds[fid] * n for fid, n in counts.items())
            if load > 0:
                scale = min(scale, capacity / load)
        # Back off slightly so the scaled bounds are strictly feasible.
        return scale * (1.0 - 1e-12)

    # ------------------------------------------------------------------
    # Step 5: adopt source-local shares
    # ------------------------------------------------------------------
    def run(self) -> AllocationResult:
        """Execute the whole protocol; each flow takes its source's share.

        When an unreliable channel reports anything other than full
        convergence, the run degrades gracefully instead of solving local
        LPs from incomplete constraint views: confirmed flows keep their
        LP share, unconfirmed flows are clamped to their basic share, and
        a capacity governor enforces Eq. (6) on the mixture (see
        :func:`repro.resilience.degrade.degraded_allocation`).
        """
        with phase_timer("2pad.run"), \
                span("2pad.run",
                     lossy=self.channel is not None) as run_span:
            self.build_local_views()
            self.propagate_constraints()
            if (self.channel is not None
                    and self.convergence.get("status") != "converged"):
                from ..resilience.degrade import degraded_allocation

                result = degraded_allocation(self)
                self._shares = dict(result.shares)
                incr("2pad.runs")
                incr("2pad.degraded_runs")
                run_span.tag(degraded=True)
                return result
            run_span.tag(degraded=False)
            for flow in self.scenario.flows:
                problem = self.problems.get(flow.source) or self.solve_local(
                    flow.source
                )
                self._shares[flow.flow_id] = problem.solution[
                    f"r_{flow.flow_id}"
                ]
            if self.channel is not None:
                # Resilient mode promises Eq. (6) under *every* fault
                # plan, including a fully converged one: the local LPs
                # bound each source's view but do not globally prevent a
                # clique from being oversubscribed by independently
                # solved sources, so run the capacity governor here too.
                from ..resilience.degrade import (
                    enforce_clique_capacity,
                    global_basic_shares,
                )

                safe, clamped = enforce_clique_capacity(
                    self.analysis, self._shares,
                    floors=global_basic_shares(self.analysis),
                )
                if clamped:
                    self._shares = safe
                    incr("resilience.degrade.capacity_clamp")
        incr("2pad.runs")
        return AllocationResult(
            "distributed-local-lp",
            dict(self._shares),
            self.scenario.capacity,
        )

    def local_problem_for_flow(self, flow_id: str) -> LocalProblem:
        """The local LP solved at ``flow_id``'s source (after ``run``)."""
        flow = self.scenario.flow(flow_id)
        if flow.source not in self.problems:
            raise KeyError(f"run() has not solved {flow.source!r} yet")
        return self.problems[flow.source]


def run_distributed(
    scenario: Scenario,
    backend: str = "simplex",
    analysis: ContentionAnalysis = None,
    channel=None,
) -> AllocationResult:
    """One-shot convenience wrapper (2PA-D phase 1)."""
    return DistributedAllocator(
        scenario, backend, analysis=analysis, channel=channel
    ).run()
