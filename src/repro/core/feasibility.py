"""Schedule feasibility of allocation strategies (Sec. III-B, Fig. 5).

A set of per-subflow rates is *schedulable* when the channel can be
time-shared among independent sets of the subflow contention graph (sets
that may transmit concurrently) so that each subflow ``s`` transmits for at
least a fraction ``r_s / B`` of the time.  Formally, with maximal
independent sets ``S_1..S_p`` and time fractions ``t_1..t_p``:

    minimize  Σ t_q   s.t.   Σ_{q: s ∈ S_q} t_q >= r_s / B,  t_q >= 0

The allocation is feasible iff the optimum is <= 1.  The paper's pentagon
example (Fig. 5) is the canonical case where the Prop. 1 clique bound
(B/2 per flow) yields a fractional schedule length of 5/4 > 1 — cliques
are necessary but not sufficient conditions for schedulability.

When an allocation is infeasible, the paper reuses it as a set of *weight
factors* ("allocated shares") to drive phase 2; :func:`max_feasible_scaling`
computes how far a given share vector can actually be realized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..graphs import Graph, maximal_independent_sets
from ..lp import LinearProgram, solve
from .contention import ContentionAnalysis
from .model import SubflowId


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a schedulability check."""

    feasible: bool
    schedule_length: float            # minimal Σ t_q (<= 1 means feasible)
    schedule: Dict[FrozenSet, float]  # independent set -> time fraction

    @property
    def utilization(self) -> float:
        """Fraction of channel time the schedule needs."""
        return self.schedule_length


def check_schedulability(
    graph: Graph,
    subflow_rates: Mapping[SubflowId, float],
    capacity: float = 1.0,
    backend: str = "simplex",
) -> FeasibilityReport:
    """Fractional-schedule feasibility of per-subflow rates.

    ``graph`` is the subflow contention graph; every key of
    ``subflow_rates`` must be one of its vertices.
    """
    for sid in subflow_rates:
        if not graph.has_vertex(sid):
            raise KeyError(f"subflow {sid} not in contention graph")
    demands = {
        sid: rate / capacity for sid, rate in subflow_rates.items()
        if rate > 0
    }
    if not demands:
        return FeasibilityReport(True, 0.0, {})

    ind_sets = maximal_independent_sets(graph)
    # LP in maximization form: maximize -Σ t_q.
    lp = LinearProgram()
    set_vars: List[Tuple[str, FrozenSet]] = []
    for q, s in enumerate(ind_sets):
        var = f"t_{q}"
        lp.add_variable(var, objective_coeff=-1.0)
        set_vars.append((var, s))
    for sid, demand in demands.items():
        # Σ_{q: sid ∈ S_q} t_q >= demand   <=>   -Σ ... <= -demand
        coeffs = {
            var: -1.0 for var, s in set_vars if sid in s
        }
        if not coeffs:
            # Vertex in no independent set is impossible ({sid} itself is
            # independent), but guard against inconsistent inputs.
            return FeasibilityReport(False, float("inf"), {})
        lp.add_constraint(coeffs, -demand, label=f"demand:{sid}")
    sol = solve(lp, backend)
    if not sol.is_optimal:
        return FeasibilityReport(False, float("inf"), {})
    length = -sol.objective
    schedule = {
        s: sol.values.get(var, 0.0)
        for var, s in set_vars
        if sol.values.get(var, 0.0) > 1e-12
    }
    return FeasibilityReport(length <= 1.0 + 1e-9, length, schedule)


def check_allocation_schedulability(
    analysis: ContentionAnalysis,
    flow_shares: Mapping[str, float],
    capacity: float = None,
    backend: str = "simplex",
) -> FeasibilityReport:
    """Schedulability of an equal-per-hop flow allocation.

    Expands flow shares into per-subflow rates (each hop of flow ``i``
    demands ``r̂_i``) and runs :func:`check_schedulability`.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    rates: Dict[SubflowId, float] = {}
    for flow in analysis.scenario.flows:
        share = flow_shares.get(flow.flow_id, 0.0)
        for sub in flow.subflows:
            rates[sub.sid] = share
    return check_schedulability(analysis.graph, rates, b, backend)


def max_feasible_scaling(
    graph: Graph,
    subflow_rates: Mapping[SubflowId, float],
    capacity: float = 1.0,
    backend: str = "simplex",
) -> float:
    """Largest λ such that ``λ · rates`` is schedulable.

    For a feasible allocation λ >= 1.  For the pentagon's B/2 shares,
    λ = 4/5: the realizable uniform share is 2B/5, not B/2.
    """
    report = check_schedulability(graph, subflow_rates, capacity, backend)
    if report.schedule_length <= 0:
        return float("inf")
    return 1.0 / report.schedule_length
