"""Flow and network model (Sec. II-A of the paper).

The paper's world consists of:

* a set of wireless **nodes**, each with a position and a common
  transmission range (250 m in the evaluation);
* **multi-hop flows** ``F_i``: a weighted, source-routed sequence of nodes;
* **subflows** ``F_{i.j}``: the j-th single-hop transmission of flow
  ``F_i`` (1-based, counting from the source), inheriting the flow's
  weight (``w_{i.j} = w_i``).

Two subflows *contend* when the source or destination of one is within
transmission range of the source or destination of the other.  This module
defines the data model; contention-graph construction lives in
:mod:`repro.core.contention`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

NodeId = str


@dataclass(frozen=True)
class SubflowId:
    """Identifier ``F_{i.j}`` of the j-th hop of flow ``i`` (j is 1-based)."""

    flow: str
    hop: int

    def __str__(self) -> str:
        return f"F{self.flow}.{self.hop}"

    def __lt__(self, other: "SubflowId") -> bool:
        return (self.flow, self.hop) < (other.flow, other.hop)


@dataclass(frozen=True)
class Subflow:
    """A single-hop transmission: ``sender -> receiver`` for one flow hop."""

    sid: SubflowId
    sender: NodeId
    receiver: NodeId
    weight: float

    @property
    def flow_id(self) -> str:
        return self.sid.flow

    @property
    def hop(self) -> int:
        return self.sid.hop

    def __str__(self) -> str:
        return f"{self.sid} ({self.sender}->{self.receiver})"


@dataclass
class Flow:
    """A multi-hop flow: an end-to-end path with a preassigned weight.

    ``path`` lists the traversed nodes from source to destination, so an
    ``l``-hop flow has ``len(path) == l + 1``.
    """

    flow_id: str
    path: List[NodeId]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError(
                f"flow {self.flow_id!r} needs at least 2 nodes, "
                f"got {self.path!r}"
            )
        if len(set(self.path)) != len(self.path):
            raise ValueError(f"flow {self.flow_id!r} revisits a node")
        if self.weight <= 0:
            raise ValueError(
                f"flow {self.flow_id!r} weight must be positive, "
                f"got {self.weight}"
            )

    @property
    def source(self) -> NodeId:
        return self.path[0]

    @property
    def destination(self) -> NodeId:
        return self.path[-1]

    @property
    def length(self) -> int:
        """Hop count ``l_i``."""
        return len(self.path) - 1

    @property
    def virtual_length(self) -> int:
        """``v_i = min(l_i, 3)`` for a shortcut-free flow (Sec. II-D)."""
        return virtual_length(self.length)

    @property
    def subflows(self) -> List[Subflow]:
        """Subflows ``F_{i.1}, ..., F_{i.l_i}`` in path order."""
        return [
            Subflow(
                SubflowId(self.flow_id, j + 1),
                self.path[j],
                self.path[j + 1],
                self.weight,
            )
            for j in range(self.length)
        ]

    def subflow(self, hop: int) -> Subflow:
        """Subflow ``F_{i.hop}`` (1-based)."""
        if not 1 <= hop <= self.length:
            raise IndexError(
                f"flow {self.flow_id!r} has hops 1..{self.length}, "
                f"asked for {hop}"
            )
        return self.subflows[hop - 1]

    def __str__(self) -> str:
        return f"F{self.flow_id}[{'->'.join(self.path)}] w={self.weight:g}"


def virtual_length(length: int) -> int:
    """Virtual length ``v = min(l, 3)``.

    A shortcut-free flow of 3+ hops can 3-color its subflows into
    concurrently-transmitting sets (Fig. 3), so it consumes channel time as
    if it were exactly 3 hops long.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return min(length, 3)


@dataclass
class Network:
    """Node positions plus a common transmission/interference range.

    ``tx_range`` doubles as the interference range, matching the paper's
    evaluation setup (both set to 250 m).  When ``links`` is given
    explicitly, positions become optional and range checks use the given
    adjacency instead — convenient for abstract topologies such as the
    pentagon contention example.
    """

    positions: Dict[NodeId, Tuple[float, float]] = field(default_factory=dict)
    tx_range: float = 250.0
    explicit_links: Optional[Set[frozenset]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, x: float, y: float) -> None:
        if node in self.positions:
            raise ValueError(f"duplicate node {node!r}")
        self.positions[node] = (float(x), float(y))

    @classmethod
    def from_positions(
        cls,
        positions: Dict[NodeId, Tuple[float, float]],
        tx_range: float = 250.0,
    ) -> "Network":
        return cls(dict(positions), float(tx_range))

    @classmethod
    def from_links(
        cls,
        nodes: Iterable[NodeId],
        links: Iterable[Tuple[NodeId, NodeId]],
    ) -> "Network":
        """Abstract topology: adjacency given directly, no geometry."""
        net = cls({n: (0.0, 0.0) for n in nodes}, tx_range=0.0)
        net.explicit_links = {frozenset(l) for l in links}
        for link in net.explicit_links:
            for n in link:
                if n not in net.positions:
                    raise ValueError(f"link references unknown node {n!r}")
        return net

    # ------------------------------------------------------------------
    # Geometry / adjacency
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self.positions)

    def distance(self, a: NodeId, b: NodeId) -> float:
        (xa, ya), (xb, yb) = self.positions[a], self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    def in_range(self, a: NodeId, b: NodeId) -> bool:
        """Whether ``a`` and ``b`` can hear each other (a != b required)."""
        if a == b:
            return True
        if self.explicit_links is not None:
            return frozenset((a, b)) in self.explicit_links
        return self.distance(a, b) <= self.tx_range + 1e-9

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """All other nodes within transmission range of ``node``."""
        return [n for n in self.positions if n != node and self.in_range(node, n)]

    def links(self) -> List[Tuple[NodeId, NodeId]]:
        """All bidirectional links, each reported once."""
        out: List[Tuple[NodeId, NodeId]] = []
        nodes = self.nodes
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if self.in_range(a, b):
                    out.append((a, b))
        return out

    # ------------------------------------------------------------------
    # Flow validation
    # ------------------------------------------------------------------
    def validate_flow(self, flow: Flow) -> None:
        """Check every hop of ``flow`` is a usable wireless link."""
        for sub in flow.subflows:
            if sub.sender not in self.positions:
                raise ValueError(f"{flow}: unknown node {sub.sender!r}")
            if sub.receiver not in self.positions:
                raise ValueError(f"{flow}: unknown node {sub.receiver!r}")
            if not self.in_range(sub.sender, sub.receiver):
                raise ValueError(
                    f"{flow}: hop {sub} exceeds transmission range"
                )

    def has_shortcut(self, flow: Flow) -> bool:
        """True if non-consecutive path nodes are in range (Fig. 3(a)).

        The virtual-length argument assumes shortcut-free paths; routing
        protocols that find shortest paths produce these naturally.
        """
        path = flow.path
        for i in range(len(path)):
            for j in range(i + 2, len(path)):
                if self.in_range(path[i], path[j]):
                    return True
        return False


@dataclass
class Scenario:
    """A complete experiment input: network topology plus flows."""

    network: Network
    flows: List[Flow]
    name: str = ""
    capacity: float = 1.0  # effective channel capacity B (normalized)

    def __post_init__(self) -> None:
        ids = [f.flow_id for f in self.flows]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate flow ids in scenario {self.name!r}")
        for flow in self.flows:
            self.network.validate_flow(flow)

    @property
    def flow_ids(self) -> List[str]:
        return [f.flow_id for f in self.flows]

    def flow(self, flow_id: str) -> Flow:
        for f in self.flows:
            if f.flow_id == flow_id:
                return f
        raise KeyError(f"no flow {flow_id!r} in scenario {self.name!r}")

    def all_subflows(self) -> List[Subflow]:
        """Every subflow of every flow, flows in order, hops ascending."""
        return [s for f in self.flows for s in f.subflows]

    def weights(self) -> Dict[str, float]:
        """Flow-id -> weight map."""
        return {f.flow_id: f.weight for f in self.flows}

    def virtual_lengths(self) -> Dict[str, int]:
        """Flow-id -> virtual length map."""
        return {f.flow_id: f.virtual_length for f in self.flows}
