"""Allocation strategies from Secs. II-D and III.

Four strategies, in increasing sophistication:

1. :func:`naive_allocation` — Eq. (2): split B over all subflows using true
   hop counts (ignores intra-flow spatial reuse).
2. :func:`basic_allocation` — basic shares using virtual lengths.
3. :func:`fairness_constrained_allocation` — the Prop. 1 point: shares
   exactly proportional to weights, scaled until the tightest clique
   saturates (``r̂_i = w_i B / ω_Ω``).
4. :func:`basic_fairness_lp_allocation` — Prop. 2: the LP
   ``max Σ r̂_i  s.t.  Σ_i n_{i,k} r̂_i <= B,  r̂_i >= basic_i``, the
   paper's optimal strategy under basic fairness.

Plus the *single-hop* optimum used by the two-tier baseline comparison:
:func:`single_hop_optimal_allocation` maximizes aggregate per-subflow
throughput with per-subflow basic shares, refined max-min fair among
optima — reproducing the (3B/4, B/4, 3B/8, 3B/8) example of Sec. III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..lp import LinearProgram, LPSolution, lexicographic_maxmin, solve
from .bounds import fairness_upper_bound
from .contention import ContentionAnalysis
from .fairness_defs import basic_shares, naive_subflow_shares
from .model import Flow, SubflowId


@dataclass
class AllocationResult:
    """Per-flow equal-per-hop shares, with provenance for reporting."""

    strategy: str
    shares: Dict[str, float]                 # flow id -> r̂_i
    capacity: float
    lp: Optional[LinearProgram] = None
    lp_solution: Optional[LPSolution] = None
    subflow_shares: Dict[SubflowId, float] = field(default_factory=dict)

    @property
    def total_effective_throughput(self) -> float:
        """Σ u_i = Σ r̂_i for equal-per-hop allocations."""
        return float(sum(self.shares.values()))

    def share(self, flow_id: str) -> float:
        return self.shares[flow_id]

    def normalized(self) -> Dict[str, float]:
        """Shares as fractions of B."""
        return {f: s / self.capacity for f, s in self.shares.items()}

    def subflow_share(self, sid: SubflowId) -> float:
        """Share of one subflow (equal-per-hop unless overridden)."""
        if sid in self.subflow_shares:
            return self.subflow_shares[sid]
        return self.shares[sid.flow]


def naive_allocation(
    analysis: ContentionAnalysis, capacity: float = None
) -> AllocationResult:
    """Eq. (2): B split across all subflows by true hop count."""
    b = capacity if capacity is not None else analysis.scenario.capacity
    shares: Dict[str, float] = {}
    for group in analysis.groups:
        shares.update(naive_subflow_shares(group, b))
    return AllocationResult("naive-subflow", shares, b)


def basic_allocation(
    analysis: ContentionAnalysis, capacity: float = None
) -> AllocationResult:
    """Basic shares with virtual lengths (Sec. II-D)."""
    b = capacity if capacity is not None else analysis.scenario.capacity
    shares: Dict[str, float] = {}
    for group in analysis.groups:
        shares.update(basic_shares(group, b))
    return AllocationResult("basic-share", shares, b)


def fairness_constrained_allocation(
    analysis: ContentionAnalysis, capacity: float = None
) -> AllocationResult:
    """Prop. 1 allocation: weight-proportional shares at the clique limit.

    Each contending flow group scales independently; within a group,
    ``r̂_i = w_i B / ω_Ω(group)``.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    shares: Dict[str, float] = {}
    for group in analysis.groups:
        group_ids = {f.flow_id for f in group}
        group_graph = analysis.graph.subgraph(
            [v for v in analysis.graph if v.flow in group_ids]
        )
        weights = {v: float(group_graph.attr(v, "weight", 1.0))
                   for v in group_graph}
        from ..graphs import weighted_clique_number

        omega = weighted_clique_number(group_graph, weights)
        if omega <= 0:
            raise ValueError("empty contention group")
        for f in group:
            shares[f.flow_id] = f.weight * b / omega
    return AllocationResult("fairness-constrained", shares, b)


def build_basic_fairness_lp(
    analysis: ContentionAnalysis,
    group: Sequence[Flow],
    capacity: float,
) -> LinearProgram:
    """Assemble the Prop. 2 LP for one contending flow group.

    Variables are named ``r_<flow_id>``; one capacity constraint per
    maximal clique touching the group, one lower bound per flow.
    """
    lp = LinearProgram()
    group_ids = [f.flow_id for f in group]
    group_set = set(group_ids)
    for fid in group_ids:
        lp.add_variable(f"r_{fid}", objective_coeff=1.0)
    for k, clique in enumerate(analysis.cliques):
        coeffs = analysis.clique_coefficients(clique)
        if not set(coeffs) & group_set:
            continue
        lp.add_constraint(
            {f"r_{fid}": float(n) for fid, n in coeffs.items()
             if fid in group_set},
            capacity,
            label=f"clique-{k}:{'+'.join(sorted(str(s) for s in clique))}",
        )
    basic = basic_shares(group, capacity)
    for fid in group_ids:
        lp.set_lower_bound(f"r_{fid}", basic[fid])
    return lp


def basic_fairness_lp_allocation(
    analysis: ContentionAnalysis,
    capacity: float = None,
    backend: str = "simplex",
    refine_maxmin: bool = True,
) -> AllocationResult:
    """Prop. 2: maximize total effective throughput under basic fairness.

    This is the centralized phase-1 computation of 2PA.  Each contending
    flow group is solved independently.  The LP's optimum may be attained
    on a whole face (Fig. 6's LP is an example: r̂_2 + r̂_3 = B admits any
    split with r̂_2 in [B/8, B/3]); ``refine_maxmin`` selects the
    weighted-max-min-fair vertex among the optima, which is the solution
    the paper reports.  Raises ``RuntimeError`` if any group LP is
    infeasible — impossible in theory (basic shares are always feasible,
    Sec. III-B), so it would indicate a modelling bug.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    shares: Dict[str, float] = {}
    last_lp: Optional[LinearProgram] = None
    last_sol: Optional[LPSolution] = None
    for group in analysis.groups:
        lp = build_basic_fairness_lp(analysis, group, b)
        if refine_maxmin:
            weights = {f"r_{f.flow_id}": f.weight for f in group}
            sol = lexicographic_maxmin(lp, weights, fix_objective=True,
                                       backend=backend)
        else:
            sol = solve(lp, backend)
        if not sol.is_optimal:
            raise RuntimeError(
                f"basic-fairness LP unexpectedly {sol.status}:\n{lp.pretty()}"
            )
        for f in group:
            shares[f.flow_id] = sol[f"r_{f.flow_id}"]
        last_lp, last_sol = lp, sol
    return AllocationResult(
        "basic-fairness-lp", shares, b, lp=last_lp, lp_solution=last_sol
    )


def single_hop_optimal_allocation(
    analysis: ContentionAnalysis,
    capacity: float = None,
    backend: str = "simplex",
) -> AllocationResult:
    """Two-tier analysis: per-*subflow* shares, single-hop objective.

    maximize ``Σ_{i,j} r_{i.j}`` subject to per-clique capacity and
    per-subflow basic shares ``r_{i.j} >= w_{i.j} B / Σ w v`` computed over
    subflows... The paper's two-tier guarantees each *subflow* a basic
    share of ``w_{i.j} B / ω'`` where in the Fig. 1 example all four
    subflows receive B/4 — i.e. the basic share denominator counts each
    subflow individually within its group, with intra-flow reuse applied at
    the subflow level (each subflow is its own 1-hop flow: v = 1).

    Among throughput-optimal points the allocation is refined to be
    weighted max-min fair, matching the (3B/4, B/4, 3B/8, 3B/8) example.

    The resulting end-to-end flow throughputs (min over hops) are reported
    in ``shares``; raw subflow shares are in ``subflow_shares``.
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    flow_by_id = {f.flow_id: f for f in analysis.scenario.flows}
    subflow_shares: Dict[SubflowId, float] = {}

    for group in analysis.groups:
        group_ids = {f.flow_id for f in group}
        members: List[SubflowId] = [
            s.sid for f in group for s in f.subflows
        ]
        lp = LinearProgram()
        weights: Dict[str, float] = {}
        for sid in members:
            var = f"r_{sid}"
            lp.add_variable(var, objective_coeff=1.0)
            weights[var] = flow_by_id[sid.flow].weight
        for k, clique in enumerate(analysis.cliques):
            touched = [sid for sid in clique if sid.flow in group_ids]
            if not touched:
                continue
            lp.add_constraint(
                {f"r_{sid}": 1.0 for sid in touched},
                b,
                label=f"clique-{k}",
            )
        # Per-subflow basic shares: every subflow is a 1-hop flow (v = 1).
        denom = sum(f.weight * f.length for f in group)
        for sid in members:
            lp.set_lower_bound(
                f"r_{sid}", flow_by_id[sid.flow].weight * b / denom
            )
        sol = lexicographic_maxmin(lp, weights, fix_objective=True,
                                   backend=backend)
        if not sol.is_optimal:
            raise RuntimeError(
                f"single-hop LP unexpectedly {sol.status}:\n{lp.pretty()}"
            )
        for sid in members:
            subflow_shares[sid] = sol[f"r_{sid}"]

    flow_throughputs = {
        f.flow_id: min(subflow_shares[s.sid] for s in f.subflows)
        for f in analysis.scenario.flows
    }
    result = AllocationResult(
        "single-hop-optimal", flow_throughputs, b,
        subflow_shares=subflow_shares,
    )
    return result


def total_single_hop_throughput(result: AllocationResult) -> float:
    """Aggregate per-subflow throughput (prior work's objective)."""
    if result.subflow_shares:
        return float(sum(result.subflow_shares.values()))
    raise ValueError("allocation has no per-subflow shares")


def feasible_fairness_allocation(
    analysis: ContentionAnalysis,
    capacity: float = None,
    backend: str = "simplex",
) -> AllocationResult:
    """The *achievable* fairness-constrained optimum.

    Prop. 1's clique bound ``w_i B / ω_Ω`` is not always schedulable (the
    pentagon, Fig. 5).  This strategy keeps shares exactly proportional
    to weights but scales them to the largest factor a fractional
    schedule (time-sharing of independent sets) can actually serve —
    yielding 2B/5 per flow on the pentagon instead of the unattainable
    B/2.  For clique-tight topologies (Figs. 1, 6) it coincides with the
    Prop. 1 allocation.
    """
    from .feasibility import max_feasible_scaling

    b = capacity if capacity is not None else analysis.scenario.capacity
    bound = fairness_constrained_allocation(analysis, b)
    rates = {
        sub.sid: bound.share(flow.flow_id)
        for flow in analysis.scenario.flows
        for sub in flow.subflows
    }
    scale = max_feasible_scaling(analysis.graph, rates, b, backend)
    scale = min(scale, 1.0)
    shares = {fid: share * scale for fid, share in bound.shares.items()}
    return AllocationResult("feasible-fairness", shares, b)
