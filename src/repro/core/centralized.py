"""Phase 1, centralized form (Sec. IV-A): 2PA-C.

A centralized coordinator (e.g. a base station in a hybrid network):

1. collects a :class:`FlowReport` from every flow source — the flow's
   weight and virtual length (derivable at the source from routing state
   or two-hop neighborhood information, since ``v_i = min(l_i, 3)``);
2. collects per-node subflow observations to assemble the global weighted
   subflow contention graph;
3. enumerates its maximal cliques and solves the Prop. 2 LP;
4. broadcasts the allocation strategy (the *allocated shares*) back to all
   nodes, where phase 2 uses them as scheduling weights.

The numeric result is identical to
:func:`repro.core.allocation.basic_fairness_lp_allocation`; this module
additionally models the information flow so the reporting/collection logic
is testable on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .allocation import AllocationResult, basic_fairness_lp_allocation
from .contention import ContentionAnalysis
from .model import Flow, NodeId, Scenario, SubflowId


@dataclass(frozen=True)
class FlowReport:
    """What a flow source reports to the centralized node."""

    flow_id: str
    source: NodeId
    weight: float
    length: int
    virtual_length: int

    @classmethod
    def from_flow(cls, flow: Flow) -> "FlowReport":
        return cls(
            flow_id=flow.flow_id,
            source=flow.source,
            weight=flow.weight,
            length=flow.length,
            virtual_length=flow.virtual_length,
        )


@dataclass(frozen=True)
class SubflowObservation:
    """A node's report of one outgoing subflow (sender-side observation)."""

    reporter: NodeId
    sid: SubflowId
    receiver: NodeId
    weight: float


def collect_flow_reports(scenario: Scenario) -> List[FlowReport]:
    """Every source's report, in flow order."""
    return [FlowReport.from_flow(f) for f in scenario.flows]


def collect_subflow_observations(
    scenario: Scenario,
) -> List[SubflowObservation]:
    """Each node reports the subflows originating from itself (Sec. IV-A)."""
    observations: List[SubflowObservation] = []
    for flow in scenario.flows:
        for sub in flow.subflows:
            observations.append(
                SubflowObservation(
                    reporter=sub.sender,
                    sid=sub.sid,
                    receiver=sub.receiver,
                    weight=sub.weight,
                )
            )
    return observations


class CentralizedCoordinator:
    """The centralized phase-1 engine.

    Usage::

        coordinator = CentralizedCoordinator(scenario)
        result = coordinator.run()          # AllocationResult
        broadcast = coordinator.broadcast() # node -> its subflow shares
    """

    def __init__(self, scenario: Scenario, backend: str = "simplex") -> None:
        self.scenario = scenario
        self.backend = backend
        self.reports = collect_flow_reports(scenario)
        self.observations = collect_subflow_observations(scenario)
        self.analysis = ContentionAnalysis(scenario)
        self._result: AllocationResult = None

    def run(self) -> AllocationResult:
        """Solve the global Prop. 2 LP over each contending flow group."""
        self._result = basic_fairness_lp_allocation(
            self.analysis, backend=self.backend
        )
        return self._result

    @property
    def result(self) -> AllocationResult:
        if self._result is None:
            self.run()
        return self._result

    def broadcast(self) -> Dict[NodeId, Dict[SubflowId, float]]:
        """Allocation strategy delivered to every node.

        A node receives the allocated share of every subflow it transmits
        (sender-side scheduling state for phase 2).
        """
        result = self.result
        per_node: Dict[NodeId, Dict[SubflowId, float]] = {}
        for flow in self.scenario.flows:
            for sub in flow.subflows:
                per_node.setdefault(sub.sender, {})[sub.sid] = result.share(
                    flow.flow_id
                )
        return per_node

    def allocated_shares(self) -> Dict[str, float]:
        """Flow-id -> allocated share (the phase-2 weight factors)."""
        return dict(self.result.shares)


def run_centralized(
    scenario: Scenario, backend: str = "simplex"
) -> AllocationResult:
    """One-shot convenience wrapper around the coordinator."""
    return CentralizedCoordinator(scenario, backend).run()
