"""Proposition 1: throughput upper bound under the fairness constraint.

With shares proportional to weights (``r̂_i = w_i r̂_0``), every maximal
clique ``Ω_k`` of the subflow contention graph imposes
``ω_{Ω_k} r̂_0 <= B``; hence ``r̂_0 <= B/ω_Ω`` with ``ω_Ω`` the weighted
clique number, and the total effective throughput is bounded by
``(Σ w_i) B / ω_Ω``.  The bound is tight when a feasible schedule exists,
but not always (the pentagon of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from .contention import ContentionAnalysis
from .model import Flow


@dataclass(frozen=True)
class FairnessBound:
    """Proposition-1 quantities for one contending flow group."""

    weighted_clique_number: float     # ω_Ω
    per_unit_share: float             # B / ω_Ω (channel share per unit weight)
    flow_shares: Dict[str, float]     # w_i * B / ω_Ω
    total_effective_throughput: float # Σ w_i B / ω_Ω

    def share(self, flow_id: str) -> float:
        return self.flow_shares[flow_id]


def fairness_upper_bound(
    analysis: ContentionAnalysis, capacity: float = None
) -> FairnessBound:
    """Compute Proposition 1's bound from a contention analysis.

    Raises ``ValueError`` when the scenario has no subflows (``ω_Ω = 0``).
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    omega = analysis.weighted_clique_number()
    if omega <= 0:
        raise ValueError("weighted clique number is zero — no subflows")
    per_unit = b / omega
    shares = {
        f.flow_id: f.weight * per_unit for f in analysis.scenario.flows
    }
    return FairnessBound(
        weighted_clique_number=omega,
        per_unit_share=per_unit,
        flow_shares=shares,
        total_effective_throughput=sum(shares.values()),
    )


def bound_vs_basic_consistency(
    analysis: ContentionAnalysis, capacity: float = None
) -> bool:
    """Sanity relation below Prop. 1: ``ω_Ω <= Σ w_i v_i``.

    In the maximal clique each flow contributes at most ``v_i`` subflows,
    so the bound's denominator never exceeds the basic-share denominator —
    i.e. the Prop. 1 per-flow share always dominates the basic share.
    """
    flows: Sequence[Flow] = analysis.scenario.flows
    omega = analysis.weighted_clique_number()
    return omega <= sum(f.weight * f.virtual_length for f in flows) + 1e-9


def max_subflows_per_clique(analysis: ContentionAnalysis) -> Dict[str, int]:
    """``max_k n_{i,k}`` per flow: most same-flow subflows in one clique.

    For shortcut-free flows this never exceeds the virtual length (at most
    3 consecutive hops are mutually in range); exposed for tests and
    diagnostics.
    """
    worst: Dict[str, int] = {
        f.flow_id: 0 for f in analysis.scenario.flows
    }
    for coeffs in analysis.all_coefficients():
        for flow_id, n in coeffs.items():
            worst[flow_id] = max(worst[flow_id], n)
    return worst
