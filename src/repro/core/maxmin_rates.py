"""Max-min fair rate allocation via progressive filling.

The paper's related work (Huang & Bensaou, ref. [5]) allocates *max-min
fair* shares to single-hop flows under clique constraints, with no
pre-assigned weights and no end-to-end coordination.  This module
implements that baseline directly with the classic progressive-filling
algorithm:

1. every subflow's rate grows at the same speed per unit weight;
2. when a clique saturates, all its members freeze;
3. repeat with the survivors until everyone is frozen.

For capacity regions defined by such linear "sum over clique <= B"
constraints, progressive filling yields exactly the lexicographically
max-min fair vector, so the result doubles as an independent
cross-check of :func:`repro.lp.lexicographic_maxmin` (with
``fix_objective=False``) — two very different algorithms, one answer.

Two entry points:

* :func:`maxmin_subflow_rates` — per-*subflow* max-min (the [5]
  baseline: each hop is its own flow);
* :func:`maxmin_flow_allocation` — per-*flow* equal-per-hop max-min
  (the same filling run on flow variables with clique coefficients
  ``n_{i,k}``), a weight-aware end-to-end variant for comparison with
  the paper's LP optimum.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .allocation import AllocationResult
from .contention import ContentionAnalysis
from .model import SubflowId

_EPS = 1e-12


def _progressive_fill(
    variables: Sequence[str],
    weights: Mapping[str, float],
    constraints: Sequence[Tuple[Mapping[str, float], float]],
) -> Dict[str, float]:
    """Generic progressive filling.

    ``constraints`` are (coefficients, bound) rows; every variable grows
    as ``rate = level * weight`` until a constraint it participates in
    becomes tight, at which point it freezes at its current value.
    """
    for v in variables:
        if weights[v] <= 0:
            raise ValueError(f"weight of {v!r} must be positive")
    frozen: Dict[str, float] = {}
    active = set(variables)
    guard = len(variables) + 1
    level = 0.0
    while active and guard:
        guard -= 1
        # Find the smallest level increment that saturates a constraint.
        best_delta = None
        for coeffs, bound in constraints:
            slack = bound - sum(
                coeffs.get(v, 0.0) * frozen.get(v, 0.0)
                for v in coeffs if v in frozen
            ) - sum(
                coeffs.get(v, 0.0) * level * weights[v]
                for v in coeffs if v in active
            )
            growth = sum(
                coeffs.get(v, 0.0) * weights[v]
                for v in coeffs if v in active
            )
            if growth > _EPS:
                delta = slack / growth
                if best_delta is None or delta < best_delta:
                    best_delta = delta
        if best_delta is None:
            raise ValueError(
                "some variable is unconstrained: max-min is unbounded"
            )
        level += max(best_delta, 0.0)
        # Freeze every variable in a now-tight constraint.
        newly_frozen = set()
        for coeffs, bound in constraints:
            used = sum(
                coeffs.get(v, 0.0) * (
                    frozen.get(v, level * weights[v])
                    if v in frozen or v in active else 0.0
                )
                for v in coeffs
            )
            if used >= bound - 1e-9:
                newly_frozen |= {v for v in coeffs if v in active}
        if not newly_frozen:
            newly_frozen = set(active)  # numerical safety net
        for v in newly_frozen:
            frozen[v] = level * weights[v]
        active -= newly_frozen
    return frozen


def maxmin_subflow_rates(
    analysis: ContentionAnalysis,
    capacity: float = None,
    weights: Optional[Mapping[SubflowId, float]] = None,
) -> Dict[SubflowId, float]:
    """[5]-style max-min fair per-subflow rates.

    Each subflow is treated as an independent single-hop flow; clique
    constraints are ``sum of member rates <= B``.  Unweighted by default
    (ref. [5] has no pre-assigned weights).
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    sids = [str(s) for s in analysis.subflow_ids()]
    by_name = {str(s): s for s in analysis.subflow_ids()}
    w = {
        str(s): float((weights or {}).get(s, 1.0))
        for s in analysis.subflow_ids()
    }
    constraints = [
        ({str(s): 1.0 for s in clique}, b)
        for clique in analysis.cliques
    ]
    rates = _progressive_fill(sids, w, constraints)
    return {by_name[name]: rate for name, rate in rates.items()}


def maxmin_flow_allocation(
    analysis: ContentionAnalysis,
    capacity: float = None,
) -> AllocationResult:
    """Weighted end-to-end max-min: equal-per-hop flow shares.

    Progressive filling over flow variables with clique coefficients
    ``n_{i,k}`` and the flows' pre-assigned weights.  Satisfies basic
    fairness by construction (no flow can freeze below its basic share:
    filling only stops at a tight clique, and the basic share is by
    definition feasible for every clique).
    """
    b = capacity if capacity is not None else analysis.scenario.capacity
    flow_ids = [f.flow_id for f in analysis.scenario.flows]
    weights = {f.flow_id: f.weight for f in analysis.scenario.flows}
    constraints = []
    for clique in analysis.cliques:
        coeffs = analysis.clique_coefficients(clique)
        constraints.append(
            ({fid: float(n) for fid, n in coeffs.items()}, b)
        )
    shares = _progressive_fill(flow_ids, weights, constraints)
    return AllocationResult("maxmin-flow", shares, b)


def maxmin_end_to_end_throughput(
    rates: Mapping[SubflowId, float],
    analysis: ContentionAnalysis,
) -> Dict[str, float]:
    """End-to-end throughput implied by per-subflow rates (min per flow)."""
    out: Dict[str, float] = {}
    for flow in analysis.scenario.flows:
        out[flow.flow_id] = min(
            rates[s.sid] for s in flow.subflows
        )
    return out
