"""Windowed time series of per-flow throughput.

Used for convergence analysis: how quickly do the phase-2 schedulers
drive measured rates to the allocated shares after a cold start or a
re-allocation event?  Deliveries are binned into fixed windows; each
flow's series can then be compared against its target share over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..traffic.cbr import US


@dataclass
class ThroughputSeries:
    """Per-flow delivery counts in fixed-size windows."""

    window_seconds: float
    counts: Dict[str, List[int]] = field(default_factory=dict)

    def record(self, flow_id: str, time_us: float) -> None:
        index = int(time_us / (self.window_seconds * US))
        series = self.counts.setdefault(flow_id, [])
        while len(series) <= index:
            series.append(0)
        series[index] += 1

    def rates(self, flow_id: str) -> List[float]:
        """Packets per second in each window."""
        return [
            c / self.window_seconds
            for c in self.counts.get(flow_id, [])
        ]

    def num_windows(self) -> int:
        return max((len(s) for s in self.counts.values()), default=0)

    def window_ratio(self, a: str, b: str, index: int) -> Optional[float]:
        """Throughput ratio of two flows in one window (None if b idle)."""
        sa = self.counts.get(a, [])
        sb = self.counts.get(b, [])
        va = sa[index] if index < len(sa) else 0
        vb = sb[index] if index < len(sb) else 0
        return va / vb if vb else None

    def convergence_window(
        self,
        targets: Mapping[str, float],
        tolerance: float = 0.2,
        settle: int = 2,
    ) -> Optional[int]:
        """First window from which ratios stay within ``tolerance``.

        Compares each pair of flows' windowed rates against the ratio of
        their target shares; returns the earliest window index ``k`` such
        that windows ``k .. k+settle-1`` all match, or ``None`` if the
        run never converges.
        """
        flows = [f for f in targets if targets[f] > 0]
        n = self.num_windows()
        for start in range(0, max(n - settle + 1, 0)):
            if all(
                self._window_ok(flows, targets, w, tolerance)
                for w in range(start, start + settle)
            ):
                return start
        return None

    def _window_ok(self, flows: Sequence[str],
                   targets: Mapping[str, float], window: int,
                   tolerance: float) -> bool:
        for i, a in enumerate(flows):
            for b in flows[i + 1:]:
                measured = self.window_ratio(a, b, window)
                if measured is None:
                    return False
                expected = targets[a] / targets[b]
                if abs(measured - expected) > tolerance * expected:
                    return False
        return True
