"""Evaluation metrics: throughput, loss, fairness, post-hoc analysis."""

from .collector import FlowMetrics, MetricsCollector
from .timeseries import ThroughputSeries
from .analysis import (
    AdherenceReport,
    LossBreakdown,
    intra_flow_balance,
    loss_breakdown,
    measured_fairness_index,
    share_adherence,
    utilization,
)

__all__ = [
    "MetricsCollector",
    "FlowMetrics",
    "AdherenceReport",
    "share_adherence",
    "measured_fairness_index",
    "intra_flow_balance",
    "LossBreakdown",
    "loss_breakdown",
    "utilization",
    "ThroughputSeries",
]
