"""Post-hoc analysis of measured results against allocation targets.

Bridges the simulation outputs (:class:`MetricsCollector`) and the
analytic layer: did the run satisfy the paper's fairness definitions?
How closely did measured throughput track the allocated shares?  Where
did the losses happen?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..core.fairness_defs import jain_index
from ..core.model import Scenario, SubflowId
from .collector import MetricsCollector


@dataclass(frozen=True)
class AdherenceReport:
    """How closely measured flow throughput tracked the target shares."""

    per_flow_ratio: Dict[str, float]   # measured / target, normalized
    adherence_index: float             # Jain index of the ratios (1 = exact)
    max_relative_error: float          # worst |ratio - mean| / mean

    @property
    def is_tight(self) -> bool:
        return self.max_relative_error < 0.15


def share_adherence(
    metrics: MetricsCollector,
    target_shares: Mapping[str, float],
) -> AdherenceReport:
    """Compare measured per-flow delivery against target shares.

    Only the *ratios* matter (the MAC cannot reach 100% channel
    utilization), so measured counts are normalized by the target shares
    and compared with each other.
    """
    ratios: Dict[str, float] = {}
    for fid, target in target_shares.items():
        if target <= 0:
            raise ValueError(f"target share of flow {fid!r} must be > 0")
        measured = metrics.flows[fid].delivered_end_to_end
        ratios[fid] = measured / target
    values = list(ratios.values())
    mean = sum(values) / len(values) if values else 0.0
    max_err = (
        max(abs(v - mean) for v in values) / mean if mean > 0 else 0.0
    )
    return AdherenceReport(
        per_flow_ratio=ratios,
        adherence_index=jain_index(values),
        max_relative_error=max_err,
    )


def measured_fairness_index(metrics: MetricsCollector,
                            weights: Optional[Mapping[str, float]] = None
                            ) -> float:
    """Jain index of measured weight-normalized end-to-end throughputs."""
    values = []
    for fid, flow_metrics in metrics.flows.items():
        w = float((weights or {}).get(fid, 1.0))
        values.append(flow_metrics.delivered_end_to_end / w)
    return jain_index(values)


def intra_flow_balance(metrics: MetricsCollector) -> Dict[str, float]:
    """Per flow: min/max ratio of its subflow delivery counts.

    1.0 means perfectly balanced hops (2PA's goal); small values mean an
    upstream hop outran a downstream one — the buffer-overflow signature
    of single-hop-fair schedulers.
    """
    out: Dict[str, float] = {}
    for flow in metrics.scenario.flows:
        counts = [
            metrics.subflow_delivered[s.sid] for s in flow.subflows
        ]
        hi = max(counts)
        out[flow.flow_id] = (min(counts) / hi) if hi > 0 else 1.0
    return out


@dataclass(frozen=True)
class LossBreakdown:
    """Where the in-network losses happened."""

    relay_queue_drops: Dict[str, int]
    downstream_mac_drops: Dict[str, int]
    source_drops: Dict[str, int]
    total_in_network: int

    def dominated_by_buffers(self) -> bool:
        """True when buffer overflow (not MAC retries) drives the losses."""
        q = sum(self.relay_queue_drops.values())
        m = sum(self.downstream_mac_drops.values())
        return q >= m


def loss_breakdown(metrics: MetricsCollector) -> LossBreakdown:
    """Split lost packets by mechanism and by flow."""
    return LossBreakdown(
        relay_queue_drops={
            fid: m.relay_queue_drops for fid, m in metrics.flows.items()
        },
        downstream_mac_drops={
            fid: m.mac_drops_downstream
            for fid, m in metrics.flows.items()
        },
        source_drops={
            fid: m.source_drops for fid, m in metrics.flows.items()
        },
        total_in_network=metrics.total_lost_packets(),
    )


def utilization(metrics: MetricsCollector,
                data_rate_mbps: float = 2.0,
                packet_bytes: int = 512) -> float:
    """Delivered end-to-end payload bits as a fraction of one channel.

    Values above 1.0 indicate spatial reuse (several regions active
    concurrently); the paper's "total effective throughput" normalized.
    """
    if metrics.duration <= 0:
        raise RuntimeError("run duration not set")
    bits = sum(
        m.delivered_end_to_end for m in metrics.flows.values()
    ) * packet_bytes * 8
    return bits / (metrics.duration * data_rate_mbps)
