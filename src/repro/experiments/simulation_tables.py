"""Tables II and III: the simulation experiments.

Runs every compared system on the paper's two scenarios and prints rows in
the paper's format (packets delivered per subflow, total effective
throughput, lost packets, loss ratio).

The paper simulates T = 1000 s in ns-2; a pure-Python event simulator is
two orders of magnitude slower, so the default session here is 40 s
(configurable) and counts scale accordingly — the claims under test are
about *ratios* between subflows and *ordering* between systems, which
stabilize within a few seconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.model import Scenario, SubflowId
from ..mac import MacTimings
from ..sim import NULL_TRACER, Tracer
from ..sched import (
    SystemBuild,
    TrafficConfig,
    build_2pa,
    build_80211,
    build_two_tier,
)
from ..scenarios import fig1, fig6

#: Default simulated session length (seconds).
DEFAULT_DURATION = 40.0


@dataclass
class SystemResult:
    """One column of a results table."""

    system: str
    subflow_packets: Dict[SubflowId, int]
    flow_packets: Dict[str, int]
    total_effective: int
    lost: int
    loss_ratio: float
    allocation: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record of this column (stable string keys)."""
        return {
            "system": self.system,
            "subflow_packets": {
                str(sid): count
                for sid, count in sorted(self.subflow_packets.items())
            },
            "flow_packets": dict(sorted(self.flow_packets.items())),
            "total_effective": self.total_effective,
            "lost": self.lost,
            "loss_ratio": self.loss_ratio,
            "allocation": (
                dict(sorted(self.allocation.items()))
                if self.allocation is not None else None
            ),
        }


@dataclass
class SimulationTable:
    """A full table: one scenario, several systems."""

    name: str
    scenario_name: str
    duration: float
    results: List[SystemResult] = field(default_factory=list)

    def column(self, system: str) -> SystemResult:
        for result in self.results:
            if result.system == system:
                return result
        raise KeyError(f"no column for system {system!r}")

    def to_dict(self) -> Dict[str, object]:
        """The whole table as one JSON-ready record."""
        return {
            "name": self.name,
            "scenario": self.scenario_name,
            "duration_s": self.duration,
            "systems": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        """Plain-text rendering in the paper's row order."""
        systems = [r.system for r in self.results]
        header = f"{'Parameters':<16}" + "".join(
            f"{s:>12}" for s in systems
        )
        lines = [
            f"== {self.name} (T = {self.duration:g} s simulated) ==",
            header,
        ]
        sids = sorted(self.results[0].subflow_packets)
        for sid in sids:
            row = f"r_{sid} T".ljust(16)
            row += "".join(
                f"{r.subflow_packets[sid]:>12}" for r in self.results
            )
            lines.append(row)
        lines.append(
            "sum r_i T".ljust(16)
            + "".join(f"{r.total_effective:>12}" for r in self.results)
        )
        lines.append(
            "lost packets".ljust(16)
            + "".join(f"{r.lost:>12}" for r in self.results)
        )
        lines.append(
            "loss ratio".ljust(16)
            + "".join(f"{r.loss_ratio:>12.3f}" for r in self.results)
        )
        return "\n".join(lines)


def _run_system(
    build: SystemBuild, duration: float
) -> SystemResult:
    metrics = build.run.run(seconds=duration)
    return SystemResult(
        system=build.name,
        subflow_packets=dict(metrics.subflow_delivered),
        flow_packets={
            fid: metrics.flows[fid].delivered_end_to_end
            for fid in metrics.flows
        },
        total_effective=metrics.total_effective_throughput_packets(),
        lost=metrics.total_lost_packets(),
        loss_ratio=metrics.loss_ratio(),
        allocation=(
            dict(build.allocation.shares) if build.allocation else None
        ),
    )


def run_table(
    scenario: Scenario,
    name: str,
    systems: Sequence[str],
    duration: float = DEFAULT_DURATION,
    seed: int = 1,
    alpha: Optional[float] = None,
    timings: Optional[MacTimings] = None,
    traffic: Optional[TrafficConfig] = None,
    tracer: Tracer = NULL_TRACER,
) -> SimulationTable:
    """Run the named ``systems`` on ``scenario`` and assemble a table.

    Recognized system names: ``802.11``, ``two-tier``, ``2PA-C``,
    ``2PA-D`` (and plain ``2PA`` as an alias for ``2PA-C``).  ``tracer``
    is shared by every system's run (enable categories before passing).
    """
    table = SimulationTable(name, scenario.name, duration)
    for system in systems:
        kwargs: Dict[str, object] = {"seed": seed, "timings": timings,
                                     "traffic": traffic, "tracer": tracer}
        if system == "802.11":
            build = build_80211(scenario, **kwargs)
        elif system == "two-tier":
            if alpha is not None:
                kwargs["alpha"] = alpha
            build = build_two_tier(scenario, **kwargs)
        elif system == "maxmin":
            if alpha is not None:
                kwargs["alpha"] = alpha
            from ..sched.systems import build_maxmin

            build = build_maxmin(scenario, **kwargs)
        elif system in ("2PA", "2PA-C"):
            if alpha is not None:
                kwargs["alpha"] = alpha
            build = build_2pa(scenario, "centralized", **kwargs)
        elif system == "2PA-D":
            if alpha is not None:
                kwargs["alpha"] = alpha
            build = build_2pa(scenario, "distributed", **kwargs)
        else:
            raise ValueError(f"unknown system {system!r}")
        table.results.append(_run_system(build, duration))
    return table


def run_table2(
    duration: float = DEFAULT_DURATION, seed: int = 1, **kwargs
) -> SimulationTable:
    """Table II: scenario 1 (Fig. 1), systems 802.11 / two-tier / 2PA."""
    scenario = fig1.make_scenario()
    return run_table(
        scenario, "Table II (scenario 1)",
        ["802.11", "two-tier", "2PA-C"], duration, seed, **kwargs
    )


def run_table3(
    duration: float = DEFAULT_DURATION, seed: int = 1, **kwargs
) -> SimulationTable:
    """Table III: scenario 2 (Fig. 6), all four systems."""
    scenario = fig6.make_scenario()
    return run_table(
        scenario, "Table III (scenario 2)",
        ["802.11", "two-tier", "2PA-C", "2PA-D"], duration, seed, **kwargs
    )
