"""Dynamic flow arrivals/departures with phase-1 re-allocation.

The paper computes its allocation for a fixed flow set; a deployable
system must react when flows join or leave.  This experiment exercises
exactly that: flows have activation windows, and whenever the active set
changes, phase 1 re-runs on the active flows and the new allocated shares
are pushed into every node's phase-2 scheduler
(:meth:`FairBackoffPolicy.update_shares`) — the distributed analogue of
the coordinator re-broadcasting the strategy.

The headline property: while an interfering flow is active, the remaining
flows' measured rates track the *recomputed* shares, and after it leaves
they climb back to the richer allocation — without restarting the MAC or
losing queued packets.

Re-allocation is delegated to the long-lived
:class:`~repro.resilience.runtime.AllocatorRuntime`: each membership
change becomes one epoch (diffed into flow-up/flow-down events by
:meth:`AllocatorRuntime.set_active`), which carries the same fast paths
this experiment used to wire by hand — incremental contention, warm LP
starts, per-active-set memoization — plus per-epoch Eq. (6)/basic-floor
validation.  Allocations are bit-identical to the old ad-hoc loop: the
runtime solves the same LP on the same incremental analysis in the same
order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import Flow, Scenario, SubflowId
from ..mac import MacTimings
from ..mac.policies import FairBackoffPolicy
from ..resilience.runtime import AllocatorRuntime, RuntimeConfig
from ..sched.runner import SimulationRun, TrafficConfig
from ..traffic.cbr import US


@dataclass(frozen=True)
class FlowSchedule:
    """Activation window of one flow (seconds; ``end=None`` = forever)."""

    flow_id: str
    start: float = 0.0
    end: Optional[float] = None

    def active_at(self, t: float) -> bool:
        return self.start <= t and (self.end is None or t < self.end)


@dataclass
class PhaseSnapshot:
    """Measured deliveries between two consecutive re-allocation events."""

    start: float
    end: float
    active_flows: List[str]
    allocated: Dict[str, float]
    delivered: Dict[str, int] = field(default_factory=dict)

    def rate(self, flow_id: str) -> float:
        """Delivered packets per second during this phase."""
        span = self.end - self.start
        return self.delivered.get(flow_id, 0) / span if span > 0 else 0.0


class DynamicAllocationExperiment:
    """Run a scenario whose flow set changes over time."""

    def __init__(
        self,
        scenario: Scenario,
        schedules: Sequence[FlowSchedule],
        seed: int = 1,
        alpha: float = 0.001,
        timings: Optional[MacTimings] = None,
        traffic: Optional[TrafficConfig] = None,
        incremental: bool = True,
        warm_lp: bool = True,
        memo_allocations: bool = True,
    ) -> None:
        by_id = {s.flow_id: s for s in schedules}
        missing = set(scenario.flow_ids) - set(by_id)
        if missing:
            raise ValueError(f"no schedule for flows {sorted(missing)}")
        self.scenario = scenario
        self.schedules = by_id
        self.alpha = alpha
        # Re-allocation fast paths (incremental contention, warm LP
        # starts, per-active-set memoization) live inside the runtime;
        # both paths produce bit-identical allocations to a cold rebuild
        # (asserted in tests/test_perf_incremental.py), so they default
        # on and the flags exist for A/B benchmarking.  Admission is off:
        # the schedule decides membership, not the controller.
        self.runtime = AllocatorRuntime(scenario, RuntimeConfig(
            seed=seed,
            admission=False,
            incremental=incremental,
            warm_lp=warm_lp,
            memo=memo_allocations,
        ))

        # All queues exist up front; shares start from the full-set
        # allocation and are re-pushed at every membership change.
        initial = self._allocate(scenario.flow_ids)
        per_node: Dict[str, Dict[SubflowId, float]] = {}
        for flow in scenario.flows:
            for sub in flow.subflows:
                per_node.setdefault(sub.sender, {})[sub.sid] = initial[
                    flow.flow_id
                ]

        def factory(node, t):
            return FairBackoffPolicy(node, t, per_node.get(node, {}),
                                     alpha=alpha)

        self.run_ctx = SimulationRun(
            scenario, factory, seed=seed, timings=timings, traffic=traffic
        )
        self.snapshots: List[PhaseSnapshot] = []

    # ------------------------------------------------------------------
    def _allocate(self, active_ids: Sequence[str]) -> Dict[str, float]:
        """Phase 1 on the currently active flow subset (one epoch)."""
        return self.runtime.set_active(active_ids)

    def _push_allocation(self, allocated: Dict[str, float]) -> None:
        """Broadcast the new strategy into every sender's policy."""
        per_node: Dict[str, Dict[SubflowId, float]] = {}
        for flow in self.scenario.flows:
            share = allocated.get(flow.flow_id)
            if share is None:
                continue
            for sub in flow.subflows:
                per_node.setdefault(sub.sender, {})[sub.sid] = share
        for node, shares in per_node.items():
            policy = self.run_ctx.macs[node].policy
            assert isinstance(policy, FairBackoffPolicy)
            policy.update_shares(shares)

    # ------------------------------------------------------------------
    def run(self, seconds: float) -> List[PhaseSnapshot]:
        """Execute the timeline; returns one snapshot per phase."""
        events = {0.0, seconds}
        for sched in self.schedules.values():
            if 0 < sched.start < seconds:
                events.add(sched.start)
            if sched.end is not None and 0 < sched.end < seconds:
                events.add(sched.end)
        timeline = sorted(events)

        sources = {
            src.flow.flow_id: src for src in self.run_ctx.sources
        }
        started = set()
        sim = self.run_ctx.sim
        prev_delivered: Dict[str, int] = {
            fid: 0 for fid in self.scenario.flow_ids
        }

        for begin, end in zip(timeline[:-1], timeline[1:]):
            active = [
                fid for fid, sched in self.schedules.items()
                if sched.active_at(begin)
            ]
            allocated = self._allocate(active)
            self._push_allocation(allocated)
            for fid in active:
                if fid not in started:
                    sources[fid].start()
                    started.add(fid)
            for fid, sched in self.schedules.items():
                if fid in started and not sched.active_at(begin):
                    sources[fid].stop()
            sim.run_until(end * US)
            snap = PhaseSnapshot(
                start=begin, end=end,
                active_flows=sorted(active),
                allocated=allocated,
            )
            for fid in self.scenario.flow_ids:
                now_count = self.run_ctx.metrics.flows[
                    fid
                ].delivered_end_to_end
                snap.delivered[fid] = now_count - prev_delivered[fid]
                prev_delivered[fid] = now_count
            self.snapshots.append(snap)

        self.run_ctx.metrics.duration = seconds * US
        return self.snapshots

    @property
    def metrics(self):
        return self.run_ctx.metrics
