"""Plain-text visualization of topologies, contention graphs, and results.

No plotting dependencies are available offline, so the experiment
reports render as ASCII: a scaled scatter of node positions with radio
links, adjacency matrices for contention graphs, and horizontal bar
charts for allocations and measured throughput.  These back the
``python -m repro`` reports and the examples.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.contention import ContentionAnalysis
from ..core.model import Network, Scenario, SubflowId


def render_topology(
    scenario: Scenario, width: int = 68, height: int = 18
) -> str:
    """ASCII map: node labels at scaled positions, ``*`` along links.

    Node labels win over link dots on collisions; flows are listed below
    the map with their paths.
    """
    net = scenario.network
    xs = [p[0] for p in net.positions.values()]
    ys = [p[1] for p in net.positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def cell(x: float, y: float):
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        return height - 1 - row, col  # y grows upward

    grid = [[" "] * width for _ in range(height)]
    # Links first (so labels overwrite them).
    for a, b in net.links():
        (ra, ca), (rb, cb) = cell(*net.positions[a]), cell(*net.positions[b])
        steps = max(abs(ra - rb), abs(ca - cb), 1)
        for s in range(steps + 1):
            r = round(ra + (rb - ra) * s / steps)
            c = round(ca + (cb - ca) * s / steps)
            grid[r][c] = "."
    for node, (x, y) in net.positions.items():
        r, c = cell(x, y)
        label = str(node)[: max(1, width - c)]
        for i, ch in enumerate(label):
            if c + i < width:
                grid[r][c + i] = ch

    lines = ["".join(row).rstrip() for row in grid]
    lines.append("")
    for flow in scenario.flows:
        lines.append(f"  {flow}")
    return "\n".join(lines)


def render_contention_matrix(analysis: ContentionAnalysis) -> str:
    """Adjacency matrix of the subflow contention graph (X = contend)."""
    sids: List[SubflowId] = sorted(analysis.graph.vertices())
    names = [str(s) for s in sids]
    label_w = max(len(n) for n in names) + 1
    header = " " * label_w + " ".join(f"{n:>{label_w}}" for n in names)
    lines = [header]
    for a, name in zip(sids, names):
        row = [f"{name:>{label_w}}"]
        for b in sids:
            mark = "X" if analysis.graph.has_edge(a, b) else "."
            row.append(f"{mark:>{label_w}}")
        lines.append(" ".join(row))
    lines.append("")
    for k, clique in enumerate(analysis.cliques):
        lines.append(
            f"  clique {k}: {{{', '.join(sorted(str(s) for s in clique))}}}"
        )
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    reference: Optional[Mapping[str, float]] = None,
) -> str:
    """Horizontal bar chart; optional reference values printed alongside."""
    if not values:
        return f"{title}\n  (empty)"
    peak = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key in values:
        v = values[key]
        bar = "#" * max(int(v / peak * width), 1 if v > 0 else 0)
        suffix = ""
        if reference is not None and key in reference:
            suffix = f"   (ref {reference[key]:.4g})"
        lines.append(f"  {str(key):>{label_w}} |{bar:<{width}} "
                     f"{v:.4g}{suffix}")
    return "\n".join(lines)


def render_allocation_comparison(
    allocations: Mapping[str, Mapping[str, float]],
    flow_ids: Sequence[str],
) -> str:
    """Side-by-side table of several allocation strategies."""
    strategies = list(allocations)
    col_w = max(12, max(len(s) for s in strategies) + 2)
    header = f"{'flow':>6}" + "".join(f"{s:>{col_w}}" for s in strategies)
    lines = [header]
    for fid in flow_ids:
        row = f"{fid:>6}"
        for s in strategies:
            row += f"{allocations[s].get(fid, 0.0):>{col_w}.4f}"
        lines.append(row)
    totals = f"{'total':>6}"
    for s in strategies:
        totals += f"{sum(allocations[s].values()):>{col_w}.4f}"
    lines.append(totals)
    return "\n".join(lines)
