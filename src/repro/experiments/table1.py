"""Table I: local optimization in the distributed algorithm (Fig. 6).

Reproduces, per flow source, the local cliques, the local LP, and its
solution, and compares the resulting 2PA-D allocation vector with both the
centralized optimum and the paper's printed values.

Reproduction note (also in DESIGN.md): node M, the source of F5, cannot
learn clique Ω5 = {F3.1, F4.1} under any uniform local-information rule —
no subflow of F3 is audible within M's two-hop neighborhood.  The paper's
Table I lumps nodes J, K, M into one row (implicitly granting M the LP
constructed at J), which yields r̂5 = B/2; our per-source semantics give
r̂5 = B/3.  All other rows match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core import (
    ContentionAnalysis,
    DistributedAllocator,
    run_centralized,
)
from ..core.distributed import LocalProblem
from ..scenarios import fig6


@dataclass
class Table1Row:
    source: str
    flow_id: str
    clique_constraints: List[str]
    basic_per_unit: float
    local_solution: Dict[str, float]
    adopted_share: float


@dataclass
class Table1Report:
    rows: List[Table1Row]
    distributed_shares: Dict[str, float]
    centralized_shares: Dict[str, float]
    paper_distributed: Dict[str, float]
    paper_centralized: Dict[str, float]
    convergence: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (stable keys, paper references included)."""
        return {
            "rows": [
                {
                    "source": row.source,
                    "flow_id": row.flow_id,
                    "clique_constraints": list(row.clique_constraints),
                    "basic_per_unit": row.basic_per_unit,
                    "local_solution": dict(sorted(row.local_solution.items())),
                    "adopted_share": row.adopted_share,
                }
                for row in self.rows
            ],
            "distributed_shares": dict(sorted(self.distributed_shares.items())),
            "centralized_shares": dict(sorted(self.centralized_shares.items())),
            "paper_distributed": dict(sorted(self.paper_distributed.items())),
            "paper_centralized": dict(sorted(self.paper_centralized.items())),
            "convergence": dict(self.convergence),
        }

    def render(self) -> str:
        lines = ["== Table I: distributed local optimization (Fig. 6) =="]
        for row in self.rows:
            lines.append(
                f"  source {row.source} (F{row.flow_id}): "
                f"basic/unit={row.basic_per_unit:.4f} "
                f"solution={{{', '.join(f'{k}={v:.4f}' for k, v in row.local_solution.items())}}} "
                f"-> r̂_{row.flow_id}={row.adopted_share:.4f}"
            )
        lines.append(f"  2PA-D shares: {_fmt(self.distributed_shares)}")
        lines.append(f"   (paper:      {_fmt(self.paper_distributed)})")
        lines.append(f"  2PA-C shares: {_fmt(self.centralized_shares)}")
        lines.append(f"   (paper:      {_fmt(self.paper_centralized)})")
        return "\n".join(lines)


def _fmt(shares: Dict[str, float]) -> str:
    return "(" + ", ".join(
        f"{shares[k]:.4f}" for k in sorted(shares)
    ) + ")"


def run_table1() -> Table1Report:
    """Execute phase 1 in both forms on Fig. 6 and assemble the report."""
    scenario = fig6.make_scenario()
    allocator = DistributedAllocator(scenario)
    distributed = allocator.run()
    centralized = run_centralized(scenario)

    rows: List[Table1Row] = []
    for flow in scenario.flows:
        problem: LocalProblem = allocator.problems[flow.source]
        constraints = [c.label for c in problem.lp.constraints]
        rows.append(
            Table1Row(
                source=flow.source,
                flow_id=flow.flow_id,
                clique_constraints=constraints,
                basic_per_unit=problem.basic_per_unit,
                local_solution=dict(problem.solution.values),
                adopted_share=distributed.share(flow.flow_id),
            )
        )
    return Table1Report(
        rows=rows,
        distributed_shares=dict(distributed.shares),
        centralized_shares=dict(centralized.shares),
        paper_distributed=dict(fig6.PAPER_DISTRIBUTED),
        paper_centralized=dict(fig6.PAPER_CENTRALIZED),
        convergence=dict(allocator.convergence),
    )
