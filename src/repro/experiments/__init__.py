"""Experiment harness: worked examples, Tables I-III, ablations."""

from .worked_examples import ALL_EXAMPLES, ExampleReport, run_all
from .table1 import Table1Report, run_table1
from .simulation_tables import (
    DEFAULT_DURATION,
    SimulationTable,
    SystemResult,
    run_table,
    run_table2,
    run_table3,
)
from .dynamic import (
    DynamicAllocationExperiment,
    FlowSchedule,
    PhaseSnapshot,
)
from .weighted import (
    WeightedResult,
    make_weighted_local_scenario,
    weighted_fig1,
    weighted_local_channel,
)
from .visualize import (
    render_allocation_comparison,
    render_bars,
    render_contention_matrix,
    render_topology,
)
from .report import ReproductionReport, build_report, build_report_record
from .replication import MetricStats, ReplicationReport, replicate_table
from .ablations import (
    ALL_ABLATIONS,
    SweepResult,
    alpha_sweep,
    buffer_sweep,
    cwmin_sweep,
    scaling_study,
    virtual_length_ablation,
)

__all__ = [
    "run_all",
    "ALL_EXAMPLES",
    "ExampleReport",
    "run_table1",
    "Table1Report",
    "run_table",
    "run_table2",
    "run_table3",
    "SimulationTable",
    "SystemResult",
    "DEFAULT_DURATION",
    "ALL_ABLATIONS",
    "SweepResult",
    "alpha_sweep",
    "cwmin_sweep",
    "buffer_sweep",
    "virtual_length_ablation",
    "scaling_study",
    "DynamicAllocationExperiment",
    "FlowSchedule",
    "PhaseSnapshot",
    "WeightedResult",
    "weighted_local_channel",
    "weighted_fig1",
    "make_weighted_local_scenario",
    "render_topology",
    "render_contention_matrix",
    "render_bars",
    "render_allocation_comparison",
    "ReproductionReport",
    "build_report",
    "build_report_record",
    "MetricStats",
    "ReplicationReport",
    "replicate_table",
]
