"""One-shot full reproduction report.

``python -m repro report`` renders everything a reviewer would want on
one screenful per section: topology art, the worked examples, Table I,
and the two simulation tables with the paper's reference values inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..perf.cache import cached_contention_analysis
from ..scenarios import fig1, fig6
from .simulation_tables import run_table2, run_table3
from .table1 import run_table1
from .visualize import render_contention_matrix, render_topology
from .worked_examples import run_all

PAPER_TABLE2 = (
    "paper Table II (ns-2, T = 1000 s):\n"
    "                  802.11   two-tier        2PA\n"
    "  r_1.1 T          16079      66658     111773\n"
    "  r_1.2 T            952      60992     111084\n"
    "  r_2.1 T         156517      65507      56404\n"
    "  r_2.2 T         151533      65507      56404\n"
    "  sum r_i T       152485     126499     167488\n"
    "  loss ratio       0.132      0.045      0.004"
)

PAPER_TABLE3 = (
    "paper Table III (ns-2, T = 1000 s):\n"
    "                  802.11   two-tier      2PA-C      2PA-D\n"
    "  sum r_i T       443204     394125     422162     352341\n"
    "  loss ratio       0.100      0.027      0.006      0.004"
)


@dataclass
class ReproductionReport:
    sections: List[str]

    def render(self) -> str:
        rule = "=" * 72
        return ("\n" + rule + "\n").join(self.sections)


def build_report(
    duration: float = 20.0,
    seed: int = 1,
    include_simulations: bool = True,
) -> ReproductionReport:
    """Assemble the full report (simulations optional for quick runs)."""
    sections: List[str] = []

    sections.append(
        "REPRODUCTION REPORT\n"
        "Baochun Li, 'End-to-End Fair Bandwidth Allocation in Multi-hop "
        "Wireless Ad Hoc Networks', ICDCS 2005\n"
        "Analytic results are exact; simulations run on our own "
        "discrete-event simulator\n(scaled-down sessions; compare ratios "
        "and orderings, see EXPERIMENTS.md)."
    )

    scenario1 = fig1.make_scenario()
    sections.append(
        "SCENARIO 1 (Fig. 1)\n\n"
        + render_topology(scenario1, width=64, height=8)
        + "\n\n"
        + render_contention_matrix(cached_contention_analysis(scenario1))
    )

    examples = run_all(verbose=False)
    example_lines = ["WORKED EXAMPLES (Figs. 1-5, Sec. III/IV-C)"]
    for report in examples:
        status = "OK " if report.matches() else "FAIL"
        example_lines.append(f"  [{status}] {report.name}")
    sections.append("\n".join(example_lines))

    table1 = run_table1()
    sections.append(table1.render())

    if include_simulations:
        table2 = run_table2(duration=duration, seed=seed)
        sections.append(table2.render() + "\n\n" + PAPER_TABLE2)
        table3 = run_table3(duration=duration, seed=seed)
        sections.append(table3.render() + "\n\n" + PAPER_TABLE3)

    return ReproductionReport(sections)


def build_report_record(
    duration: float = 20.0,
    seed: int = 1,
    include_simulations: bool = True,
) -> Dict[str, object]:
    """Machine-readable counterpart of :func:`build_report`.

    Returns nested records for the worked examples, Table I, and (when
    enabled) Tables II/III — the payload the CLI embeds in its run
    artifact under ``results``.
    """
    examples = run_all(verbose=False)
    record: Dict[str, object] = {
        "examples": [
            {"name": r.name, "matches": r.matches()} for r in examples
        ],
        "table1": run_table1().to_dict(),
    }
    if include_simulations:
        record["table2"] = run_table2(
            duration=duration, seed=seed
        ).to_dict()
        record["table3"] = run_table3(
            duration=duration, seed=seed
        ).to_dict()
    return record
