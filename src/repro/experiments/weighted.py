"""Weighted-flow experiments.

The paper's evaluation uses unit weights throughout ("identical weights
of 1 for each flow"), but the whole framework is weighted: basic shares,
the LPs, and the phase-2 tags all scale with ``w_i``.  These experiments
exercise that path end to end:

* :func:`weighted_local_channel` — three single-hop flows with weights
  (1, 2, 3) in one neighborhood: allocation must be (B/6, B/3, B/2) and
  the simulated throughput must track 1 : 2 : 3.
* :func:`weighted_fig1` — the Fig. 1 topology with unequal flow weights,
  reporting how the LP optimum and the simulated rates shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.allocation import basic_fairness_lp_allocation
from ..core.contention import ContentionAnalysis
from ..core.model import Flow, Network, Scenario
from ..metrics.analysis import share_adherence
from ..sched import build_2pa
from ..scenarios import fig1


@dataclass
class WeightedResult:
    weights: Dict[str, float]
    allocated: Dict[str, float]
    measured_packets: Dict[str, int]
    adherence_index: float

    def measured_ratio(self, a: str, b: str) -> float:
        return self.measured_packets[a] / max(self.measured_packets[b], 1)


def make_weighted_local_scenario(
    weights: Sequence[float] = (1.0, 2.0, 3.0)
) -> Scenario:
    """N single-hop flows, all inside one 250 m neighborhood."""
    positions = {}
    flows = []
    for i, w in enumerate(weights):
        positions[f"s{i}"] = (i * 40.0, 0.0)
        positions[f"d{i}"] = (i * 40.0, 60.0)
        flows.append(Flow(str(i + 1), [f"s{i}", f"d{i}"], float(w)))
    network = Network.from_positions(positions, tx_range=250.0)
    return Scenario(network, flows, name="weighted-local")


def weighted_local_channel(
    weights: Sequence[float] = (1.0, 2.0, 3.0),
    duration: float = 10.0,
    seed: int = 1,
) -> WeightedResult:
    """Allocation + simulation of weighted single-hop flows."""
    scenario = make_weighted_local_scenario(weights)
    analysis = ContentionAnalysis(scenario)
    allocation = basic_fairness_lp_allocation(analysis)
    build = build_2pa(scenario, "centralized", seed=seed,
                      analysis=analysis)
    metrics = build.run.run(seconds=duration)
    measured = {
        fid: metrics.flows[fid].delivered_end_to_end
        for fid in scenario.flow_ids
    }
    report = share_adherence(metrics, allocation.shares)
    return WeightedResult(
        weights=scenario.weights(),
        allocated=dict(allocation.shares),
        measured_packets=measured,
        adherence_index=report.adherence_index,
    )


def weighted_fig1(
    w1: float = 2.0,
    w2: float = 1.0,
    duration: float = 10.0,
    seed: int = 1,
) -> WeightedResult:
    """Fig. 1 topology with per-flow weights instead of unit weights."""
    network = Network.from_positions(fig1.POSITIONS, tx_range=250.0)
    flows = [
        Flow("1", ["A", "B", "C"], w1),
        Flow("2", ["D", "E", "F"], w2),
    ]
    scenario = Scenario(network, flows, name="fig1-weighted")
    analysis = ContentionAnalysis(scenario)
    allocation = basic_fairness_lp_allocation(analysis)
    build = build_2pa(scenario, "centralized", seed=seed,
                      analysis=analysis)
    metrics = build.run.run(seconds=duration)
    measured = {
        fid: metrics.flows[fid].delivered_end_to_end
        for fid in scenario.flow_ids
    }
    report = share_adherence(metrics, allocation.shares)
    return WeightedResult(
        weights=scenario.weights(),
        allocated=dict(allocation.shares),
        measured_packets=measured,
        adherence_index=report.adherence_index,
    )
