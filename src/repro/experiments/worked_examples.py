"""Analytic worked examples: Figs. 1-5 and the Sec. III/IV-C derivations.

Each function reproduces one of the paper's closed-form results and
returns a small report object; ``run_all`` prints them in the paper's
order.  These are the *analysis* half of the reproduction — the
simulation half lives in :mod:`repro.experiments.table2` / ``table3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core import (
    basic_fairness_lp_allocation,
    basic_shares,
    check_allocation_schedulability,
    fairness_constrained_allocation,
    fairness_upper_bound,
    naive_allocation,
    single_hop_optimal_allocation,
    total_single_hop_throughput,
)
from ..graphs import (
    chain_coloring,
    chain_contention_graph,
    color_classes,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)
from ..perf.cache import (
    cached_basic_fairness_allocation,
    cached_contention_analysis,
)
from ..scenarios import fig1, fig2, fig3, fig4, fig5


@dataclass
class ExampleReport:
    """One worked example: computed values plus the paper's references."""

    name: str
    computed: Dict[str, object] = field(default_factory=dict)
    reference: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def matches(self, tol: float = 1e-6) -> bool:
        """Whether every referenced numeric value matches the computed one."""
        for key, ref in self.reference.items():
            got = self.computed.get(key)
            if isinstance(ref, dict):
                if got is None:
                    return False
                for k, v in ref.items():
                    if abs(got.get(k, float("nan")) - v) > tol:
                        return False
            elif isinstance(ref, (int, float)):
                if got is None or abs(got - ref) > tol:
                    return False
            elif got != ref:
                return False
        return True

    def render(self) -> str:
        lines = [f"== {self.name} =="]
        for key in self.reference:
            lines.append(
                f"  {key}: computed={self.computed.get(key)}"
                f"  paper={self.reference[key]}"
            )
        for key, value in self.computed.items():
            if key not in self.reference:
                lines.append(f"  {key}: {value}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        lines.append(f"  MATCH: {self.matches()}")
        return "\n".join(lines)


def example_fig1() -> ExampleReport:
    """Fig. 1 + Sec. III worked comparison: end-to-end vs single-hop."""
    scenario = fig1.make_scenario()
    analysis = cached_contention_analysis(scenario)
    fairness = fairness_constrained_allocation(analysis)
    optimal = cached_basic_fairness_allocation(scenario)
    two_tier = single_hop_optimal_allocation(analysis)
    return ExampleReport(
        name="Fig. 1 / Sec. III comparison",
        computed={
            "basic_shares": basic_shares(scenario.flows),
            "fairness_allocation": fairness.shares,
            "optimal_allocation": optimal.shares,
            "optimal_total": optimal.total_effective_throughput,
            "two_tier_subflows": {
                (s.flow, s.hop): v
                for s, v in two_tier.subflow_shares.items()
            },
            "two_tier_flow_throughputs": two_tier.shares,
            "two_tier_effective_total": two_tier.total_effective_throughput,
            "two_tier_single_hop_total": total_single_hop_throughput(two_tier),
        },
        reference={
            "basic_shares": fig1.PAPER_BASIC_SHARES,
            "fairness_allocation": fig1.PAPER_FAIRNESS_ALLOCATION,
            "optimal_allocation": fig1.PAPER_BASIC_FAIRNESS_ALLOCATION,
            "optimal_total": 0.75,
            "two_tier_subflows": fig1.PAPER_TWO_TIER_SUBFLOWS,
            "two_tier_flow_throughputs": fig1.PAPER_TWO_TIER_FLOWS,
            "two_tier_effective_total": 0.625,
            "two_tier_single_hop_total": 1.75,
        },
        notes="2PA end-to-end total 3B/4 beats two-tier's effective 5B/8 "
              "despite losing on raw single-hop total (3B/2 vs 7B/4).",
    )


def example_fig2() -> ExampleReport:
    """Fig. 2: fairness definitions, single-hop vs multi-hop."""
    single = fig2.make_single_hop_scenario()
    single_alloc = fairness_constrained_allocation(
        cached_contention_analysis(single)
    )
    multi = fig2.make_multi_hop_scenario()
    unfair = fig2.unfair_time_share_allocation(multi)
    fair = cached_basic_fairness_allocation(multi)
    return ExampleReport(
        name="Fig. 2 fairness cases",
        computed={
            "single_hop_allocation": single_alloc.shares,
            "unfair_end_to_end": unfair,
            "fair_per_hop_shares": fair.shares,
        },
        reference={
            "single_hop_allocation": fig2.PAPER_SINGLE_HOP,
            "unfair_end_to_end": fig2.PAPER_UNFAIR_THROUGHPUT,
            "fair_per_hop_shares": fig2.PAPER_FAIR_SHARES,
        },
    )


def example_fig3() -> ExampleReport:
    """Fig. 3: virtual length via 3-coloring of a 6-hop chain."""
    scenario = fig3.make_chain_scenario(hops=6)
    flow = scenario.flows[0]
    graph = chain_contention_graph(6)
    coloring = chain_coloring(6)
    classes = [
        sorted(j + 1 for j in cls) for cls in color_classes(coloring)
    ]
    greedy = greedy_coloring(graph)
    shortcut = fig3.make_shortcut_scenario()
    return ExampleReport(
        name="Fig. 3 virtual length",
        computed={
            "virtual_length": flow.virtual_length,
            "colors_used": num_colors(coloring),
            "coloring_proper": is_proper_coloring(graph, coloring),
            "color_classes": classes,
            "greedy_colors": num_colors(greedy),
            "chain_has_shortcut": scenario.network.has_shortcut(flow),
            "displaced_has_shortcut": shortcut.network.has_shortcut(
                shortcut.flows[0]
            ),
        },
        reference={
            "virtual_length": 3,
            "colors_used": 3,
            "coloring_proper": True,
            "color_classes": fig3.PAPER_COLOR_CLASSES,
            "chain_has_shortcut": False,
            "displaced_has_shortcut": True,
        },
    )


def example_fig4() -> ExampleReport:
    """Fig. 4 + Sec. IV-C: the weighted contention graph LP."""
    analysis = fig4.make_analysis()
    basic = basic_shares(analysis.scenario.flows)
    optimal = basic_fairness_lp_allocation(analysis)
    subflow_shares = {
        str(s.sid): optimal.share(s.flow_id)
        for s in analysis.scenario.all_subflows()
    }
    return ExampleReport(
        name="Fig. 4 weighted subflow contention graph",
        computed={
            "basic_shares": basic,
            "allocated_shares": optimal.shares,
            "subflow_allocated_shares": subflow_shares,
        },
        reference={
            "basic_shares": fig4.PAPER_BASIC_SHARES,
            "allocated_shares": fig4.PAPER_ALLOCATION,
        },
        notes="subflow shares (3B/10, B/5, B/5, 3B/10, 7B/10) become the "
              "phase-2 scheduling weights.",
    )


def example_fig5() -> ExampleReport:
    """Fig. 5: the pentagon's unachievable clique bound."""
    analysis = fig5.make_analysis()
    bound = fairness_upper_bound(analysis)
    lp = basic_fairness_lp_allocation(analysis)
    report = check_allocation_schedulability(analysis, lp.shares)
    uniform = {f: fig5.ACHIEVABLE_UNIFORM_SHARE for f in lp.shares}
    achievable = check_allocation_schedulability(analysis, uniform)
    return ExampleReport(
        name="Fig. 5 pentagon",
        computed={
            "weighted_clique_number": bound.weighted_clique_number,
            "bound_total": bound.total_effective_throughput,
            "lp_shares": lp.shares,
            "lp_schedulable": report.feasible,
            "schedule_length": report.schedule_length,
            "uniform_2B5_schedulable": achievable.feasible,
        },
        reference={
            "weighted_clique_number": 2.0,
            "bound_total": fig5.PAPER_CLIQUE_BOUND_TOTAL,
            "lp_schedulable": False,
            "schedule_length": fig5.FRACTIONAL_SCHEDULE_LENGTH,
            "uniform_2B5_schedulable": True,
        },
        notes="The B/2-per-flow optimum needs 5/4 of the channel; the "
              "allocation is kept as phase-2 weight factors instead.",
    )


def example_naive_vs_basic() -> ExampleReport:
    """Sec. II-D: virtual length beats hop count in the basic shares."""
    scenario = fig3.make_chain_scenario(hops=6)
    analysis = cached_contention_analysis(scenario)
    naive = naive_allocation(analysis)
    from ..core import basic_allocation

    basic = basic_allocation(analysis)
    return ExampleReport(
        name="Eq. (2) naive vs virtual-length basic shares (6-hop chain)",
        computed={
            "naive_share": naive.share("1"),
            "basic_share": basic.share("1"),
        },
        reference={
            "naive_share": 1.0 / 6.0,
            "basic_share": 1.0 / 3.0,
        },
        notes="A 6-hop flow is entitled to the throughput of a 3-hop flow.",
    )


ALL_EXAMPLES = [
    example_fig1,
    example_fig2,
    example_fig3,
    example_fig4,
    example_fig5,
    example_naive_vs_basic,
]


def run_all(verbose: bool = True) -> List[ExampleReport]:
    """Run every worked example; optionally print the reports."""
    reports = [fn() for fn in ALL_EXAMPLES]
    if verbose:
        for report in reports:
            print(report.render())
            print()
    return reports
