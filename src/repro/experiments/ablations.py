"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's tables and probe *why* 2PA behaves as it does:

* ``alpha_sweep`` — strictness of the tag-based backoff (the paper's α):
  how share adherence and end-to-end fairness react.
* ``cwmin_sweep`` — the contention-window floor shared by every system.
* ``buffer_sweep`` — relay buffer size vs packets lost in the network
  (the paper's loss mechanism).
* ``virtual_length_ablation`` — the virtual-length cap (v = min(l, 3))
  vs naive hop counting, on chains of growing length (analytic).
* ``scaling_study`` — centralized vs distributed phase-1 quality on
  random topologies of growing size (analytic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import (
    ContentionAnalysis,
    basic_allocation,
    basic_fairness_lp_allocation,
    jain_index,
    naive_allocation,
    run_distributed,
    satisfies_basic_fairness,
)
from ..mac import MacTimings
from ..net.queues import DEFAULT_CAPACITY
from ..sched import build_2pa, build_80211, build_two_tier
from ..scenarios import fig1, fig3, make_random_scenario


@dataclass
class SweepPoint:
    parameter: float
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    name: str
    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, key: str) -> List[float]:
        return [p.values[key] for p in self.points]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record of the sweep."""
        return {
            "name": self.name,
            "parameter_name": self.parameter_name,
            "points": [
                {"parameter": p.parameter,
                 "values": dict(sorted(p.values.items()))}
                for p in self.points
            ],
        }

    def render(self) -> str:
        lines = [f"== {self.name} =="]
        keys = sorted(self.points[0].values) if self.points else []
        header = f"{self.parameter_name:>12}" + "".join(
            f"{k:>18}" for k in keys
        )
        lines.append(header)
        for p in self.points:
            row = f"{p.parameter:>12.5g}" + "".join(
                f"{p.values[k]:>18.5g}" for k in keys
            )
            lines.append(row)
        return "\n".join(lines)


def _share_adherence(measured: Dict[str, int],
                     target: Dict[str, float]) -> float:
    """Jain index of measured/target ratios: 1.0 = perfect adherence."""
    ratios = [
        measured[fid] / target[fid] for fid in target if target[fid] > 0
    ]
    return jain_index(ratios)


def alpha_sweep(
    alphas: Sequence[float] = (0.0, 0.001, 0.005, 0.02, 0.1),
    duration: float = 10.0,
    seed: int = 1,
) -> SweepResult:
    """2PA on Fig. 1: share adherence and loss vs α.

    α = 0 disables the tag feedback entirely (backoff always CW_min), so
    the sweep shows how much of 2PA's precision comes from the Q/R terms.
    """
    scenario = fig1.make_scenario()
    result = SweepResult("2PA alpha sweep (Fig. 1)", "alpha")
    for alpha in alphas:
        build = build_2pa(scenario, "centralized", seed=seed, alpha=alpha)
        metrics = build.run.run(seconds=duration)
        target = build.allocation.shares
        measured = {
            fid: metrics.flows[fid].delivered_end_to_end
            for fid in target
        }
        result.points.append(
            SweepPoint(alpha, {
                "share_adherence": _share_adherence(measured, target),
                "total_effective":
                    float(metrics.total_effective_throughput_packets()),
                "loss_ratio": metrics.loss_ratio(),
            })
        )
    return result


def cwmin_sweep(
    cwmins: Sequence[int] = (7, 15, 31, 63, 127),
    duration: float = 10.0,
    seed: int = 1,
) -> SweepResult:
    """802.11 vs 2PA on Fig. 1 across contention-window floors."""
    scenario = fig1.make_scenario()
    result = SweepResult("CWmin sweep (Fig. 1)", "cw_min")
    for cwmin in cwmins:
        timings = MacTimings(cw_min=cwmin)
        dcf = build_80211(scenario, seed=seed, timings=timings)
        m_dcf = dcf.run.run(seconds=duration)
        tpa = build_2pa(scenario, "centralized", seed=seed,
                        timings=timings)
        m_tpa = tpa.run.run(seconds=duration)
        result.points.append(
            SweepPoint(float(cwmin), {
                "dcf_total": float(
                    m_dcf.total_effective_throughput_packets()
                ),
                "dcf_loss_ratio": m_dcf.loss_ratio(),
                "tpa_total": float(
                    m_tpa.total_effective_throughput_packets()
                ),
                "tpa_loss_ratio": m_tpa.loss_ratio(),
            })
        )
    return result


def buffer_sweep(
    capacities: Sequence[int] = (5, 10, 25, 50, 100),
    duration: float = 10.0,
    seed: int = 1,
) -> SweepResult:
    """Relay buffer size vs in-network losses, two-tier vs 2PA (Fig. 1).

    Two-tier's upstream/downstream imbalance overflows any finite buffer;
    2PA's equal-per-hop shares keep relay queues short, so its losses stay
    near zero regardless of capacity — the paper's central claim about
    intra-flow coordination.
    """
    from ..mac.policies import DcfPolicy, FairBackoffPolicy
    from ..sched.runner import SimulationRun, subflow_shares_by_node
    from ..core import single_hop_optimal_allocation

    scenario = fig1.make_scenario()
    analysis = ContentionAnalysis(scenario)
    result = SweepResult("Relay buffer sweep (Fig. 1)", "buffer_pkts")
    two_tier_alloc = single_hop_optimal_allocation(analysis)
    tpa_alloc = basic_fairness_lp_allocation(analysis)
    tpa_shares = {
        s.sid: tpa_alloc.share(f.flow_id)
        for f in scenario.flows for s in f.subflows
    }
    for cap in capacities:
        values: Dict[str, float] = {}
        for label, shares in (
            ("two_tier", dict(two_tier_alloc.subflow_shares)),
            ("tpa", tpa_shares),
        ):
            per_node = subflow_shares_by_node(scenario, shares)

            def factory(node, t, per_node=per_node, cap=cap):
                return FairBackoffPolicy(
                    node, t, per_node.get(node, {}), queue_capacity=cap
                )

            run = SimulationRun(scenario, factory, seed=seed)
            metrics = run.run(seconds=duration)
            values[f"{label}_lost"] = float(metrics.total_lost_packets())
            values[f"{label}_loss_ratio"] = metrics.loss_ratio()
        result.points.append(SweepPoint(float(cap), values))
    return result


def virtual_length_ablation(
    hop_counts: Sequence[int] = (1, 2, 3, 4, 6, 8, 12),
) -> SweepResult:
    """Analytic: per-flow share with and without the virtual-length cap."""
    result = SweepResult("Virtual-length ablation (chains)", "hops")
    for hops in hop_counts:
        scenario = fig3.make_chain_scenario(hops=hops)
        analysis = ContentionAnalysis(scenario)
        naive = naive_allocation(analysis)
        basic = basic_allocation(analysis)
        optimal = basic_fairness_lp_allocation(analysis)
        result.points.append(
            SweepPoint(float(hops), {
                "naive_share": naive.share("1"),
                "basic_share": basic.share("1"),
                "lp_share": optimal.share("1"),
            })
        )
    return result


def _scaling_point(params: Dict[str, int]) -> SweepPoint:
    """One size of the scaling study; pure in its (seeded) parameters.

    Module-level so :func:`scaling_study` can fan sizes across worker
    processes — the per-size result depends only on ``params``.
    """
    scenario = make_random_scenario(
        num_nodes=params["size"], num_flows=params["flows"],
        seed=params["seed"], max_hops=5,
    )
    analysis = ContentionAnalysis(scenario)
    central = basic_fairness_lp_allocation(analysis)
    dist = run_distributed(scenario, analysis=analysis)
    return SweepPoint(float(params["size"]), {
        "centralized_total": central.total_effective_throughput,
        "distributed_total": dist.total_effective_throughput,
        "centralized_basic_ok": float(
            satisfies_basic_fairness(
                central.shares, scenario.flows, tol=1e-7
            )
        ),
        "num_cliques": float(len(analysis.cliques)),
    })


def scaling_study(
    sizes: Sequence[int] = (10, 15, 20, 25),
    flows_per_net: int = 4,
    seed: int = 7,
    jobs: int = 1,
) -> SweepResult:
    """Centralized vs distributed totals on random topologies.

    Also checks that both satisfy basic fairness (recorded as 1.0/0.0).
    Sizes are independent seeded tasks, so ``jobs > 1`` computes them in
    worker processes with a bit-identical result (``jobs=0``: all cores).
    """
    from ..perf.parallel import ParallelSweep

    tasks = [
        {"size": size, "flows": flows_per_net, "seed": seed}
        for size in sizes
    ]
    points = ParallelSweep(jobs).map(_scaling_point, tasks)
    result = SweepResult("Random-topology scaling", "nodes")
    result.points.extend(points)
    return result


def convergence_study(
    alphas: Sequence[float] = (0.0005, 0.001, 0.005, 0.02),
    duration: float = 12.0,
    window: float = 2.0,
    seed: int = 1,
) -> SweepResult:
    """How fast the 2PA scheduler converges to its allocated ratios.

    Runs Fig. 1 under 2PA with a windowed throughput series and reports
    the first window from which the measured flow-throughput ratios stay
    within 35% of the allocated 2:1 — larger α enforces the ratio faster
    (at some cost in total throughput, per the alpha sweep).
    """
    from ..mac.policies import FairBackoffPolicy
    from ..sched.runner import SimulationRun, subflow_shares_by_node

    scenario = fig1.make_scenario()
    analysis = ContentionAnalysis(scenario)
    allocation = basic_fairness_lp_allocation(analysis)
    shares = {
        s.sid: allocation.share(f.flow_id)
        for f in scenario.flows for s in f.subflows
    }
    per_node = subflow_shares_by_node(scenario, shares)
    result = SweepResult("2PA convergence (Fig. 1)", "alpha")
    for alpha in alphas:
        run = SimulationRun(
            scenario,
            lambda n, t, a=alpha: FairBackoffPolicy(
                n, t, per_node.get(n, {}), alpha=a
            ),
            seed=seed,
            series_window_seconds=window,
        )
        metrics = run.run(seconds=duration)
        k = metrics.series.convergence_window(
            allocation.shares, tolerance=0.35, settle=2
        )
        result.points.append(
            SweepPoint(alpha, {
                "converged_window": float(k) if k is not None else -1.0,
                "converged_second": (
                    k * window if k is not None else -1.0
                ),
                "total_effective": float(
                    metrics.total_effective_throughput_packets()
                ),
            })
        )
    return result


def mac_fidelity_study(
    duration: float = 8.0,
    seed: int = 1,
) -> SweepResult:
    """EIFS and capture-effect variants of the Fig. 1 comparison.

    Row parameter encodes the variant: 0 = baseline collision model,
    1 = EIFS enabled, 2 = capture at 10 dB, 3 = both.  The paper's
    qualitative conclusions should be robust to these PHY/MAC modelling
    choices — this study verifies that 2PA's loss advantage over plain
    802.11 survives each variant.
    """
    from ..mac import MacTimings, WirelessChannel
    from ..mac.policies import DcfPolicy, FairBackoffPolicy
    from ..sched.runner import SimulationRun, subflow_shares_by_node

    scenario = fig1.make_scenario()
    analysis = ContentionAnalysis(scenario)
    allocation = basic_fairness_lp_allocation(analysis)
    shares = {
        s.sid: allocation.share(f.flow_id)
        for f in scenario.flows for s in f.subflows
    }
    per_node = subflow_shares_by_node(scenario, shares)

    variants = [
        (0.0, False, None),
        (1.0, True, None),
        (2.0, False, 10.0),
        (3.0, True, 10.0),
    ]
    result = SweepResult("MAC fidelity variants (Fig. 1)", "variant")
    for code, use_eifs, capture in variants:
        timings = MacTimings(use_eifs=use_eifs)
        values: Dict[str, float] = {}
        for label, factory in (
            ("dcf", lambda n, t: DcfPolicy(n, t)),
            ("tpa", lambda n, t: FairBackoffPolicy(
                n, t, per_node.get(n, {}), alpha=0.001)),
        ):
            run = SimulationRun(scenario, factory, seed=seed,
                                timings=timings)
            run.channel.capture_threshold_db = capture
            if capture is not None:
                from ..phy.propagation import RadioParams

                run.channel.radio = RadioParams()
            metrics = run.run(seconds=duration)
            values[f"{label}_total"] = float(
                metrics.total_effective_throughput_packets()
            )
            values[f"{label}_loss_ratio"] = metrics.loss_ratio()
        result.points.append(SweepPoint(code, values))
    return result


ALL_ABLATIONS = {
    "alpha": alpha_sweep,
    "cwmin": cwmin_sweep,
    "buffer": buffer_sweep,
    "virtual-length": virtual_length_ablation,
    "scaling": scaling_study,
    "convergence": convergence_study,
    "mac-fidelity": mac_fidelity_study,
}
