"""Multi-seed replication of the simulation experiments.

One simulation run is one sample; the paper (like most ns-2 studies of
its era) reports single runs.  This harness replicates a table across
seeds and reports mean, standard deviation, and min/max per metric, so
claims can be checked for seed-robustness — e.g. "2PA's total effective
throughput exceeds two-tier's in *every* replication".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.model import Scenario
from .simulation_tables import SimulationTable, run_table


@dataclass(frozen=True)
class MetricStats:
    """Summary statistics of one metric across replications."""

    values: tuple
    mean: float
    stdev: float
    low: float
    high: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        vals = tuple(float(v) for v in values)
        n = len(vals)
        mean = sum(vals) / n
        var = sum((v - mean) ** 2 for v in vals) / (n - 1) if n > 1 else 0.0
        return cls(vals, mean, math.sqrt(var), min(vals), max(vals))

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.stdev:.1f} [{self.low:g}, {self.high:g}]"


@dataclass
class ReplicationReport:
    """Replicated table: per system, per metric, stats across seeds."""

    name: str
    seeds: List[int]
    systems: List[str]
    stats: Dict[str, Dict[str, MetricStats]]  # system -> metric -> stats
    tables: List[SimulationTable] = field(default_factory=list)

    def stat(self, system: str, metric: str) -> MetricStats:
        return self.stats[system][metric]

    def always_holds(self, predicate: Callable[[SimulationTable], bool]
                     ) -> bool:
        """Whether ``predicate`` is true of every replication."""
        return all(predicate(t) for t in self.tables)

    def render(self) -> str:
        lines = [f"== {self.name}: {len(self.seeds)} replications "
                 f"(seeds {self.seeds}) =="]
        metrics = ["total_effective", "lost", "loss_ratio"]
        header = f"{'system':>10}" + "".join(
            f"{m:>30}" for m in metrics
        )
        lines.append(header)
        for system in self.systems:
            row = f"{system:>10}"
            for metric in metrics:
                row += f"{str(self.stats[system][metric]):>30}"
            lines.append(row)
        return "\n".join(lines)


def replicate_table(
    scenario: Scenario,
    systems: Sequence[str],
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 10.0,
    name: str = "replication",
    **kwargs,
) -> ReplicationReport:
    """Run ``systems`` on ``scenario`` once per seed and aggregate."""
    if not seeds:
        raise ValueError("need at least one seed")
    tables = [
        run_table(scenario, f"{name}@seed{seed}", systems, duration,
                  seed=seed, **kwargs)
        for seed in seeds
    ]
    stats: Dict[str, Dict[str, MetricStats]] = {}
    for result0 in tables[0].results:
        system = result0.system
        samples: Dict[str, List[float]] = {
            "total_effective": [], "lost": [], "loss_ratio": [],
        }
        per_flow: Dict[str, List[float]] = {}
        for table in tables:
            column = table.column(system)
            samples["total_effective"].append(column.total_effective)
            samples["lost"].append(column.lost)
            samples["loss_ratio"].append(column.loss_ratio)
            for fid, pkts in column.flow_packets.items():
                per_flow.setdefault(f"u_{fid}", []).append(pkts)
        stats[system] = {
            metric: MetricStats.from_values(vals)
            for metric, vals in {**samples, **per_flow}.items()
        }
    return ReplicationReport(
        name=name,
        seeds=list(seeds),
        systems=[r.system for r in tables[0].results],
        stats=stats,
        tables=tables,
    )
