"""Discrete-event simulation kernel.

A minimal, deterministic event-heap simulator (the paper used ns-2; no
event-simulation package is available offline, so this is built from
scratch).  Time is a float in **microseconds**.  Events scheduled for the
same instant fire in scheduling order (a monotonically increasing sequence
number breaks ties), which keeps runs bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..obs.registry import get_registry

Callback = Callable[[], None]


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A handle to a scheduled callback; supports cancellation."""

    __slots__ = ("callback", "time", "cancelled")

    def __init__(self, callback: Callback, time: float) -> None:
        self.callback = callback
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run_until(100.0)
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._peak_queue_depth = 0

    @property
    def now(self) -> float:
        """Current simulation time (microseconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event heap (cancelled entries included)."""
        return self._peak_queue_depth

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callback) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        event = Event(callback, time)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), event))
        if len(self._heap) > self._peak_queue_depth:
            self._peak_queue_depth = len(self._heap)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``.

        The clock is left at ``end_time`` even if the heap empties early,
        so rate computations over the full horizon stay correct.
        """
        if end_time < self._now:
            raise ValueError(
                f"end_time {end_time} is before now ({self._now})"
            )
        start_events = self._events_processed
        wall_start = _time.perf_counter()
        self._running = True
        while self._heap and self._running:
            entry = self._heap[0]
            if entry.time > end_time:
                break
            heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.event.callback()
        self._now = max(self._now, end_time)
        self._running = False
        self._record_loop_metrics(start_events, wall_start, "sim.run_until")

    def run(self) -> None:
        """Drain every event in the heap (careful with self-rescheduling
        processes such as traffic sources — prefer :meth:`run_until`)."""
        start_events = self._events_processed
        wall_start = _time.perf_counter()
        while self.step():
            pass
        self._record_loop_metrics(start_events, wall_start, "sim.run")

    def _record_loop_metrics(self, start_events: int, wall_start: float,
                             phase: str) -> None:
        """Feed the active registry after an event-loop drain (if any).

        Deliberately outside the per-event loop: with no registry active
        the whole cost is one ``perf_counter`` call per drain, keeping
        instrumentation overhead far below the 2% budget.
        """
        registry = get_registry()
        if registry is None:
            return
        processed = self._events_processed - start_events
        elapsed = _time.perf_counter() - wall_start
        registry.timer(phase).add(elapsed)
        registry.counter("sim.events").inc(processed)
        registry.gauge("sim.queue_depth").set(len(self._heap))
        registry.gauge("sim.peak_queue_depth").set(self._peak_queue_depth)
        if elapsed > 0:
            registry.gauge("sim.events_per_sec").set(processed / elapsed)

    def stop(self) -> None:
        """Stop a ``run_until`` loop after the current event returns."""
        self._running = False

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.event.cancelled)
