"""Deterministic random-number streams.

Every stochastic decision in the simulator (backoff draws, traffic jitter,
topology generation) pulls from a named stream derived from a single
master seed, so any experiment is reproducible bit-for-bit and streams are
independent: adding a node does not perturb another node's draws.
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np


class RngRegistry:
    """Lazily creates one ``numpy.random.Generator`` per stream name.

    Stream seeds are derived from ``(master_seed, stable_hash(name))`` via
    ``SeedSequence``, so they are stable across runs and insertion orders.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[Hashable, np.random.Generator] = {}

    def stream(self, name: Hashable) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        if name not in self._streams:
            digest = _stable_hash(name)
            seq = np.random.SeedSequence([self.master_seed, digest])
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    def uniform_slots(self, name: Hashable, window: float) -> int:
        """A uniform integer draw in ``[0, floor(window)]`` for backoffs."""
        upper = max(int(window), 0)
        return int(self.stream(name).integers(0, upper + 1))


def _stable_hash(name: Hashable) -> int:
    """A hash that is stable across interpreter runs (unlike ``hash``)."""
    text = repr(name).encode("utf-8")
    value = 2166136261
    for byte in text:
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
