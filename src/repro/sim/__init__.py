"""Discrete-event simulation kernel: engine, RNG streams, tracing."""

from .engine import Event, Simulator
from .rng import RngRegistry
from .trace import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "RngRegistry",
    "Tracer",
    "TraceRecord",
    "NullTracer",
    "NULL_TRACER",
]
