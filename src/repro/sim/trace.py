"""Structured event tracing for the simulator.

Tracing is off by default (zero overhead beyond one branch); experiments
and tests enable the categories they care about.  Records are plain tuples
``(time, category, message, fields)`` retained in memory — the simulations
here are small enough that file-backed traces are unnecessary.  For disk
export, :func:`repro.obs.trace_to_records` flattens a tracer into
JSONL-ready dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def field(self, key: str, default: object = None) -> object:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time:12.1f}us] {self.category:<8} {self.message} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects for enabled categories.

    Categories used by the stack: ``mac`` (handshakes, timeouts), ``chan``
    (transmissions, collisions), ``queue`` (enqueue/drop), ``app``
    (arrivals/deliveries), ``sched`` (tag updates).

    Records are indexed per category on append, so :meth:`filter` and
    :meth:`count` cost O(records in that category) rather than scanning
    the full log — experiments routinely enable several categories and
    query only one.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self.enabled: Set[str] = set(categories or ())
        self.records: List[TraceRecord] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}

    def enable(self, *categories: str) -> None:
        self.enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self.enabled.difference_update(categories)

    def active(self, category: str) -> bool:
        return category in self.enabled

    def log(self, time: float, category: str, message: str,
            **fields: object) -> None:
        """Record an event if its category is enabled."""
        if category in self.enabled:
            record = TraceRecord(time, category, message,
                                 tuple(sorted(fields.items())))
            self.records.append(record)
            bucket = self._by_category.get(category)
            if bucket is None:
                bucket = self._by_category[category] = []
            bucket.append(record)

    def filter(self, category: str) -> List[TraceRecord]:
        return list(self._by_category.get(category, ()))

    def count(self, category: str, message_prefix: str = "") -> int:
        bucket = self._by_category.get(category)
        if not bucket:
            return 0
        if not message_prefix:
            return len(bucket)
        return sum(1 for r in bucket if r.message.startswith(message_prefix))

    def clear(self) -> None:
        self.records.clear()
        self._by_category.clear()


class NullTracer(Tracer):
    """The immutable, always-off tracer used for default wiring.

    The old module-level default was a plain ``Tracer()``: any component
    calling ``.enable()`` on it silently switched tracing on (and leaked
    records) for *every* object wired to the shared singleton.  This
    subclass ignores ``log`` unconditionally and rejects attempts to
    enable categories, so the hazard is structurally impossible.
    """

    def enable(self, *categories: str) -> None:
        raise TypeError(
            "NullTracer is immutable; construct a Tracer(categories) and "
            "pass it to the component instead of enabling the shared "
            "NULL_TRACER"
        )

    def log(self, time: float, category: str, message: str,
            **fields: object) -> None:
        pass

    def active(self, category: str) -> bool:
        return False


#: The shared always-off tracer for default wiring.  Immutable: see
#: :class:`NullTracer`.
NULL_TRACER = NullTracer()
