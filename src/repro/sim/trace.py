"""Structured event tracing for the simulator.

Tracing is off by default (zero overhead beyond one branch); experiments
and tests enable the categories they care about.  Records are plain tuples
``(time, category, message, fields)`` retained in memory — the simulations
here are small enough that file-backed traces are unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def field(self, key: str, default: object = None) -> object:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.time:12.1f}us] {self.category:<8} {self.message} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects for enabled categories.

    Categories used by the stack: ``mac`` (handshakes, timeouts), ``chan``
    (transmissions, collisions), ``queue`` (enqueue/drop), ``app``
    (arrivals/deliveries), ``sched`` (tag updates).
    """

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self.enabled: Set[str] = set(categories or ())
        self.records: List[TraceRecord] = []

    def enable(self, *categories: str) -> None:
        self.enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self.enabled.difference_update(categories)

    def active(self, category: str) -> bool:
        return category in self.enabled

    def log(self, time: float, category: str, message: str,
            **fields: object) -> None:
        """Record an event if its category is enabled."""
        if category in self.enabled:
            self.records.append(
                TraceRecord(time, category, message,
                            tuple(sorted(fields.items())))
            )

    def filter(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def count(self, category: str, message_prefix: str = "") -> int:
        return sum(
            1
            for r in self.records
            if r.category == category and r.message.startswith(message_prefix)
        )

    def clear(self) -> None:
        self.records.clear()


#: A tracer with everything disabled, for default wiring.
NULL_TRACER = Tracer()
