"""PHY substrate: propagation models and range computations."""

from .propagation import (
    RadioParams,
    can_decode,
    can_sense,
    carrier_sense_range,
    crossover_distance,
    decode_range,
    friis,
    received_power,
    two_ray_ground,
)

__all__ = [
    "RadioParams",
    "friis",
    "two_ray_ground",
    "received_power",
    "crossover_distance",
    "decode_range",
    "carrier_sense_range",
    "can_decode",
    "can_sense",
]
