"""Radio propagation models (ns-2's PHY substrate, rebuilt analytically).

The paper's evaluation uses ns-2's *Two Ray Ground Reflection* model with a
250 m transmission and interference range at the default 914 MHz WaveLAN
parameters.  We implement both Friis free-space and two-ray ground path
loss, the crossover distance between them, and the inverse problem
(range from a receive threshold) — and we verify in tests that the default
parameters reproduce the canonical 250 m disc the paper assumes.

Units: distances in meters, powers in watts, frequency in Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Speed of light (m/s).
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class RadioParams:
    """Transceiver parameters (defaults: ns-2's 914 MHz Lucent WaveLAN).

    ``rx_threshold`` is the minimum receive power for successful decoding
    (RXThresh); ``cs_threshold`` the carrier-sense threshold (CSThresh).
    ns-2's defaults put the decode range at ~250 m and the carrier-sense
    range at ~550 m; the paper sets both tx and interference range to
    250 m, which corresponds to equal thresholds.
    """

    tx_power: float = 0.28183815       # W (ns-2 default Pt for 250 m)
    frequency: float = 914e6           # Hz
    tx_gain: float = 1.0
    rx_gain: float = 1.0
    antenna_height: float = 1.5        # m
    system_loss: float = 1.0
    rx_threshold: float = 3.652e-10    # W (ns-2 RXThresh for 250 m)
    cs_threshold: float = 3.652e-10    # equal => interference range 250 m

    @property
    def wavelength(self) -> float:
        return SPEED_OF_LIGHT / self.frequency


def friis(distance: float, params: RadioParams = RadioParams()) -> float:
    """Free-space receive power at ``distance``.

    ``Pr = Pt Gt Gr λ² / ((4π d)² L)``; raises for non-positive distance.
    """
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")
    lam = params.wavelength
    return (
        params.tx_power * params.tx_gain * params.rx_gain * lam * lam
        / ((4.0 * math.pi * distance) ** 2 * params.system_loss)
    )


def crossover_distance(params: RadioParams = RadioParams()) -> float:
    """Distance where two-ray ground takes over from Friis.

    ``d_c = 4π ht hr / λ``: below it the ground reflection has not yet
    formed a stable two-ray pattern and free space applies.
    """
    return (
        4.0 * math.pi * params.antenna_height * params.antenna_height
        / params.wavelength
    )


def two_ray_ground(
    distance: float, params: RadioParams = RadioParams()
) -> float:
    """Two-ray ground reflection receive power (ns-2 semantics).

    Uses Friis below the crossover distance and
    ``Pr = Pt Gt Gr ht² hr² / (d⁴ L)`` beyond it.
    """
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")
    if distance < crossover_distance(params):
        return friis(distance, params)
    h2 = params.antenna_height * params.antenna_height
    return (
        params.tx_power * params.tx_gain * params.rx_gain * h2 * h2
        / (distance ** 4 * params.system_loss)
    )


def decode_range(params: RadioParams = RadioParams()) -> float:
    """Maximum distance at which receive power meets ``rx_threshold``."""
    return _range_for_threshold(params.rx_threshold, params)


def carrier_sense_range(params: RadioParams = RadioParams()) -> float:
    """Maximum distance at which a transmission is sensed (CSThresh)."""
    return _range_for_threshold(params.cs_threshold, params)


def _range_for_threshold(
    threshold: float, params: RadioParams
) -> float:
    """Invert the two-ray model: the distance where Pr == threshold."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    # Try the two-ray regime first: d = (Pt Gt Gr ht² hr² / (thr L))^(1/4).
    h2 = params.antenna_height * params.antenna_height
    d4 = (
        params.tx_power * params.tx_gain * params.rx_gain * h2 * h2
        / (threshold * params.system_loss)
    )
    d = d4 ** 0.25
    if d >= crossover_distance(params):
        return d
    # Otherwise solve in the Friis regime.
    lam = params.wavelength
    d2 = (
        params.tx_power * params.tx_gain * params.rx_gain * lam * lam
        / (threshold * params.system_loss * (4.0 * math.pi) ** 2)
    )
    return math.sqrt(d2)


def received_power(
    distance: float, params: RadioParams = RadioParams()
) -> float:
    """Alias for :func:`two_ray_ground` (the model the paper uses)."""
    return two_ray_ground(distance, params)


def can_decode(distance: float, params: RadioParams = RadioParams()) -> bool:
    """True when a frame at ``distance`` is decodable in isolation."""
    return received_power(distance, params) >= params.rx_threshold


def can_sense(distance: float, params: RadioParams = RadioParams()) -> bool:
    """True when energy at ``distance`` trips the carrier-sense circuit."""
    return received_power(distance, params) >= params.cs_threshold
