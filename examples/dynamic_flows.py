#!/usr/bin/env python3
"""Dynamic flow arrivals: re-allocating when the flow set changes.

Flow 1 runs for the whole session; flow 2 joins at t = 5 s and leaves at
t = 10 s.  At each membership change, phase 1 re-runs on the active flows
and the new allocated shares are pushed into every node's phase-2
scheduler — queued packets survive, virtual clocks resynchronize, and
stale neighbor-table entries age out.

Run:  python examples/dynamic_flows.py
"""

from repro.experiments import DynamicAllocationExperiment, FlowSchedule
from repro.experiments.visualize import render_bars
from repro.scenarios import fig1


def main() -> None:
    scenario = fig1.make_scenario()
    experiment = DynamicAllocationExperiment(scenario, [
        FlowSchedule("1", start=0.0),
        FlowSchedule("2", start=5.0, end=10.0),
    ], seed=3)

    snapshots = experiment.run(seconds=15.0)

    for snap in snapshots:
        print(f"\n[{snap.start:g} .. {snap.end:g} s]  "
              f"active flows: {snap.active_flows}")
        print("  re-computed allocation:",
              {k: round(v, 3) for k, v in snap.allocated.items()})
        rates = {fid: snap.rate(fid) for fid in scenario.flow_ids}
        print(render_bars(rates, "  measured rate (pkt/s)"))

    print("\nTakeaways:")
    alone = snapshots[0].rate("1")
    shared = snapshots[1].rate("1")
    recovered = snapshots[2].rate("1")
    print(f"  flow 1: {alone:.0f} pkt/s alone -> {shared:.0f} while "
          f"sharing -> {recovered:.0f} after flow 2 departs")
    print(f"  total in-network losses: "
          f"{experiment.metrics.total_lost_packets()} packets "
          f"(re-allocation does not destabilize the schedulers)")


if __name__ == "__main__":
    main()
