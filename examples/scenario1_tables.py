#!/usr/bin/env python3
"""Reproduce Table II: 802.11 vs two-tier vs 2PA on the Fig. 1 topology.

Runs a scaled-down version of the paper's scenario-1 simulation (the
paper simulates 1000 s in ns-2; pass ``--duration`` to change ours) and
prints the table in the paper's format, followed by the paper's reference
values for comparison.

Run:  python examples/scenario1_tables.py [--duration SECONDS]
"""

import argparse

from repro.experiments import run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=15.0,
                        help="simulated seconds (default 15)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    table = run_table2(duration=args.duration, seed=args.seed)
    print(table.render())

    print("\npaper's Table II (T = 1000 s in ns-2):")
    print("  parameters      802.11   two-tier        2PA")
    print("  r_1.1 T          16079      66658     111773")
    print("  r_1.2 T            952      60992     111084")
    print("  r_2.1 T         156517      65507      56404")
    print("  r_2.2 T         151533      65507      56404")
    print("  sum r_i T       152485     126499     167488")
    print("  lost packets     20111       5666        689")
    print("  loss ratio       0.132      0.045      0.004")

    tpa = table.column("2PA-C")
    dcf = table.column("802.11")
    print("\nreproduced shape:")
    print(f"  2PA total effective {tpa.total_effective} > "
          f"802.11 {dcf.total_effective}: "
          f"{tpa.total_effective > dcf.total_effective}")
    print(f"  2PA loss ratio {tpa.loss_ratio:.4f} << "
          f"802.11 {dcf.loss_ratio:.3f}")


if __name__ == "__main__":
    main()
