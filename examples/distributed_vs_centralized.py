#!/usr/bin/env python3
"""Centralized vs distributed phase 1 on the Fig. 6 topology (Table I).

Shows each flow source's *local* linear program — the cliques it learned
by overhearing, neighbor exchange, and intra-flow constraint propagation —
then compares the resulting 2PA-D allocation with the global 2PA-C
optimum, and finally simulates both to show the throughput gap the paper's
Table III reports.

Run:  python examples/distributed_vs_centralized.py
"""

from repro import DistributedAllocator, build_2pa, run_centralized
from repro.scenarios import fig6


def main() -> None:
    scenario = fig6.make_scenario()

    # Phase 1, distributed: inspect each source's local view.
    allocator = DistributedAllocator(scenario)
    distributed = allocator.run()
    print("=== per-source local optimization (paper's Table I) ===")
    for flow in scenario.flows:
        problem = allocator.problems[flow.source]
        print(f"\nsource {flow.source} (flow {flow.flow_id}):")
        print(f"  local basic share per unit weight: "
              f"{problem.basic_per_unit:.4f} x B")
        print("  local LP:")
        for line in problem.lp.pretty().splitlines():
            print("   ", line)
        print("  solution:", {
            k: round(v, 4) for k, v in problem.solution.values.items()
        })

    centralized = run_centralized(scenario)
    print("\n=== allocated shares (fractions of B) ===")
    print(f"{'flow':>6} {'2PA-C':>8} {'2PA-D':>8} {'paper C':>8} "
          f"{'paper D':>8}")
    for fid in scenario.flow_ids:
        print(f"{fid:>6} {centralized.share(fid):>8.4f} "
              f"{distributed.share(fid):>8.4f} "
              f"{fig6.PAPER_CENTRALIZED[fid]:>8.4f} "
              f"{fig6.PAPER_DISTRIBUTED[fid]:>8.4f}")
    print("(F5's 2PA-D share deviates from the paper by construction; "
          "see DESIGN.md)")

    # Phase 2: simulate both.
    print("\n=== simulating 10 s of each ===")
    for mode in ("centralized", "distributed"):
        build = build_2pa(scenario, mode=mode, seed=1)
        metrics = build.run.run(seconds=10.0)
        throughput = {
            fid: metrics.flows[fid].delivered_end_to_end
            for fid in scenario.flow_ids
        }
        print(f"{build.name}: per-flow pkts {throughput}, "
              f"total {metrics.total_effective_throughput_packets()}, "
              f"loss {metrics.loss_ratio():.4f}")
    print("\nThe centralized form wins on total effective throughput "
          "because local optimization misses remote constraints "
          "(Sec. IV-B / Table III).")


if __name__ == "__main__":
    main()
