#!/usr/bin/env python3
"""Quickstart: allocate bandwidth fairly in a small ad hoc network.

Builds a 6-node topology with two multi-hop flows, runs the paper's
analysis pipeline (contention graph -> cliques -> basic shares -> optimal
LP allocation), then simulates the 2PA scheduler for a few seconds and
compares measured throughput against the allocated shares.

Run:  python examples/quickstart.py
"""

from repro import (
    ContentionAnalysis,
    Flow,
    Network,
    Scenario,
    basic_fairness_lp_allocation,
    basic_shares,
    build_2pa,
    fairness_upper_bound,
)


def main() -> None:
    # 1. Topology: positions in meters, 250 m radio range.
    network = Network.from_positions({
        "A": (0, 0), "B": (200, 0), "C": (400, 0),
        "D": (520, 0), "E": (640, 0), "F": (860, 0),
    })

    # 2. Two 2-hop flows (this is the paper's Fig. 1 topology).
    flows = [
        Flow("alpha", ["A", "B", "C"], weight=1.0),
        Flow("beta", ["D", "E", "F"], weight=1.0),
    ]
    scenario = Scenario(network, flows, name="quickstart")

    # 3. Contention analysis: who competes with whom?
    analysis = ContentionAnalysis(scenario)
    print("subflow contention cliques:")
    for clique in analysis.cliques:
        print("   ", sorted(str(s) for s in clique))

    # 4. The allocation ladder.
    print("\nbasic shares (guaranteed minimum):",
          {k: round(v, 3) for k, v in basic_shares(flows).items()})
    bound = fairness_upper_bound(analysis)
    print("Prop. 1 upper bound per unit weight:",
          round(bound.per_unit_share, 3))
    allocation = basic_fairness_lp_allocation(analysis)
    print("optimal (basic-fairness LP) shares:",
          {k: round(v, 3) for k, v in allocation.shares.items()})
    print("total effective throughput:",
          round(allocation.total_effective_throughput, 3), "x B")

    # 5. Simulate the full 2PA system for 5 seconds of channel time.
    build = build_2pa(scenario, mode="centralized", seed=7)
    metrics = build.run.run(seconds=5.0)
    print("\nsimulated 5 s with 2PA phase-2 scheduling:")
    for flow in flows:
        measured = metrics.flow_throughput_fraction(flow.flow_id)
        target = allocation.share(flow.flow_id)
        print(f"   flow {flow.flow_id}: measured {measured:.3f} x B "
              f"(allocated {target:.3f} x B, "
              f"{metrics.flows[flow.flow_id].delivered_end_to_end} pkts)")
    print(f"   loss ratio: {metrics.loss_ratio():.4f}")


if __name__ == "__main__":
    main()
