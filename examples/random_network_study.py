#!/usr/bin/env python3
"""End-to-end study on a random ad hoc network.

Generates a random connected topology, routes flows with the DSR-lite
protocol, runs the full allocation ladder (naive -> basic -> LP-optimal),
verifies schedulability, and simulates 2PA against plain 802.11.

Run:  python examples/random_network_study.py [--nodes N] [--flows F]
"""

import argparse

import numpy as np

from repro import (
    ContentionAnalysis,
    Scenario,
    basic_allocation,
    basic_fairness_lp_allocation,
    build_2pa,
    build_80211,
    check_allocation_schedulability,
    jain_index,
    naive_allocation,
)
from repro.routing import DsrProtocol
from repro.scenarios import random_connected_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--flows", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    # 1. Random connected placement.
    network = random_connected_network(args.nodes, seed=args.seed)
    print(f"network: {args.nodes} nodes, {len(network.links())} links")

    # 2. Route flows on demand with DSR.
    rng = np.random.default_rng(args.seed)
    dsr = DsrProtocol(network)
    endpoints = []
    nodes = network.nodes
    while len(endpoints) < args.flows:
        i, j = rng.choice(len(nodes), size=2, replace=False)
        route = dsr.find_route(nodes[int(i)], nodes[int(j)])
        if route and len(route) >= 2:
            endpoints.append((nodes[int(i)], nodes[int(j)]))
    flows = dsr.build_flows(endpoints)
    print(f"DSR: {dsr.discoveries} discoveries, {dsr.cache_hits} cache "
          f"hits")
    for flow in flows:
        print(f"   {flow}")

    scenario = Scenario(network, flows, name="random-study")
    analysis = ContentionAnalysis(scenario)
    print(f"contention: {len(analysis.cliques)} maximal cliques, "
          f"{len(analysis.groups)} contending flow group(s)")

    # 3. The allocation ladder.
    for label, alloc in (
        ("naive (hop-count)", naive_allocation(analysis)),
        ("basic (virtual length)", basic_allocation(analysis)),
        ("LP-optimal (2PA phase 1)",
         basic_fairness_lp_allocation(analysis)),
    ):
        print(f"\n{label}: total {alloc.total_effective_throughput:.3f}xB")
        print("   ", {k: round(v, 3) for k, v in alloc.shares.items()})

    optimal = basic_fairness_lp_allocation(analysis)
    report = check_allocation_schedulability(analysis, optimal.shares)
    verdict = ("feasible" if report.feasible
               else "INFEASIBLE - used as weight factors only")
    print(f"\nschedulability: length {report.schedule_length:.3f} "
          f"({verdict})")

    # 4. Simulate 2PA vs 802.11.
    print("\nsimulating 8 s each:")
    for build in (build_2pa(scenario, seed=1), build_80211(scenario,
                                                           seed=1)):
        metrics = build.run.run(seconds=8.0)
        per_flow = [metrics.flows[f.flow_id].delivered_end_to_end
                    for f in flows]
        print(f"   {build.name:7s}: per-flow {per_flow}, "
              f"total {sum(per_flow)}, "
              f"Jain {jain_index(per_flow):.3f}, "
              f"loss {metrics.loss_ratio():.4f}")


if __name__ == "__main__":
    main()
