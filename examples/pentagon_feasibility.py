#!/usr/bin/env python3
"""The pentagon example (Fig. 5): when the clique bound cannot be met.

Five single-hop flows in a 5-cycle contention graph.  Proposition 1's
clique-based bound promises B/2 per flow, but no transmission schedule
realizes it: at most two of the five flows can be active at any instant.
This script quantifies the gap with the fractional-schedule LP and shows
the shares that *are* achievable.

Run:  python examples/pentagon_feasibility.py
"""

from repro import (
    basic_fairness_lp_allocation,
    check_allocation_schedulability,
    fairness_upper_bound,
    max_feasible_scaling,
)
from repro.core.model import SubflowId
from repro.graphs import maximal_independent_sets
from repro.scenarios import fig5


def main() -> None:
    analysis = fig5.make_analysis()

    print("contention graph: 5 flows in a cycle")
    sets = maximal_independent_sets(analysis.graph)
    print(f"maximal independent sets ({len(sets)}):")
    for s in sets:
        print("   ", sorted(str(x) for x in s))

    bound = fairness_upper_bound(analysis)
    print(f"\nProp. 1: weighted clique number = "
          f"{bound.weighted_clique_number:g}, bound = "
          f"{bound.per_unit_share:g} x B per flow "
          f"({bound.total_effective_throughput:g} x B total)")

    lp = basic_fairness_lp_allocation(analysis)
    print("LP optimum:", {k: round(v, 3) for k, v in lp.shares.items()})

    report = check_allocation_schedulability(analysis, lp.shares)
    print(f"\nfractional schedule for B/2 each needs "
          f"{report.schedule_length:g} x the channel -> "
          f"{'feasible' if report.feasible else 'INFEASIBLE'}")

    rates = {SubflowId(str(i), 1): 0.5 for i in range(1, 6)}
    scale = max_feasible_scaling(analysis.graph, rates)
    print(f"largest feasible scaling of the B/2 vector: {scale:g} "
          f"-> {0.5 * scale:g} x B per flow")

    uniform = {str(i): 0.4 for i in range(1, 6)}
    achievable = check_allocation_schedulability(analysis, uniform)
    print(f"\nuniform 2B/5 shares: schedule length "
          f"{achievable.schedule_length:g} (feasible: "
          f"{achievable.feasible})")
    print("time-sharing that realizes it:")
    for ind_set, t in sorted(achievable.schedule.items(),
                             key=lambda kv: -kv[1]):
        print(f"   {t:6.3f} of the time: "
              f"{sorted(str(x) for x in ind_set)}")
    print("\nThe paper keeps the unachievable LP optimum as phase-2 "
          "*weight factors*: it encodes the right ratios even when the "
          "absolute shares cannot be scheduled.")


if __name__ == "__main__":
    main()
