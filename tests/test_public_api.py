"""Public-API surface tests: everything exported is importable,
callable where expected, and documented."""

import doctest
import importlib
import inspect

import pytest

import repro
import repro.core
import repro.experiments
import repro.graphs
import repro.lp
import repro.mac
import repro.metrics
import repro.net
import repro.phy
import repro.routing
import repro.scenarios
import repro.sched
import repro.sim
import repro.traffic

PACKAGES = [
    repro, repro.core, repro.graphs, repro.lp, repro.sim, repro.phy,
    repro.net, repro.mac, repro.routing, repro.traffic, repro.sched,
    repro.metrics, repro.scenarios, repro.experiments,
]


class TestExports:
    @pytest.mark.parametrize("pkg", PACKAGES,
                             ids=[p.__name__ for p in PACKAGES])
    def test_all_names_resolve(self, pkg):
        assert hasattr(pkg, "__all__"), pkg.__name__
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{pkg.__name__}.{name}"

    @pytest.mark.parametrize("pkg", PACKAGES,
                             ids=[p.__name__ for p in PACKAGES])
    def test_public_callables_have_docstrings(self, pkg):
        for name in pkg.__all__:
            obj = getattr(pkg, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{pkg.__name__}.{name} lacks a doc"

    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_package_docstring_has_quickstart(self):
        assert "Quickstart" in repro.__doc__


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.sim.engine",
    ])
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0
