"""Content-hash analysis/allocation cache: identical results, hit/miss
accounting, LRU bounding, and fingerprint sensitivity."""

import pytest

from repro.core.allocation import basic_fairness_lp_allocation
from repro.core.contention import ContentionAnalysis
from repro.core.model import Scenario
from repro.obs.registry import using_registry
from repro.perf.cache import (
    AnalysisCache,
    cached_basic_fairness_allocation,
    cached_contention_analysis,
    clear_default_cache,
    default_cache,
    scenario_fingerprint,
)
from repro.scenarios import fig1, fig6


@pytest.fixture(autouse=True)
def fresh_default_cache():
    clear_default_cache()
    yield
    clear_default_cache()


class TestFingerprint:
    def test_structurally_equal_scenarios_share_fingerprint(self):
        assert scenario_fingerprint(fig1.make_scenario()) == \
            scenario_fingerprint(fig1.make_scenario())

    def test_different_scenarios_differ(self):
        assert scenario_fingerprint(fig1.make_scenario()) != \
            scenario_fingerprint(fig6.make_scenario())

    def test_capacity_changes_fingerprint(self):
        base = fig1.make_scenario()
        scaled = Scenario(base.network, list(base.flows), name=base.name,
                          capacity=2.0)
        assert scenario_fingerprint(base) != scenario_fingerprint(scaled)


class TestAnalysisCache:
    def test_identical_results_and_hit_accounting(self):
        cache = AnalysisCache()
        scenario = fig1.make_scenario()
        with using_registry() as reg:
            first = cache.analysis(scenario)
            second = cache.analysis(fig1.make_scenario())  # equal copy
        assert second is first
        assert first.cliques == ContentionAnalysis(scenario).cliques
        assert (cache.hits, cache.misses) == (1, 1)
        assert reg.counters["perf.cache.hit"].value == 1
        assert reg.counters["perf.cache.miss"].value == 1

    def test_allocation_matches_uncached(self):
        cache = AnalysisCache()
        scenario = fig1.make_scenario()
        cached = cache.basic_fairness_allocation(scenario)
        plain = basic_fairness_lp_allocation(ContentionAnalysis(scenario))
        assert cached.shares == plain.shares
        assert cache.basic_fairness_allocation(scenario) is cached

    def test_allocation_variants_cached_separately(self):
        cache = AnalysisCache()
        scenario = fig1.make_scenario()
        a = cache.basic_fairness_allocation(scenario)
        b = cache.basic_fairness_allocation(scenario, refine_maxmin=False)
        assert a is not b

    def test_lru_bound_evicts_oldest(self):
        cache = AnalysisCache(max_entries=1)
        s1, s6 = fig1.make_scenario(), fig6.make_scenario()
        cache.analysis(s1)
        cache.analysis(s6)
        assert len(cache) == 1
        cache.analysis(s1)  # evicted above, so this recomputes
        assert cache.misses == 3 and cache.hits == 0


class TestDefaultCache:
    def test_module_helpers_share_default_cache(self):
        scenario = fig1.make_scenario()
        analysis = cached_contention_analysis(scenario)
        assert cached_contention_analysis(scenario) is analysis
        allocation = cached_basic_fairness_allocation(scenario)
        assert cached_basic_fairness_allocation(scenario) is allocation
        assert default_cache().hits >= 2

    def test_clear_resets_entries(self):
        cached_contention_analysis(fig1.make_scenario())
        assert len(default_cache()) > 0
        clear_default_cache()
        assert len(default_cache()) == 0
