"""Tests for coloring and the virtual-length combinatorics (Fig. 3)."""

import pytest

from repro.graphs import (
    Graph,
    chain_coloring,
    chain_contention_graph,
    color_classes,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)


class TestGreedyColoring:
    def test_empty(self):
        assert greedy_coloring(Graph()) == {}
        assert num_colors({}) == 0

    def test_triangle_needs_three(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        coloring = greedy_coloring(g)
        assert num_colors(coloring) == 3
        assert is_proper_coloring(g, coloring)

    def test_bipartite_uses_two(self):
        g = Graph.from_edges([("a", "x"), ("a", "y"), ("b", "x"),
                              ("b", "y")])
        coloring = greedy_coloring(g, order=["a", "x", "b", "y"])
        assert num_colors(coloring) == 2
        assert is_proper_coloring(g, coloring)

    def test_respects_custom_order(self):
        g = Graph.from_edges([("a", "b")])
        coloring = greedy_coloring(g, order=["b", "a"])
        assert coloring["b"] == 0
        assert coloring["a"] == 1


class TestChainContentionGraph:
    def test_single_hop(self):
        g = chain_contention_graph(1)
        assert g.num_vertices() == 1
        assert g.num_edges() == 0

    def test_two_hops_contend(self):
        g = chain_contention_graph(2)
        assert g.has_edge(0, 1)

    def test_square_of_path_structure(self):
        """Subflow j contends with j±1 and j±2, never j±3."""
        g = chain_contention_graph(6)
        for j in range(6):
            for k in range(j + 1, 6):
                if k - j <= 2:
                    assert g.has_edge(j, k), (j, k)
                else:
                    assert not g.has_edge(j, k), (j, k)

    def test_maximal_cliques_are_consecutive_triples(self):
        from repro.graphs import maximal_cliques

        g = chain_contention_graph(6)
        cliques = maximal_cliques(g)
        assert all(len(c) == 3 for c in cliques)
        assert len(cliques) == 4  # {0,1,2}, {1,2,3}, {2,3,4}, {3,4,5}


class TestChainColoring:
    def test_fig3_example_six_hops(self):
        """The paper's sets {F1.1,F1.4}, {F1.2,F1.5}, {F1.3,F1.6}."""
        coloring = chain_coloring(6)
        classes = [sorted(c) for c in color_classes(coloring)]
        assert classes == [[0, 3], [1, 4], [2, 5]]

    @pytest.mark.parametrize("hops", range(1, 12))
    def test_proper_on_square_of_path(self, hops):
        g = chain_contention_graph(hops)
        coloring = chain_coloring(hops)
        assert is_proper_coloring(g, coloring)

    @pytest.mark.parametrize("hops,colors", [(1, 1), (2, 2), (3, 3),
                                             (4, 3), (9, 3)])
    def test_color_count_is_virtual_length(self, hops, colors):
        assert num_colors(chain_coloring(hops)) == colors

    def test_zero_hops(self):
        assert chain_coloring(0) == {}

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            chain_coloring(-1)

    def test_classes_are_independent_sets(self):
        g = chain_contention_graph(8)
        for cls in color_classes(chain_coloring(8)):
            assert g.is_independent_set(cls)
