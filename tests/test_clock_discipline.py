"""Unit tests for the virtual-clock discipline fixes.

Both behaviours were found by running the scheduler on topologies the
paper never simulated (see DESIGN.md §5.7): per-packet clock advance
with multiple backlogged queues, and lag-credit preservation across
momentary queue drains.
"""

import pytest

from repro.core.model import SubflowId
from repro.mac import FairBackoffPolicy, MacTimings
from repro.net.packet import DataPacket, TagInfo

T = MacTimings()


def pkt(flow, seq=1):
    return DataPacket(flow, (f"{flow}a", f"{flow}b"), 512, 0.0, seq=seq)


class TestMultiQueueClockAdvance:
    def test_clock_advances_per_packet_not_per_tagging(self):
        """Two queues tagged at the same clock: two sends must advance
        the clock by two node-share service times."""
        pol = FairBackoffPolicy("n", T, {
            SubflowId("x", 1): 0.25, SubflowId("y", 1): 0.25,
        })
        px, py = pkt("x"), pkt("y")
        pol.enqueue(px, 0.0)
        pol.enqueue(py, 0.0)
        # Tag both HOL packets at clock 0.
        pol.next_packet(0.0)
        per_packet = 512 * 8 / (0.5 * T.data_rate)
        pol.on_success(px, 10.0)
        assert pol.virtual_clock == pytest.approx(per_packet)
        pol.next_packet(10.0)
        pol.on_success(py, 20.0)
        assert pol.virtual_clock == pytest.approx(2 * per_packet)

    def test_single_queue_behaviour_unchanged(self):
        pol = FairBackoffPolicy("n", T, {SubflowId("x", 1): 0.5})
        p = pkt("x")
        pol.enqueue(p, 0.0)
        pol.next_packet(0.0)
        pol.on_success(p, 5.0)
        assert pol.virtual_clock == pytest.approx(
            512 * 8 / (0.5 * T.data_rate)
        )


class TestIdleResyncGuard:
    def make(self):
        return FairBackoffPolicy("n", T, {SubflowId("x", 1): 0.5},
                                 idle_resync_us=250_000.0)

    def test_first_enqueue_resyncs_to_neighborhood(self):
        pol = self.make()
        pol.on_overheard_tags(TagInfo("z", SubflowId("9", 1), 5000.0),
                              now=100.0)
        pol.enqueue(pkt("x"), 200.0)
        assert pol.virtual_clock == pytest.approx(5000.0)

    def test_momentary_drain_keeps_lag_credit(self):
        """Queue empties briefly: the clock must NOT jump forward."""
        pol = self.make()
        p1 = pkt("x", 1)
        pol.enqueue(p1, 0.0)
        pol.next_packet(0.0)
        pol.on_success(p1, 1000.0)  # queue now empty
        clock_after = pol.virtual_clock
        pol.on_overheard_tags(
            TagInfo("z", SubflowId("9", 1), 9e6), now=2000.0
        )
        pol.enqueue(pkt("x", 2), 3000.0)  # only 3 ms of idleness
        assert pol.virtual_clock == clock_after

    def test_sustained_idleness_resyncs(self):
        pol = self.make()
        p1 = pkt("x", 1)
        pol.enqueue(p1, 0.0)
        pol.next_packet(0.0)
        pol.on_success(p1, 1000.0)
        pol.on_overheard_tags(
            TagInfo("z", SubflowId("9", 1), 9e6), now=400_000.0
        )
        pol.enqueue(pkt("x", 2), 500_000.0)  # ~0.5 s idle
        assert pol.virtual_clock == pytest.approx(9e6)

    def test_stale_neighbor_tags_do_not_resync(self):
        """Aged-out table entries are ignored even on sustained idle."""
        pol = self.make()
        pol.on_overheard_tags(TagInfo("z", SubflowId("9", 1), 9e6),
                              now=0.0)
        # First enqueue at t = 2 s: the entry is older than the 1 s
        # table timeout.
        pol.enqueue(pkt("x"), 2_000_000.0)
        assert pol.virtual_clock == 0.0


class TestGridRegression:
    def test_shared_source_grid_stays_balanced(self):
        """Regression for the multi-queue clock bug: two flows sharing
        their source node on a grid must serve up- and downstream hops
        equally (previously a stable 2:1 imbalance with 70% loss)."""
        from repro.metrics.analysis import intra_flow_balance
        from repro.sched import build_2pa
        from repro.scenarios import grid_scenario

        build = build_2pa(grid_scenario(4), "centralized", seed=3)
        metrics = build.run.run(seconds=5.0)
        assert metrics.loss_ratio() < 0.02
        for fid, balance in intra_flow_balance(metrics).items():
            assert balance > 0.95, fid

    def test_cross_relay_keeps_credit(self):
        """Regression for the resync credit theft: the cross topology's
        relays stay within ~15% of their upstream feeders."""
        from repro.metrics.analysis import intra_flow_balance
        from repro.sched import build_2pa
        from repro.scenarios import cross

        build = build_2pa(cross(2), "centralized", seed=3)
        metrics = build.run.run(seconds=15.0)
        assert metrics.loss_ratio() < 0.1
        for fid, balance in intra_flow_balance(metrics).items():
            assert balance > 0.85, fid
