"""Tests for the advanced core paths: feasible fairness allocation, the
distributed infeasibility fallback, and multi-group concurrency."""

import pytest

from repro.core import (
    ContentionAnalysis,
    DistributedAllocator,
    Flow,
    Network,
    Scenario,
    basic_fairness_lp_allocation,
    check_allocation_schedulability,
    feasible_fairness_allocation,
    run_centralized,
    run_distributed,
    satisfies_fairness_constraint,
)
from repro.scenarios import fig1, fig5, fig6


class TestFeasibleFairnessAllocation:
    def test_pentagon_scaled_to_two_fifths(self):
        analysis = fig5.make_analysis()
        alloc = feasible_fairness_allocation(analysis)
        for fid in alloc.shares:
            assert alloc.share(fid) == pytest.approx(0.4, abs=1e-6)
        report = check_allocation_schedulability(analysis, alloc.shares)
        assert report.feasible
        assert report.schedule_length == pytest.approx(1.0, abs=1e-6)

    def test_fig1_unchanged_when_already_feasible(self):
        analysis = ContentionAnalysis(fig1.make_scenario())
        alloc = feasible_fairness_allocation(analysis)
        assert alloc.share("1") == pytest.approx(1 / 3)
        assert alloc.share("2") == pytest.approx(1 / 3)

    def test_keeps_weight_proportionality(self):
        analysis = ContentionAnalysis(fig6.make_scenario())
        alloc = feasible_fairness_allocation(analysis)
        assert satisfies_fairness_constraint(
            alloc.shares, analysis.scenario.weights(), epsilon=1e-9
        )

    def test_never_exceeds_prop1(self):
        from repro.core import fairness_upper_bound

        for make in (fig5.make_analysis,
                     lambda: ContentionAnalysis(fig6.make_scenario())):
            analysis = make()
            alloc = feasible_fairness_allocation(analysis)
            bound = fairness_upper_bound(analysis)
            for fid in alloc.shares:
                assert alloc.share(fid) <= bound.share(fid) + 1e-9


def make_hidden_weight_scenario() -> Scenario:
    """A 3-hop chain plus a heavy (w=3) single-hop flow near its tail.

    Designed so the chain's source cannot overhear the heavy flow: its
    local basic share (B/3) plus the propagated flow's source-local bound
    (B/2) oversubscribe the shared clique ``2 r̂1 + r̂2 <= B`` — forcing
    the distributed algorithm's feasibility-scaling fallback.
    """
    network = Network.from_positions({
        "A": (0.0, 0.0), "B": (200.0, 0.0), "C": (400.0, 0.0),
        "D": (600.0, 0.0),
        "X": (400.0, 230.0), "Y": (400.0, 460.0),
    })
    flows = [
        Flow("1", ["A", "B", "C", "D"], weight=1.0),
        Flow("2", ["X", "Y"], weight=3.0),
    ]
    return Scenario(network, flows, name="hidden-weight")


class TestDistributedFallback:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_hidden_weight_scenario()

    def test_intended_contention_structure(self, scenario):
        analysis = ContentionAnalysis(scenario)
        cliques = sorted(
            sorted(str(s) for s in c) for c in analysis.cliques
        )
        assert cliques == [
            ["F1.1", "F1.2", "F1.3"],
            ["F1.2", "F1.3", "F2.1"],
        ]

    def test_centralized_solution(self, scenario):
        central = run_centralized(scenario)
        # denom = 1*3 + 3*1 = 6; optimum pushes r1 to its floor.
        assert central.share("1") == pytest.approx(1 / 6, abs=1e-6)
        assert central.share("2") == pytest.approx(2 / 3, abs=1e-6)

    def test_source_a_local_lp_is_initially_infeasible(self, scenario):
        """Unscaled bounds: r1 >= B/3 and r2 >= B/2 against
        2 r1 + r2 <= B, i.e. 7/6 > 1."""
        allocator = DistributedAllocator(scenario)
        allocator.build_local_views()
        assert allocator.local_per_unit_share("A") == pytest.approx(1 / 3)
        assert allocator.local_per_unit_share("X") == pytest.approx(1 / 6)

    def test_fallback_scales_bounds_to_six_sevenths(self, scenario):
        result = run_distributed(scenario)
        # scale = 1 / (2/3 + 1/2) = 6/7; A adopts r1 = (1/3)(6/7) = 2/7.
        assert result.share("1") == pytest.approx(2 / 7, abs=1e-5)
        # X's own LP is feasible without scaling: r2 = 2/3.
        assert result.share("2") == pytest.approx(2 / 3, abs=1e-5)

    def test_fallback_result_respects_known_cliques(self, scenario):
        allocator = DistributedAllocator(scenario)
        allocator.run()
        problem = allocator.problems["A"]
        assert problem.lp.is_feasible(problem.solution.values, tol=1e-6)


class TestMultipleGroups:
    def make_two_group_scenario(self):
        """Two independent Fig.-1-style regions, far apart."""
        positions = {}
        for prefix, dx in (("L", 0.0), ("R", 5000.0)):
            for name, x in (("A", 0), ("B", 200), ("C", 400)):
                positions[f"{prefix}{name}"] = (x + dx, 0.0)
        network = Network.from_positions(positions)
        flows = [
            Flow("left", ["LA", "LB", "LC"]),
            Flow("right", ["RA", "RB", "RC"]),
        ]
        return Scenario(network, flows, name="two-groups")

    def test_groups_are_disjoint(self):
        analysis = ContentionAnalysis(self.make_two_group_scenario())
        assert len(analysis.groups) == 2

    def test_each_group_allocated_independently(self):
        analysis = ContentionAnalysis(self.make_two_group_scenario())
        alloc = basic_fairness_lp_allocation(analysis)
        # Each flow alone in its group: bounded by its own 2-subflow
        # clique at B/2.
        assert alloc.share("left") == pytest.approx(0.5)
        assert alloc.share("right") == pytest.approx(0.5)

    def test_groups_transmit_concurrently_in_simulation(self):
        """Total effective throughput ~2x one group's: spatial reuse."""
        from repro.sched import build_2pa

        scenario = self.make_two_group_scenario()
        build = build_2pa(scenario, "centralized", seed=1)
        metrics = build.run.run(seconds=5.0)
        left = metrics.flows["left"].delivered_end_to_end
        right = metrics.flows["right"].delivered_end_to_end
        assert left > 400
        assert right == pytest.approx(left, rel=0.1)
        assert metrics.total_lost_packets() <= 2
