"""Exact-Fraction reference solver + degenerate float-simplex cases.

Every degenerate shape the float solver must survive — Bland-rule ties,
negative shifted right-hand sides that force phase-1 entry, unbounded and
infeasible programs — is cross-checked against the independent exact
solver, which uses no epsilons at all.
"""

from fractions import Fraction

import pytest

from repro.lp import LinearProgram, solve
from repro.verify import exact_objective, lp_objective_matches, solve_exact


def both(lp):
    return solve(lp, "simplex"), solve_exact(lp)


class TestExactSolverBasics:
    def test_trivial_bounded(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_constraint({"x": 1.0}, 5.0)
        sol = solve_exact(lp)
        assert sol.status == "optimal"
        assert sol.objective == Fraction(5)
        assert sol.values["x"] == Fraction(5)

    def test_objective_is_exact_fraction(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_constraint({"x": 3.0}, 1.0)
        sol = solve_exact(lp)
        assert sol.objective == Fraction(1, 3)
        assert exact_objective(lp) == Fraction(1, 3)

    def test_lower_bounds_respected_exactly(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 1.0)
        lp.set_lower_bound("y", 0.25)
        sol = solve_exact(lp)
        assert sol.status == "optimal"
        assert sol.values["y"] >= Fraction(1, 4)
        assert sol.objective == Fraction(1)

    def test_to_lp_solution_roundtrip(self):
        lp = LinearProgram()
        lp.add_variable("x", 2.0)
        lp.add_constraint({"x": 1.0}, 1.5)
        as_float = solve_exact(lp).to_lp_solution()
        assert as_float.is_optimal
        assert as_float.objective == pytest.approx(3.0)
        assert as_float.values["x"] == pytest.approx(1.5)


class TestDegenerateCases:
    def test_bland_ties_terminate(self):
        """Many identical rows create degenerate vertices with tied
        ratio tests; Bland's rule must still terminate on both solvers
        and land on the same objective."""
        lp = LinearProgram()
        for name in ("x", "y", "z"):
            lp.add_variable(name, 1.0)
        # Redundant, tie-producing constraints through the same vertex.
        lp.add_constraint({"x": 1.0, "y": 1.0, "z": 1.0}, 1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 1.0)
        lp.add_constraint({"x": 1.0, "z": 1.0}, 1.0)
        lp.add_constraint({"y": 1.0, "z": 1.0}, 1.0)
        lp.add_constraint({"x": 1.0}, 1.0)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "optimal"
        assert exact_sol.objective == Fraction(1)
        assert float_sol.objective == pytest.approx(1.0)

    def test_zero_rhs_degeneracy(self):
        """A constraint with bound 0 makes the origin degenerate."""
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 2.0)
        lp.add_constraint({"x": 1.0, "y": -1.0}, 0.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 4.0)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "optimal"
        assert exact_sol.objective == Fraction(8)  # x=0, y=4
        assert float_sol.objective == pytest.approx(8.0)

    def test_negative_shifted_rhs_needs_phase1(self):
        """Lower bounds can push a shifted rhs negative (b_shift < 0):
        the origin of the shifted program is infeasible, so the solver
        must enter phase 1 rather than start from the slack basis."""
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        # x >= 3 makes the shifted rhs of the second row 2 - 3 = -1.
        lp.set_lower_bound("x", 3.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 5.0)
        lp.add_constraint({"x": 1.0, "y": -1.0}, 2.0)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "optimal"
        # Row 2 forces y >= x - 2 >= 1; optimum x + y = 5 on row 1.
        assert exact_sol.objective == Fraction(5)
        assert float_sol.objective == pytest.approx(5.0)
        assert exact_sol.values["x"] >= Fraction(3)
        assert float_sol.values["x"] >= 3.0 - 1e-9

    def test_unbounded(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        lp.add_constraint({"x": 1.0, "y": -1.0}, 1.0)  # y is unbounded
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "unbounded"
        assert exact_sol.objective is None

    def test_infeasible_lower_bounds(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_constraint({"x": 1.0}, 1.0)
        lp.set_lower_bound("x", 2.0)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "infeasible"

    def test_infeasible_conflicting_rows(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 1.0)
        lp.set_lower_bound("x", 0.75)
        lp.set_lower_bound("y", 0.75)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "infeasible"

    def test_tight_equality_like_vertex(self):
        """Lower bounds exactly fill the capacity: feasible region is a
        single point, a maximally degenerate vertex."""
        lp = LinearProgram()
        for i in range(4):
            lp.add_variable(f"x{i}", 1.0)
            lp.set_lower_bound(f"x{i}", 0.25)
        lp.add_constraint({f"x{i}": 1.0 for i in range(4)}, 1.0)
        float_sol, exact_sol = both(lp)
        assert float_sol.status == exact_sol.status == "optimal"
        assert exact_sol.objective == Fraction(1)
        for i in range(4):
            assert exact_sol.values[f"x{i}"] == Fraction(1, 4)

    def test_fractional_pivots_stay_exact(self):
        """Coefficients chosen so pivots produce non-terminating binary
        fractions: the exact solver must not lose a single ulp."""
        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        lp.add_constraint({"x": 3.0, "y": 1.0}, 1.0)
        lp.add_constraint({"x": 1.0, "y": 3.0}, 1.0)
        float_sol, exact_sol = both(lp)
        assert exact_sol.objective == Fraction(1, 2)
        assert float_sol.objective == pytest.approx(0.5)
        assert exact_sol.values["x"] == Fraction(1, 4)
        assert exact_sol.values["y"] == Fraction(1, 4)

    def test_differential_report_on_degenerate_cases(self):
        """The oracle wrapper agrees on every degenerate case above."""
        lps = []

        lp = LinearProgram()
        for name in ("x", "y"):
            lp.add_variable(name, 1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 1.0)
        lp.add_constraint({"x": 1.0}, 1.0)
        lps.append(lp)

        lp = LinearProgram()
        lp.add_variable("x", 1.0)
        lp.add_variable("y", 1.0)
        lp.set_lower_bound("x", 3.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, 5.0)
        lp.add_constraint({"x": 1.0, "y": -1.0}, 2.0)
        lps.append(lp)

        for lp in lps:
            report = lp_objective_matches(lp, with_scipy=True)
            assert report["ok"], report
